//! Model extensions beyond the paper's numerical section, exercising the
//! §2.1 attributes the paper defines but sets aside (overlap `o_ij`,
//! availability `Tᵢ`) and the hierarchical federation of §1.2/§6.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use fedval::core::{block_overlap, diversity_discount, AvailabilityGame};
use fedval::policy::hierarchical_shapley;
use fedval::{
    paper_facilities, shapley_normalized, Demand, ExperimentClass, Facility, FederationGame,
    FederationScenario, TableGame,
};

fn main() {
    // --- 1. Overlap: shared locations add capacity, not diversity -------
    println!("== overlap discounts diversity ==");
    let demand = Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0));
    for shared in [0u32, 200, 400] {
        // Every facility also covers a common block of `shared`
        // locations, so distinct locations shrink while contributed
        // location counts stay generous.
        let facilities = block_overlap(&[100, 400 - shared, 800 - shared], shared, 1);
        let discount = diversity_discount(&facilities);
        let scenario = FederationScenario::new(facilities, demand.clone());
        println!(
            "shared = {shared:>3}: distinct locations = {:>4}, diversity discount = {:.3}, V(N) = {:>6.0}",
            (1300 - shared),
            discount,
            scenario.grand_value()
        );
    }
    println!("(the experiment values *distinct* locations: every shared location");
    println!(" is value lost — Fig. 1's overlap dimension, quantified.)\n");

    // --- 2. Availability: flaky facilities lose share -------------------
    println!("== availability discounts shares ==");
    let facilities = paper_facilities([1, 1, 1]);
    let base = FederationGame::new(&facilities, &demand);
    let base_table = TableGame::from_game(&base);
    println!("{:>18} {:>26}", "T = (1, 1, 1)", "T = (1, 0.5, 1)");
    let reliable = shapley_normalized(&base_table);
    let flaky = shapley_normalized(&TableGame::from_game(&AvailabilityGame::new(
        base_table.clone(),
        vec![1.0, 0.5, 1.0],
    )));
    for i in 0..3 {
        println!(
            "facility {}: {:>7.4} {:>26.4}",
            i + 1,
            reliable[i],
            flaky[i]
        );
    }
    println!("Facility 2 at 50% availability drops from 2/13 ≈ 0.154 to 1/11 ≈ 0.091:");
    println!("expected-value games price reliability without any new machinery.\n");

    // --- 3. Hierarchy: sites within authorities (Owen value) ------------
    println!("== hierarchical shares: sites within authorities ==");
    let site_groups = vec![
        vec![
            Facility::uniform("PLC-princeton", 0, 60, 1),
            Facility::uniform("PLC-berkeley", 60, 40, 1),
        ],
        vec![
            Facility::uniform("PLE-upmc", 100, 250, 1),
            Facility::uniform("PLE-inria", 350, 150, 1),
        ],
        vec![Facility::uniform("PLJ-tokyo", 500, 800, 1)],
    ];
    let h = hierarchical_shapley(
        &site_groups,
        &Demand::one_experiment(ExperimentClass::simple("meas", 500.0, 1.0)),
    );
    println!(
        "authority shares (quotient Shapley): {:?}",
        rounded(&h.authority_shares)
    );
    for (group, shares) in site_groups.iter().zip(&h.site_shares) {
        for (site, s) in group.iter().zip(shares) {
            println!(
                "  {:>15}: {:>7.4}  (payoff {:>6.1})",
                site.name,
                s,
                s * h.grand_value
            );
        }
    }
    println!("The Owen quotient property makes the two levels consistent: each");
    println!("authority's sites jointly receive exactly its top-level share, so");
    println!("local and global federation policies cannot contradict each other.");
}

fn rounded(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1e4).round() / 1e4).collect()
}
