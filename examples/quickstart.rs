//! Quickstart: the paper's §4.1 worked example, end to end.
//!
//! Three facilities contribute 100, 400, and 800 locations. One customer
//! wants an experiment on more than 500 distinct locations. How should
//! the customer's fee be split?
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fedval::{
    is_core_nonempty, paper_facilities, policy_report, Demand, ExperimentClass, FederationScenario,
};

fn main() {
    // The federation: L = (100, 400, 800) locations, one unit of capacity
    // per location (R = 1).
    let facilities = paper_facilities([1, 1, 1]);

    // The demand: a single experiment needing > 500 distinct locations,
    // linear utility (d = 1).
    let demand = Demand::one_experiment(ExperimentClass::simple("measurement", 500.0, 1.0));

    let scenario = FederationScenario::new(facilities, demand);

    println!("== the federation game ==");
    println!(
        "V(N) = {:.0} (the experiment spans all 1300 locations)\n",
        scenario.grand_value()
    );

    let phi = scenario.shapley_shares();
    let pi = scenario.proportional_shares();
    println!(
        "{:>10} {:>12} {:>14}",
        "facility", "shapley", "proportional"
    );
    for i in 0..3 {
        println!("{:>10} {:>12.4} {:>14.4}", i + 1, phi[i], pi[i]);
    }
    println!();
    println!(
        "facility 2 gets phi_hat = {:.4} = 2/13 under Shapley but {:.4} = 4/13",
        phi[1], pi[1]
    );
    println!("under proportional sharing: proportional over-rewards raw volume");
    println!("and ignores that facility 2 cannot serve the customer without help.\n");

    println!("core non-empty: {}", is_core_nonempty(scenario.game()));
    println!();

    println!("== full policy report ==");
    println!("{}", policy_report(&scenario).render());
}
