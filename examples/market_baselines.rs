//! Market mechanisms vs coalitional sharing — the §5 comparison, run.
//!
//! The paper argues that market-based allocation (Bellagio's combinatorial
//! auctions, GridEcon's spot market) shares profit "implicitly through the
//! market, ignoring the possible complementarities in the valuation of the
//! users". Here both mechanisms run on the paper's worked-example
//! federation, next to the Shapley decomposition, so the difference is a
//! table instead of an argument.
//!
//! ```text
//! cargo run --release --example market_baselines
//! ```

use fedval::market::{clear_double_auction, run_combinatorial_auction, Ask, Bid, Order};
use fedval::{
    paper_facilities, Demand, ExperimentClass, FederationScenario,
};

fn main() {
    let facilities = paper_facilities([1, 1, 1]);

    // The demand side: one diversity-hungry customer (> 1200 locations —
    // every facility pivotal) plus two modest ones.
    println!("== combinatorial auction (Bellagio-style) ==");
    let bids = vec![
        Bid::new("global-measurement", 1201, 2600.0),
        Bid::new("small-overlay-a", 40, 45.0),
        Bid::new("small-overlay-b", 60, 80.0),
    ];
    let auction = run_combinatorial_auction(&facilities, &bids);
    println!(
        "winners: {:?}, revenue = {:.0}",
        auction
            .winners
            .iter()
            .map(|&i| bids[i].bidder.as_str())
            .collect::<Vec<_>>(),
        auction.revenue
    );
    let market_shares = auction.revenue_shares();

    // The coalitional view of the same headline demand.
    let scenario = FederationScenario::new(
        facilities.clone(),
        Demand::one_experiment(ExperimentClass::simple("global", 1200.0, 1.0)),
    );
    let shapley = scenario.shapley_shares();
    let proportional = scenario.proportional_shares();

    println!(
        "\n{:>10} {:>14} {:>12} {:>14}",
        "facility", "market share", "shapley", "proportional"
    );
    for i in 0..3 {
        println!(
            "{:>10} {:>14.4} {:>12.4} {:>14.4}",
            i + 1,
            market_shares[i],
            shapley[i],
            proportional[i]
        );
    }
    println!();
    println!("Every facility is *pivotal* for the big experiment (it needs more");
    println!("locations than any 2-coalition has), so Shapley pays equal thirds.");
    println!("The market pays by slots consumed — facility 1's hundred locations");
    println!("earn ~1/13 of revenue despite being indispensable.\n");

    // The spot market: slots as a commodity.
    println!("== double-auction spot market (GridEcon-style) ==");
    let asks: Vec<Ask> = facilities
        .iter()
        .map(|f| Ask {
            quantity: f.total_slots(),
            reserve: 0.1,
        })
        .collect();
    let orders = vec![
        Order {
            quantity: 900,
            limit: 1.0,
        },
        Order {
            quantity: 600,
            limit: 0.5,
        },
    ];
    let out = clear_double_auction(&asks, &orders);
    println!(
        "clearing price = {:.2}, traded = {} slots",
        out.price, out.traded
    );
    let spot_shares = out.revenue_shares();
    println!("spot revenue shares: {spot_shares:?}");
    println!();
    println!("Slots are fungible in the spot market: revenue again tracks raw");
    println!("capacity (eq. 6's proportional rule), never the diversity premium.");
}
