//! The PLC / PLE / PLJ federation with a PlanetLab-like workload mix,
//! evaluated on *measured* coalition values: run the slice simulator for
//! every coalition of authorities and compute Shapley shares from the
//! utility each coalition actually delivers — the paper's proposed
//! off-line policy pipeline, with simulation standing in for the
//! closed-form model.
//!
//! ```text
//! cargo run --release --example planetlab_federation
//! ```

use fedval::testbed::ClassLoad;
use fedval::{
    empirical_game, shapley_normalized, synthetic_authority, Coalition, CoalitionalGame,
    ExperimentClass, Federation, SimConfig, Workload,
};

fn main() {
    // Three top-level authorities, deliberately asymmetric in geography:
    // PLC has many sites; PLE fewer but denser; PLJ is small.
    let federation = Federation::new(vec![
        synthetic_authority("PLC", 0, 60, 2, 4, 300),
        synthetic_authority("PLE", 60, 35, 3, 4, 200),
        synthetic_authority("PLJ", 95, 15, 2, 4, 80),
    ]);

    println!("== federation members ==");
    for a in federation.authorities() {
        println!(
            "{:>4}: {:>3} sites, {:>3} locations, {:>4} sliver capacity, {:>3} users",
            a.name,
            a.sites.len(),
            a.n_locations(),
            a.total_capacity(),
            a.users
        );
    }
    let registry = federation.registry();
    println!(
        "federated registry: {} node records ({} bytes on the wire)\n",
        registry.len(),
        federation.encode_registry().len()
    );

    // The paper's three experiment classes, with diversity thresholds
    // scaled to this 110-location testbed (the paper's l = 40/100/500 are
    // for ~1000-node PlanetLab): a P2P overlay any mid-size authority can
    // host, a CDN needing most of the federation's geography, and a
    // measurement experiment only the full federation can host.
    let workload = Workload {
        classes: vec![
            ClassLoad::external(
                ExperimentClass::simple("p2p", 30.0, 1.0),
                2.0,
                0.2,
            ),
            ClassLoad::external(
                ExperimentClass::simple("cdn", 80.0, 1.0).with_max_locations(100),
                1.0,
                2.0,
            ),
            ClassLoad::external(
                ExperimentClass::simple("measurement", 100.0, 1.0),
                1.0,
                0.8,
            ),
        ],
    };

    println!("== measured coalition values (slice simulation) ==");
    let config = SimConfig {
        horizon: 2000.0,
        warmup: 200.0,
        seed: 2010,
        churn: None,
    };
    let game = empirical_game(&federation, &workload, &config);
    for c in Coalition::all(3).filter(|c| !c.is_empty()) {
        let members: Vec<&str> = c
            .players()
            .map(|p| federation.authorities()[p].name.as_str())
            .collect();
        println!("V({:<11}) = {:>12.1}", members.join("+"), game.value(c));
    }

    let shares = shapley_normalized(&game);
    let capacity_share: Vec<f64> = {
        let total: f64 = federation
            .authorities()
            .iter()
            .map(|a| a.total_capacity() as f64)
            .sum();
        federation
            .authorities()
            .iter()
            .map(|a| a.total_capacity() as f64 / total)
            .collect()
    };
    println!("\n== measured Shapley shares vs raw capacity shares ==");
    println!("{:>6} {:>10} {:>10}", "", "shapley", "capacity");
    for (i, a) in federation.authorities().iter().enumerate() {
        println!(
            "{:>6} {:>10.4} {:>10.4}",
            a.name, shares[i], capacity_share[i]
        );
    }
    println!();
    println!("The measurement class (> 100 distinct locations) only runs when all");
    println!("three authorities federate, and the CDN class (> 80) needs PLC plus");
    println!("at least one partner — so the smaller authorities' *locations* are");
    println!("worth more than their raw capacity share, which is exactly the");
    println!("\"value of diversity\" the Shapley decomposition surfaces.");
}
