//! The P2P scenario, measured: each authority's *own users* submit
//! experiments (eq. 3's setting), the slice simulator attributes delivered
//! utility per authority, and we compare standing alone against
//! federating — with and without node churn.
//!
//! ```text
//! cargo run --release --example measured_p2p
//! ```

use fedval::testbed::{ClassLoad, Churn};
use fedval::{
    run_coalition, synthetic_authority, Coalition, ExperimentClass, Federation, SimConfig,
    Workload,
};

fn main() {
    // PLE researchers run wide measurement overlays; PLC users mostly run
    // small P2P experiments; PLJ users run mid-size CDN-ish slices.
    let federation = Federation::new(vec![
        synthetic_authority("PLC", 0, 30, 2, 3, 200),
        synthetic_authority("PLE", 30, 20, 2, 3, 150),
        synthetic_authority("PLJ", 50, 10, 2, 3, 60),
    ]);
    let workload = Workload {
        classes: vec![
            ClassLoad::owned(0, ExperimentClass::simple("plc-p2p", 10.0, 1.0), 2.0, 0.5),
            ClassLoad::owned(1, ExperimentClass::simple("ple-meas", 45.0, 1.0), 1.0, 0.8),
            ClassLoad::owned(2, ExperimentClass::simple("plj-cdn", 25.0, 1.0), 1.0, 1.0),
        ],
    };
    let config = SimConfig {
        horizon: 2000.0,
        warmup: 200.0,
        seed: 77,
        churn: None,
    };

    println!("== utility delivered to each authority's users ==");
    println!("{:>6} {:>12} {:>12} {:>10}", "", "alone", "federated", "gain");
    let grand = run_coalition(&federation, Coalition::grand(3), &workload, &config);
    for (i, a) in federation.authorities().iter().enumerate() {
        let alone = run_coalition(&federation, Coalition::singleton(i), &workload, &config);
        let own = alone.per_authority_utility[i];
        let fed = grand.per_authority_utility[i];
        let gain = if own > 0.0 {
            format!("{:>9.2}x", fed / own)
        } else if fed > 0.0 {
            "unblocked".to_string()
        } else {
            "-".to_string()
        };
        println!("{:>6} {:>12.0} {:>12.0} {:>10}", a.name, own, fed, gain);
    }
    println!();
    println!("PLE's measurement overlays (need > 45 distinct locations) cannot run");
    println!("on PLE's 20 locations at all; the federation's 60 unblock them —");
    println!("the P2P-scenario version of the value of diversity. Everyone else");
    println!("gains too (wider slices, more multiplexing), so the pooled outcome");
    println!("is individually rational without any side payments (eq. 3's");
    println!("constraint holds at the measured allocation).\n");

    println!("== with node churn (MTBF 50, MTTR 10 — ~83% availability) ==");
    let flaky = SimConfig {
        churn: Some(Churn {
            mtbf: 50.0,
            mttr: 10.0,
        }),
        ..config
    };
    let grand_flaky = run_coalition(&federation, Coalition::grand(3), &workload, &flaky);
    println!(
        "federated utility: {:.0} (reliable) vs {:.0} (flaky), {} slivers disrupted",
        grand.total_utility, grand_flaky.total_utility, grand_flaky.disrupted_slivers
    );
    println!("Unreliable nodes shave delivered utility — the §2.1 availability");
    println!("attribute Tᵢ, observed rather than assumed.");
}
