//! Policy design: sweep the expected demand mixture, compute off-line
//! Shapley weights for each mixture, inspect provision incentives
//! (the Fig. 9 experiment), and find the provision-game equilibrium under
//! different sharing schemes.
//!
//! ```text
//! cargo run --release --example policy_design
//! ```

use fedval::core::LocationOffer;
use fedval::policy::{best_response_dynamics, incentive_curve, peak_marginal};
use fedval::{
    paper_facilities, paper_facilities_with_locations, CostModel, Demand, ExperimentClass,
    Facility, FederationScenario, SharingScheme,
};

fn main() {
    // --- 1. Off-line Shapley weights per expected demand mixture --------
    println!("== Shapley weights vs expected demand mixture ==");
    println!("(two classes: bulk l = 0 vs diversity-hungry l = 700; K = 60)");
    println!(
        "{:>6} {:>24} {:>24}",
        "sigma", "shapley (s1 s2 s3)", "proportional"
    );
    for sigma in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let scenario = FederationScenario::new(
            paper_facilities([80, 50, 30]),
            Demand::mixture(
                ExperimentClass::simple("bulk", 0.0, 1.0),
                ExperimentClass::simple("diverse", 700.0, 1.0),
                60,
                sigma,
            ),
        );
        let phi = scenario.shapley_shares();
        let pi = scenario.proportional_shares();
        println!(
            "{sigma:>6.2} {:>7.3} {:>7.3} {:>8.3} {:>7.3} {:>7.3} {:>8.3}",
            phi[0], phi[1], phi[2], pi[0], pi[1], pi[2]
        );
    }
    println!();
    println!("The organizer can install these phi weights as fixed policy");
    println!("parameters (SharingScheme::Fixed) matched to the expected mixture.\n");

    // --- 2. Provision incentives around thresholds (Fig. 9) -------------
    println!("== provision incentives: facility 1 payoff vs L1 (l = 800) ==");
    let make = |l1: u32| paper_facilities_with_locations([l1, 400, 800], [80, 60, 20]);
    let demand = Demand::capacity_filling(ExperimentClass::simple("e", 800.0, 1.0));
    let levels: Vec<u32> = (0..=20).map(|k| k * 50).collect();
    for scheme in [SharingScheme::Shapley, SharingScheme::Proportional] {
        let curve = incentive_curve(&make, &demand, &scheme, 0, &levels);
        let (Some(first), Some(last)) = (curve.first(), curve.last()) else {
            println!("{:>13}: empty incentive curve", scheme.name());
            continue;
        };
        println!(
            "{:>13}: payoff(L1=0) = {:>9.0}, payoff(L1=1000) = {:>9.0}, sharpest step = {:>9.0}",
            scheme.name(),
            first.payoff,
            last.payoff,
            peak_marginal(&curve) * 50.0
        );
    }
    println!();
    println!("Shapley concentrates reward exactly where new coalitions become");
    println!("viable — strong provision incentives, at some risk of instability");
    println!("around the jump (the paper's §4.4 caveat).\n");

    // --- 3. The provision game equilibrium -------------------------------
    println!("== provision-game equilibrium (best-response dynamics) ==");
    let grid = vec![vec![50u32, 100, 200, 400]; 3];
    let make_facility = |i: usize, l: u32| -> Facility {
        // lint: allow(lossy-cast) — i indexes the 3-facility grid above.
        let base = i as u32 * 10_000;
        Facility::new(format!("f{i}"), LocationOffer::contiguous(base, l, 1))
    };
    let eq_demand = Demand::one_experiment(ExperimentClass::simple("e", 0.0, 1.0));
    let cost = CostModel {
        alpha: 0.45,
        beta: 0.0,
        gamma: 0.0,
        federation_fixed: 0.0,
    };
    for scheme in [
        SharingScheme::Proportional,
        SharingScheme::Shapley,
        SharingScheme::Equal,
    ] {
        let eq = best_response_dynamics(&grid, &make_facility, &eq_demand, &scheme, &cost, 30);
        let provision: Vec<u32> = eq.strategy.iter().map(|&s| grid[0][s]).collect();
        println!(
            "{:>13}: equilibrium provision = {:?} (converged: {}, sweeps: {})",
            scheme.name(),
            provision,
            eq.converged,
            eq.iterations
        );
    }
    println!();
    println!("Contribution-sensitive schemes sustain full provision; the equal");
    println!("split free-rides its way to minimal contributions.");
}
