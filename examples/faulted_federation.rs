//! Measuring the federation game under injected faults: node crashes,
//! a correlated site-wide outage, a mid-trace authority departure, and a
//! transient credential-exchange outage — then sharing the (degraded)
//! value with Shapley and rendering a policy report that discloses how
//! each coalition's value was obtained.
//!
//! ```text
//! cargo run --release --example faulted_federation
//! ```

use fedval::coalition::CoalitionalGame;
use fedval::testbed::SimConfig;
use fedval::{
    empirical_game_diagnosed, policy_report_measured, shapley_normalized, synthetic_authority,
    Coalition, Demand, ExperimentClass, FaultPlan, Federation, FederationScenario, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let federation = Federation::new(vec![
        synthetic_authority("PLC", 0, 5, 2, 3, 100),
        synthetic_authority("PLE", 5, 3, 2, 3, 60),
        synthetic_authority("PLJ", 8, 3, 2, 3, 40),
    ]);
    let workload = Workload::single(ExperimentClass::simple("exp", 3.0, 1.0), 1.5, 1.0);
    let config = SimConfig {
        horizon: 300.0,
        warmup: 30.0,
        seed: 21,
        churn: None,
    };

    // The fault schedule replays identically against every coalition
    // (node/authority indices are federation-wide), so the measured game
    // stays internally consistent.
    let plan = FaultPlan::new()
        .node_crash(2, 60.0, Some(40.0)) // PLC node down at t=60, back at t=100
        .node_crash(12, 90.0, None) // a PLJ node dies for good
        .site_outage(0, 1, 100.0, 50.0) // PLC site 1 dark for 50 time units
        .authority_departure(2, 150.0) // PLJ leaves the federation mid-trace
        .credential_outage(1, 200.0, 2.0) // PLE's credential exchange flakes
        .retry_policy(3, 1.5);

    let measured = empirical_game_diagnosed(&federation, &workload, &config, &plan)?;

    println!("== measured coalition values under the fault plan ==");
    for c in Coalition::all(3) {
        if c.is_empty() {
            continue;
        }
        let Some(rec) = measured.diagnostics.get(c) else {
            println!("  v({c:?}) — no diagnostics recorded");
            continue;
        };
        println!(
            "  v({:?}) = {:>8.1}   faults injected: {}, credential retries: {}, source: {:?}",
            c,
            measured.game.value(c),
            rec.faults_injected,
            rec.credential_retries,
            rec.source,
        );
    }

    let shares = shapley_normalized(&measured.game);
    println!("\n== Shapley shares of the degraded federation ==");
    for (name, share) in ["PLC", "PLE", "PLJ"].iter().zip(&shares) {
        println!("  {name}: {share:.4}");
    }

    let scenario = FederationScenario::from_measured(
        federation.facilities(),
        Demand::one_experiment(ExperimentClass::simple("exp", 3.0, 1.0)),
        measured.game.clone(),
    );
    let report = policy_report_measured(&scenario, measured.diagnostics.clone());
    println!("\n{}", report.render());
    Ok(())
}
