//! Statistical multiplexing: the dynamics the paper's static model
//! abstracts away, made explicit with the discrete-event simulator.
//!
//! Two questions:
//!
//! 1. How much does *pooling* reduce blocking? (Two separate facilities vs
//!    one federation — compared against the Erlang-B analytical baseline.)
//! 2. How do holding times change the value of federation? (The paper's
//!    §2.2 point: capacity-hungry jobs multiplex; diversity-hungry
//!    experiments do not.)
//!
//! ```text
//! cargo run --release --example demand_simulation
//! ```

use fedval::desim::{erlang_b, offered_load};
use fedval::{
    run_coalition, synthetic_authority, Coalition, ExperimentClass, Federation, SimConfig, Workload,
};

fn main() {
    // --- 1. Pooling gain on a capacity workload --------------------------
    // Two identical authorities; a slice needs exactly one location
    // (threshold 0, max 1 location) so each sliver is one "server":
    // this is two M/M/c/c systems vs one pooled M/M/2c/2c.
    println!("== multiplexing gain: separate vs federated (capacity workload) ==");
    let site_count = 4u32;
    let capacity_per_site = 2u64; // 2 nodes × 1 sliver
    let servers_each = site_count as u64 * capacity_per_site;
    let federation = Federation::new(vec![
        synthetic_authority("A", 0, site_count, 2, 1, 50),
        synthetic_authority("B", site_count, site_count, 2, 1, 50),
    ]);
    let lambda = 6.0;
    let holding = 1.0;
    let single_location = ExperimentClass::simple("job", 0.0, 1.0).with_max_locations(1);
    let config = SimConfig {
        horizon: 5000.0,
        warmup: 500.0,
        seed: 99,
        churn: None,
    };

    // Each authority alone faces half the arrivals.
    let alone_wl = Workload::single(single_location.clone(), lambda / 2.0, holding);
    let alone = run_coalition(&federation, Coalition::singleton(0), &alone_wl, &config);
    // The federation faces the combined stream.
    let pooled_wl = Workload::single(single_location, lambda, holding);
    let pooled = run_coalition(&federation, Coalition::grand(2), &pooled_wl, &config);

    let a_each = offered_load(lambda / 2.0, holding);
    let b_alone = erlang_b(a_each, servers_each as usize);
    let b_pooled = erlang_b(2.0 * a_each, 2 * servers_each as usize);
    println!("servers per authority: {servers_each}, offered load each: {a_each:.1} Erlang");
    println!(
        "blocking alone   : simulated {:>6.4}  erlang-B {:>6.4}",
        alone.blocking_probability(0),
        b_alone
    );
    println!(
        "blocking pooled  : simulated {:>6.4}  erlang-B {:>6.4}",
        pooled.blocking_probability(0),
        b_pooled
    );
    println!("pooling cuts blocking — the classic statistical-multiplexing gain.\n");

    // --- 2. Holding time and the value of federation ---------------------
    // Diversity-hungry experiments occupy a sliver at *every* location, so
    // shorter holding times (the paper's t) directly raise how many can be
    // multiplexed onto the same infrastructure.
    println!("== delivered utility vs holding time (diversity workload) ==");
    let diversity_class = ExperimentClass::simple("overlay", 6.0, 1.0);
    println!(
        "{:>12} {:>14} {:>10}",
        "mean hold", "total utility", "blocking"
    );
    for hold in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let wl = Workload::single(diversity_class.clone(), 2.0, hold);
        let r = run_coalition(&federation, Coalition::grand(2), &wl, &config);
        println!(
            "{hold:>12.2} {:>14.0} {:>10.4}",
            r.total_utility,
            r.blocking_probability(0)
        );
    }
    println!();
    println!("Shorter holding times (the paper's small t) let the same nodes host");
    println!("many more diversity-hungry experiments: the multiplexing dimension");
    println!("that makes federation super-additive (§3.2.1).");
}
