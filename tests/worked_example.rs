//! End-to-end reproduction of the paper's §4.1 worked example through the
//! umbrella API, exercising model → allocation → game → solution concepts
//! across crates.

use fedval::{
    is_core_nonempty, least_core, nucleolus, paper_facilities, shapley_normalized, Coalition,
    Demand, ExperimentClass, FederationScenario, SharingScheme,
};

fn scenario(l: f64) -> FederationScenario {
    FederationScenario::new(
        paper_facilities([1, 1, 1]),
        Demand::one_experiment(ExperimentClass::simple("e", l, 1.0)),
    )
}

#[test]
fn paper_headline_numbers() {
    let s = scenario(500.0);
    assert_eq!(s.grand_value(), 1300.0);
    let phi = s.shapley_shares();
    let pi = s.proportional_shares();
    assert!((phi[1] - 2.0 / 13.0).abs() < 1e-12, "phi_hat_2 = 2/13");
    assert!((pi[1] - 4.0 / 13.0).abs() < 1e-12, "pi_hat_2 = 4/13");
}

#[test]
fn coalition_values_match_the_strict_threshold_derivation() {
    let s = scenario(500.0);
    let v = |players: &[usize]| s.value(Coalition::from_players(players.iter().copied()));
    assert_eq!(v(&[0]), 0.0);
    assert_eq!(v(&[1]), 0.0);
    assert_eq!(v(&[2]), 800.0);
    assert_eq!(v(&[0, 1]), 0.0); // 500 locations is NOT > 500
    assert_eq!(v(&[0, 2]), 900.0);
    assert_eq!(v(&[1, 2]), 1200.0);
    assert_eq!(v(&[0, 1, 2]), 1300.0);
}

#[test]
fn share_crossovers_along_fig4() {
    // The §4.1 narrative: facility shares change exactly at the points
    // where coalitions gain/lose the ability to serve.
    let phi_at = |l: f64| scenario(l).shapley_shares();

    // Below every threshold the game is additive: shares proportional.
    let p0 = phi_at(50.0);
    assert!((p0[0] - 100.0 / 1300.0).abs() < 1e-9);

    // l in (1200, 1300): only the grand coalition serves → equal thirds.
    let p_high = phi_at(1250.0);
    for v in &p_high {
        assert!((v - 1.0 / 3.0).abs() < 1e-9);
    }

    // Above 1300 nothing can serve.
    let p_dead = phi_at(1350.0);
    assert!(p_dead.iter().all(|&v| v == 0.0));
}

#[test]
fn solution_concepts_are_consistent_on_the_worked_example() {
    let s = scenario(500.0);
    let game = s.game();

    // Shapley via the normalized helper agrees with the scenario path.
    let phi_direct = shapley_normalized(game);
    let phi_scenario = s.shapley_shares();
    for (a, b) in phi_direct.iter().zip(&phi_scenario) {
        assert!((a - b).abs() < 1e-12);
    }

    // Nucleolus is efficient and individually rational here.
    let nu = nucleolus(game);
    assert!((nu.iter().sum::<f64>() - 1300.0).abs() < 1e-6);
    assert!(nu[2] >= 800.0 - 1e-6, "facility 3 can claim 800 alone");

    // The least-core ε and core emptiness agree.
    let lc = least_core(game);
    assert_eq!(lc.epsilon <= 1e-7, is_core_nonempty(game));
}

#[test]
fn policy_report_runs_every_scheme() {
    let s = scenario(500.0);
    for scheme in SharingScheme::all_builtin() {
        let shares = scheme.shares(&s);
        assert_eq!(shares.len(), 3);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{}: {total}", scheme.name());
    }
}
