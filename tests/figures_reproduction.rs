//! The full figure-reproduction acceptance suite: every qualitative claim
//! the paper makes about its evaluation figures must hold on the
//! regenerated series, plus exact spot values where the paper (or the
//! closed-form derivation) pins them down.

use fedval_bench::{check_all, fig4_threshold, fig6_resources, fig8_volume, table_e1};

#[test]
fn all_paper_claims_hold() {
    let results = check_all();
    assert_eq!(results.len(), 8, "one check set per table/figure");
    for r in &results {
        for (desc, ok) in &r.assertions {
            assert!(ok, "{}: {desc}", r.id);
        }
    }
}

#[test]
fn table_e1_exact_values() {
    let t = table_e1();
    // Hand-computed marginal contributions over the 6 orderings:
    //   ϕ₁ = (0 + 0 + 0 + 100 + 100 + 100)/6 = 50      → ϕ̂₁ = 1/26
    //   ϕ₂ = (0 + 0 + 0 + 400 + 400 + 400)/6 = 200     → ϕ̂₂ = 2/13
    //   ϕ₃ = 1300 − 50 − 200 = 1050 (efficiency)       → ϕ̂₃ = 21/26
    assert!(
        (t.shapley_hat[0] - 1.0 / 26.0).abs() < 1e-12,
        "{}",
        t.shapley_hat[0]
    );
    assert!((t.shapley_hat[1] - 2.0 / 13.0).abs() < 1e-12);
    assert!((t.shapley_hat[2] - 21.0 / 26.0).abs() < 1e-12);
    let sum: f64 = t.shapley_hat.iter().sum();
    assert!((sum - 1.0).abs() < 1e-12);
}

#[test]
fn fig4_grid_and_series_dimensions() {
    let fig = fig4_threshold();
    assert_eq!(fig.series.len(), 6);
    for s in &fig.series {
        assert_eq!(s.points.len(), 29, "l = 0..=1400 step 50");
    }
}

#[test]
fn fig6_closed_form_spot_values() {
    // Derived in DESIGN.md: coalition {1,2} at l=299 has V = 12000, the
    // grand coalition at l=0 has V = 24000 (all slots).
    let fig = fig6_resources();
    // At l = 0 all ϕ̂ equal 1/3 — already covered by checks; here pin the
    // sum-to-one at a mid threshold.
    for l in [300.0, 600.0, 900.0] {
        let total: f64 = (1..=3)
            .map(|i| fig.series(&format!("phi_hat_{i}")).unwrap().at(l).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "l = {l}: {total}");
    }
}

#[test]
fn fig8_consumption_transitions_between_regimes() {
    let fig = fig8_volume();
    let rho1 = fig.series("rho_hat_1").unwrap();
    // Low-K regime: ρ̂₁ = L₁/ΣL = 100/1300; saturation: π̂₁ = 8000/48000.
    assert!((rho1.at(5.0).unwrap() - 100.0 / 1300.0).abs() < 1e-9);
    assert!((rho1.at(100.0).unwrap() - 8000.0 / 48000.0).abs() < 1e-2);
    // The transition is monotone increasing for facility 1 (its capacity
    // share exceeds its location share).
    let ys: Vec<f64> = rho1.points.iter().skip(1).map(|&(_, y)| y).collect();
    assert!(ys.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{ys:?}");
}
