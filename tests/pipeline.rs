//! Cross-crate pipeline tests: the measured (testbed) route and the
//! closed-form (model) route must tell consistent stories, and the DES
//! must agree with loss-system analytics.

use fedval::desim::{erlang_b, Distribution, Exponential, SimRng, Simulator};
use fedval::testbed::ClassLoad;
use fedval::{
    empirical_game, paper_facilities, run_coalition, shapley_normalized, synthetic_authority,
    Coalition, CoalitionalGame, Demand, ExperimentClass, Federation, FederationScenario, SimConfig,
    Workload,
};

#[test]
fn measured_shapley_shares_are_a_probability_vector() {
    let federation = Federation::new(vec![
        synthetic_authority("PLC", 0, 8, 2, 2, 100),
        synthetic_authority("PLE", 8, 5, 2, 2, 80),
        synthetic_authority("PLJ", 13, 3, 2, 2, 40),
    ]);
    let workload = Workload {
        classes: vec![
            ClassLoad::external(
                ExperimentClass::simple("p2p", 4.0, 1.0),
                1.0,
                0.5,
            ),
            ClassLoad::external(
                ExperimentClass::simple("wide", 13.0, 1.0),
                0.5,
                0.5,
            ),
        ],
    };
    let config = SimConfig {
        horizon: 800.0,
        warmup: 80.0,
        seed: 5,
        churn: None,
    };
    let game = empirical_game(&federation, &workload, &config);
    let shares = shapley_normalized(&game);
    assert_eq!(shares.len(), 3);
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(shares.iter().all(|&s| s >= -1e-9));
}

#[test]
fn diversity_premium_appears_in_both_routes() {
    // A "wide" class only the full federation can host raises the small
    // authority's Shapley share above its capacity share — in the static
    // model AND in the measured game.

    // Static: L = (8, 5, 3) locations, R = 4 each; class threshold 12.
    let facilities = fedval::paper_facilities_with_locations([8, 5, 3], [4, 4, 4]);
    let scenario = FederationScenario::new(
        facilities,
        Demand::capacity_filling(ExperimentClass::simple("wide", 13.0, 1.0)),
    );
    let static_phi = scenario.shapley_shares();
    let static_pi = scenario.proportional_shares();
    assert!(
        static_phi[2] > static_pi[2],
        "static: {static_phi:?} vs {static_pi:?}"
    );

    // Measured: same geometry as a testbed.
    let federation = Federation::new(vec![
        synthetic_authority("A", 0, 8, 2, 2, 0),
        synthetic_authority("B", 8, 5, 2, 2, 0),
        synthetic_authority("C", 13, 3, 2, 2, 0),
    ]);
    let workload = Workload::single(ExperimentClass::simple("wide", 13.0, 1.0), 2.0, 1.0);
    let config = SimConfig {
        horizon: 600.0,
        warmup: 60.0,
        seed: 17,
        churn: None,
    };
    let game = empirical_game(&federation, &workload, &config);
    let measured_phi = shapley_normalized(&game);
    let capacity: Vec<f64> = federation
        .authorities()
        .iter()
        .map(|a| a.total_capacity() as f64)
        .collect();
    let total_cap: f64 = capacity.iter().sum();
    assert!(
        measured_phi[2] > capacity[2] / total_cap,
        "measured diversity premium: {measured_phi:?} vs capacity {capacity:?}"
    );
}

#[test]
fn federation_never_hurts_in_the_measured_game() {
    // Superadditivity of the measured game on a diversity workload:
    // V(grand) ≥ V(S) for every sub-coalition (same demand stream).
    let federation = Federation::new(vec![
        synthetic_authority("A", 0, 6, 2, 2, 0),
        synthetic_authority("B", 6, 4, 2, 2, 0),
    ]);
    let workload = Workload::single(ExperimentClass::simple("e", 3.0, 1.0), 1.5, 0.5);
    let config = SimConfig {
        horizon: 500.0,
        warmup: 50.0,
        seed: 23,
        churn: None,
    };
    let game = empirical_game(&federation, &workload, &config);
    let grand = game.grand_value();
    for c in Coalition::all(2) {
        assert!(game.value(c) <= grand + 1e-9);
    }
}

#[test]
fn des_blocking_matches_erlang_b() {
    // M/M/c/c via the generic simulator: within ±0.015 of Erlang B.
    let mut sim = Simulator::new();
    let mut rng = SimRng::seed_from(31);
    let arrival = Exponential::with_rate(3.0);
    let service = Exponential::with_mean(1.0); // 3 Erlang offered
    let servers = 5usize;
    enum Ev {
        Arrival,
        Departure,
    }
    sim.schedule(arrival.sample(&mut rng), Ev::Arrival);
    let (mut busy, mut arrivals, mut blocked) = (0usize, 0u64, 0u64);
    while let Some((now, ev)) = sim.next_event() {
        if now > 50_000.0 {
            break;
        }
        match ev {
            Ev::Arrival => {
                arrivals += 1;
                if busy < servers {
                    busy += 1;
                    sim.schedule_at(now + service.sample(&mut rng), Ev::Departure);
                } else {
                    blocked += 1;
                }
                sim.schedule_at(now + arrival.sample(&mut rng), Ev::Arrival);
            }
            Ev::Departure => busy -= 1,
        }
    }
    let simulated = blocked as f64 / arrivals as f64;
    let analytic = erlang_b(3.0, servers);
    assert!(
        (simulated - analytic).abs() < 0.015,
        "simulated {simulated} vs erlang-B {analytic}"
    );
}

#[test]
fn testbed_sim_agrees_with_erlang_on_single_location_class() {
    // Slices capped at one location on a single-authority testbed reduce
    // to an M/M/c/c loss system.
    let federation = Federation::new(vec![synthetic_authority("A", 0, 2, 2, 2, 0)]);
    let servers = 2 * 2 * 2; // sites × nodes × slivers
    let class = ExperimentClass::simple("job", 0.0, 1.0).with_max_locations(1);
    let lambda = 6.0;
    let workload = Workload::single(class, lambda, 1.0);
    let config = SimConfig {
        horizon: 8000.0,
        warmup: 500.0,
        seed: 41,
        churn: None,
    };
    let report = run_coalition(&federation, Coalition::grand(1), &workload, &config);
    let analytic = erlang_b(lambda, servers);
    assert!(
        (report.blocking_probability(0) - analytic).abs() < 0.02,
        "sim {} vs erlang {analytic}",
        report.blocking_probability(0)
    );
}

#[test]
fn closed_form_and_scenario_agree_on_fig8_game() {
    // Spot-check the derived closed form V(S) = B_S(min(K, m⁰)) on the
    // Fig. 8 configuration against the scenario API.
    let facilities = paper_facilities([80, 60, 20]);
    let k = 40u64;
    let scenario = FederationScenario::new(
        facilities,
        Demand::single(
            ExperimentClass::simple("e", 250.0, 1.0),
            fedval::Volume::Count(k),
        ),
    );
    // Facility 2 alone: 400 locations cap 60 ⇒ V = 400·min(K, 60) = 16000.
    assert_eq!(scenario.value(Coalition::singleton(1)), 16_000.0);
    // Facility 3 alone: 800 locations cap 20 ⇒ V = 800·min(K, 20) = 16000.
    assert_eq!(scenario.value(Coalition::singleton(2)), 16_000.0);
    // Facility 1 alone: 100 < 251 locations ⇒ 0.
    assert_eq!(scenario.value(Coalition::singleton(0)), 0.0);
}
