//! Property tests for the failure model: the closed-form `Churn`
//! availability must match long-run measured uptime, and injecting an
//! authority departure must never increase any coalition's measured
//! value (monotone degradation).

use fedval::testbed::{run_coalition, run_coalition_faulted, Churn, SimConfig};
use fedval::{synthetic_authority, Coalition, ExperimentClass, FaultPlan, Federation, Workload};
use fedval_desim::{Distribution, Exponential, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Churn::availability()` = MTBF/(MTBF+MTTR) agrees with the uptime
    /// fraction measured over many simulated up/down cycles.
    #[test]
    fn churn_availability_matches_measured_uptime(
        mtbf in 1.0f64..20.0,
        mttr in 0.1f64..10.0,
        seed in 0u64..1_000,
    ) {
        let churn = Churn { mtbf, mttr };
        let mut rng = SimRng::seed_from(seed);
        let up_dist = Exponential::with_mean(mtbf);
        let down_dist = Exponential::with_mean(mttr);
        let horizon = 600.0 * (mtbf + mttr);
        let (mut t, mut up_time) = (0.0, 0.0);
        while t < horizon {
            let up = up_dist.sample(&mut rng);
            up_time += up.min(horizon - t);
            t += up;
            if t >= horizon {
                break;
            }
            t += down_dist.sample(&mut rng);
        }
        let measured = up_time / horizon;
        let predicted = churn.availability();
        prop_assert!(
            (measured - predicted).abs() < 0.1,
            "measured {measured} vs predicted {predicted} (mtbf={mtbf}, mttr={mttr})"
        );
    }

    /// Removing an authority mid-trace never makes any coalition more
    /// valuable: for every coalition, the run with the departure injected
    /// measures at most the clean run's utility. (Load is kept moderate
    /// so admission is capacity-unconstrained — the regime where the
    /// degradation argument is exact.)
    #[test]
    fn authority_departure_never_increases_measured_value(
        rate in 0.2f64..1.0,
        holding in 0.2f64..1.0,
        depart_at in 0.0f64..300.0,
        seed in 0u64..1_000,
    ) {
        let fed = Federation::new(vec![
            synthetic_authority("A", 0, 3, 2, 4, 0),
            synthetic_authority("B", 3, 3, 2, 4, 0),
        ]);
        let wl = Workload::single(ExperimentClass::simple("e", 1.0, 1.0), rate, holding);
        let cfg = SimConfig { horizon: 300.0, warmup: 30.0, seed, churn: None };
        let plan = FaultPlan::new().authority_departure(1, depart_at);
        for mask in 1u64..4 {
            let c = Coalition(mask);
            let clean = run_coalition(&fed, c, &wl, &cfg);
            let faulted = run_coalition_faulted(&fed, c, &wl, &cfg, &plan)
                .expect("valid plan always runs");
            prop_assert!(
                faulted.report.total_utility <= clean.total_utility + 1e-9,
                "coalition {mask:#b}: departure raised value {} -> {}",
                clean.total_utility,
                faulted.report.total_utility
            );
            // Coalitions without the departing authority are untouched.
            if !c.contains(1) {
                prop_assert_eq!(faulted.report.total_utility, clean.total_utility);
                prop_assert_eq!(faulted.faults_injected, 0);
            }
        }
    }
}
