//! Integration tests for the model extensions: overlap (§2.1 `o_ij`),
//! availability (§2.1 `Tᵢ`), weighted Shapley (user-base weights), the
//! Bondareva–Shapley duality, and hierarchical (Owen) sharing.

use fedval::coalition::{balancedness, is_balanced, owen_value, quotient_game, weighted_shapley};
use fedval::core::{block_overlap, diversity_discount, AvailabilityGame, IndependentCoverage};
use fedval::policy::hierarchical_shapley;
use fedval::{
    is_core_nonempty, paper_facilities, shapley, shapley_normalized, Coalition, CoalitionalGame,
    Demand, ExperimentClass, Facility, FederationGame, FederationScenario, TableGame,
};

fn worked_demand() -> Demand {
    Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0))
}

#[test]
fn overlap_reduces_value_monotonically() {
    let mut prev = f64::INFINITY;
    for shared in [0u32, 100, 200, 300, 400] {
        let facilities = block_overlap(&[100, 400 - shared, 800 - shared], shared, 1);
        let scenario = FederationScenario::new(facilities, worked_demand());
        let v = scenario.grand_value();
        assert!(v <= prev, "more overlap must not create value");
        prev = v;
    }
}

#[test]
fn sampled_overlap_model_tracks_expectations() {
    let model = IndependentCoverage::new(500, vec![(0.4, 1), (0.4, 1), (0.4, 1)]);
    let facilities = model.sample(123);
    let discount = diversity_discount(&facilities);
    // E[union] = 500·(1 − 0.6³) = 392; E[sum] = 600 ⇒ discount ≈ 0.653.
    assert!(
        (discount - 392.0 / 600.0).abs() < 0.06,
        "discount = {discount}"
    );
    // The sampled facilities feed straight into the game machinery.
    let scenario = FederationScenario::new(
        facilities,
        Demand::one_experiment(ExperimentClass::simple("e", 300.0, 1.0)),
    );
    let shares = scenario.shapley_shares();
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn availability_game_matches_hand_expectation_on_worked_example() {
    let facilities = paper_facilities([1, 1, 1]);
    let demand = worked_demand();
    let base = TableGame::from_game(&FederationGame::new(&facilities, &demand));
    let game = AvailabilityGame::new(base, vec![1.0, 0.5, 1.0]);
    // V_T(N) = .5·V({1,2,3}) + .5·V({1,3}) = 650 + 450 = 1100.
    assert!((game.grand_value() - 1100.0).abs() < 1e-9);
    let phi_hat = shapley_normalized(&TableGame::from_game(&game));
    assert!((phi_hat[1] - 1.0 / 11.0).abs() < 1e-9);
}

#[test]
fn weighted_shapley_biases_toward_user_heavy_facilities() {
    let facilities = paper_facilities([1, 1, 1]);
    let demand = worked_demand();
    let game = TableGame::from_game(&FederationGame::new(&facilities, &demand));
    let unweighted = shapley(&game);
    // Facility 1 carries 10× the users of the others (the Uᵢ dimension).
    let weighted = weighted_shapley(&game, &[10.0, 1.0, 1.0]);
    assert!(weighted[0] > unweighted[0]);
    // Efficiency in both cases.
    assert!((weighted.iter().sum::<f64>() - 1300.0).abs() < 1e-9);
    assert!((unweighted.iter().sum::<f64>() - 1300.0).abs() < 1e-9);
}

#[test]
fn bondareva_duality_agrees_with_least_core_on_federation_games() {
    for l in [0.0, 300.0, 500.0, 900.0, 1250.0] {
        let scenario = FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", l, 1.0)),
        );
        let game = scenario.game();
        assert_eq!(
            is_balanced(game),
            is_core_nonempty(game),
            "duality mismatch at l = {l}"
        );
        // The balanced-cover certificate really covers every player once.
        let b = balancedness(game);
        for i in 0..3 {
            let cover: f64 = b
                .weights
                .iter()
                .filter(|(s, _)| s.contains(i))
                .map(|&(_, w)| w)
                .sum();
            assert!((cover - 1.0).abs() < 1e-6);
        }
    }
}

#[test]
fn hierarchical_shares_are_consistent_with_flat_quotient() {
    // PLC = 2 sites (60+40), PLE = 2 sites (250+150), PLJ = 1 site (800):
    // the quotient game is exactly the paper's (100, 400, 800) example.
    let site_groups = vec![
        vec![
            Facility::uniform("PLC-a", 0, 60, 1),
            Facility::uniform("PLC-b", 60, 40, 1),
        ],
        vec![
            Facility::uniform("PLE-a", 100, 250, 1),
            Facility::uniform("PLE-b", 350, 150, 1),
        ],
        vec![Facility::uniform("PLJ-a", 500, 800, 1)],
    ];
    let h = hierarchical_shapley(&site_groups, &worked_demand());
    assert!((h.authority_shares[0] - 1.0 / 26.0).abs() < 1e-9);
    assert!((h.authority_shares[1] - 2.0 / 13.0).abs() < 1e-9);
    assert!((h.authority_shares[2] - 21.0 / 26.0).abs() < 1e-9);
    // Quotient consistency at the site level.
    for (a, group) in h.site_shares.iter().enumerate() {
        let sum: f64 = group.iter().sum();
        assert!((sum - h.authority_shares[a]).abs() < 1e-9);
    }
}

#[test]
fn owen_on_federation_game_respects_union_structure() {
    let facilities = vec![
        Facility::uniform("a", 0, 4, 1),
        Facility::uniform("b", 4, 4, 1),
        Facility::uniform("c", 8, 6, 1),
    ];
    let demand = Demand::one_experiment(ExperimentClass::simple("e", 9.0, 1.0));
    let game = TableGame::from_game(&FederationGame::new(&facilities, &demand));
    let unions = [Coalition::from_players([0, 1]), Coalition::singleton(2)];
    let owen = owen_value(&game, &unions);
    let quotient = quotient_game(&game, &unions);
    let quotient_phi = shapley(&quotient);
    assert!((owen[0] + owen[1] - quotient_phi[0]).abs() < 1e-9);
    assert!((owen[2] - quotient_phi[1]).abs() < 1e-9);
    // Symmetric sites a and b split their union's share equally.
    assert!((owen[0] - owen[1]).abs() < 1e-9);
}
