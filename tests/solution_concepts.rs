//! Property-based tests of the game-theoretic machinery on randomly
//! generated federation-style games.

use fedval::coalition::{
    analyze, harsanyi_dividends, is_in_core, shapley_from_dividends, values_from_dividends,
    TableGame,
};
use fedval::{
    is_core_nonempty, nucleolus, shapley, shapley_monte_carlo, Coalition, CoalitionalGame,
};
use proptest::prelude::*;

/// Random monotone game over n players built from non-negative Harsanyi
/// dividends — guaranteed superadditive-ish structure.
fn random_positive_game(n: usize) -> impl Strategy<Value = TableGame> {
    prop::collection::vec(0.0f64..10.0, 1 << n).prop_map(move |mut dividends| {
        dividends[0] = 0.0; // V(∅) = 0
        let values = values_from_dividends(n, &dividends);
        TableGame::from_values(n, values)
    })
}

/// Random threshold game mimicking the paper's structure.
fn random_threshold_game() -> impl Strategy<Value = TableGame> {
    (prop::collection::vec(1u32..1000, 3..=4), 0u32..2500).prop_map(|(contribs, threshold)| {
        let n = contribs.len();
        TableGame::from_fn(n, move |c: Coalition| {
            let total: u32 = c.players().map(|p| contribs[p]).sum();
            if total > threshold {
                f64::from(total)
            } else {
                0.0
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shapley_is_efficient_and_matches_dividend_route(game in random_positive_game(5)) {
        let phi = shapley(&game);
        let total: f64 = phi.iter().sum();
        prop_assert!((total - game.grand_value()).abs() < 1e-6);
        let phi2 = shapley_from_dividends(&game);
        for (a, b) in phi.iter().zip(&phi2) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn positive_dividend_games_are_convex_with_shapley_in_core(game in random_positive_game(4)) {
        // Non-negative dividends ⇒ convex game ⇒ non-empty core containing
        // the Shapley value (a classical theorem; here an executable one).
        let props = analyze(&game, 1e-7);
        prop_assert!(props.convex);
        prop_assert!(props.superadditive);
        prop_assert!(is_core_nonempty(&game));
        let phi = shapley(&game);
        prop_assert!(is_in_core(&game, &phi, 1e-6));
    }

    #[test]
    fn nucleolus_is_efficient_and_in_core_when_nonempty(game in random_threshold_game()) {
        let nu = nucleolus(&game);
        prop_assert!((nu.iter().sum::<f64>() - game.grand_value()).abs() < 1e-5);
        if is_core_nonempty(&game) {
            prop_assert!(is_in_core(&game, &nu, 1e-5));
        }
    }

    #[test]
    fn monte_carlo_tracks_exact_shapley(game in random_threshold_game()) {
        let exact = shapley(&game);
        let mc = shapley_monte_carlo(&game, 4000, 1234);
        #[allow(clippy::needless_range_loop)]
        for i in 0..exact.len() {
            let tol = 6.0 * mc.std_error[i] + 1e-6;
            prop_assert!(
                (mc.phi[i] - exact[i]).abs() < tol,
                "player {i}: mc {} vs exact {} (tol {tol})",
                mc.phi[i], exact[i]
            );
        }
    }

    #[test]
    fn dividends_invert(game in random_threshold_game()) {
        let d = harsanyi_dividends(&game);
        let v = values_from_dividends(game.n_players(), &d);
        for c in Coalition::all(game.n_players()) {
            prop_assert!((v[c.index()] - game.value(c)).abs() < 1e-6);
        }
    }

    #[test]
    fn threshold_games_shapley_is_symmetric_in_equal_contributions(
        contrib in 1u32..500,
        threshold in 0u32..1600,
    ) {
        let game = TableGame::from_fn(3, move |c: Coalition| {
            let total = contrib * c.len() as u32;
            if total > threshold { f64::from(total) } else { 0.0 }
        });
        let phi = shapley(&game);
        prop_assert!((phi[0] - phi[1]).abs() < 1e-9);
        prop_assert!((phi[1] - phi[2]).abs() < 1e-9);
    }
}
