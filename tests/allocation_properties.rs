//! Property-based tests of the allocation engine: the analytic optimizer
//! must agree with the exhaustive reference solver on every small random
//! instance, and the greedy baselines must never beat the optimum.

use fedval::core::allocation::{
    is_realizable, max_total_sizes, solve, solve_exact, solve_greedy, GreedyPolicy,
};
use fedval::core::CapacityProfile;
use fedval::{Demand, ExperimentClass, Volume};
use proptest::prelude::*;

fn small_profile() -> impl Strategy<Value = CapacityProfile> {
    // 1–3 capacity groups with at most 8 total slots, so the exhaustive
    // reference solver (experiment budget 8) covers the full optimum even
    // for threshold-0 concave demand, where one experiment per slot is
    // optimal.
    prop::collection::vec((1u64..=4, 1u64..=4), 1..=3).prop_map(|mut groups| {
        let mut remaining_slots = 8u64;
        for (cap, count) in &mut groups {
            let max_count = remaining_slots / *cap;
            *count = (*count).min(max_count);
            remaining_slots -= *cap * *count;
        }
        groups.retain(|&(_, c)| c > 0);
        if groups.is_empty() {
            groups.push((1, 1));
        }
        CapacityProfile::from_groups(groups)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analytic_matches_exact_single_class(
        profile in small_profile(),
        threshold in 0u64..6,
        volume in 1u64..6,
        capacity_filling in any::<bool>(),
    ) {
        let vol = if capacity_filling {
            Volume::CapacityFilling
        } else {
            Volume::Count(volume)
        };
        let demand = Demand::single(
            ExperimentClass::simple("x", threshold as f64, 1.0),
            vol,
        );
        let exact = solve_exact(&profile, &demand).unwrap();
        let fast = solve(&profile, &demand).unwrap();
        prop_assert!(
            (exact.total_utility - fast.total_utility).abs() < 1e-9,
            "profile {:?} l={} vol={:?}: exact {} analytic {}",
            profile.groups(), threshold, vol,
            exact.total_utility, fast.total_utility
        );
    }

    #[test]
    fn analytic_matches_exact_nonlinear_shapes(
        profile in small_profile(),
        threshold in 0u64..4,
        shape_id in 0usize..4,
    ) {
        let d = [0.5, 0.8, 1.5, 2.0][shape_id];
        let demand = Demand::single(
            ExperimentClass::simple("x", threshold as f64, d),
            Volume::CapacityFilling,
        );
        let exact = solve_exact(&profile, &demand).unwrap();
        let fast = solve(&profile, &demand).unwrap();
        prop_assert!(
            (exact.total_utility - fast.total_utility).abs() < 1e-9,
            "profile {:?} l={} d={}: exact {} analytic {}",
            profile.groups(), threshold, d,
            exact.total_utility, fast.total_utility
        );
    }

    #[test]
    fn analytic_matches_exact_two_class_mixture(
        profile in small_profile(),
        l2 in 1u64..6,
        k1 in 0u64..4,
        k2 in 0u64..4,
    ) {
        let demand = Demand {
            components: vec![
                fedval::core::DemandComponent {
                    class: ExperimentClass::simple("a", 0.0, 1.0),
                    volume: Volume::Count(k1),
                },
                fedval::core::DemandComponent {
                    class: ExperimentClass::simple("b", l2 as f64, 1.0),
                    volume: Volume::Count(k2),
                },
            ],
        };
        let exact = solve_exact(&profile, &demand).unwrap();
        let fast = solve(&profile, &demand).unwrap();
        prop_assert!(
            (exact.total_utility - fast.total_utility).abs() < 1e-9,
            "profile {:?} l2={} k=({},{}): exact {} analytic {}",
            profile.groups(), l2, k1, k2,
            exact.total_utility, fast.total_utility
        );
    }

    #[test]
    fn greedy_never_beats_optimal(
        profile in small_profile(),
        threshold in 0u64..5,
    ) {
        let demand = Demand::single(
            ExperimentClass::simple("x", threshold as f64, 1.0),
            Volume::CapacityFilling,
        );
        let optimal = solve(&profile, &demand).unwrap().total_utility;
        for policy in [GreedyPolicy::MaxDiversity, GreedyPolicy::Minimal] {
            let g = solve_greedy(&profile, &demand, policy).total_utility;
            prop_assert!(g <= optimal + 1e-9, "{policy:?}: {g} > {optimal}");
        }
    }

    #[test]
    fn max_total_output_is_realizable_and_bound_respecting(
        profile in small_profile(),
        m in 1usize..6,
        lb in 1u64..4,
    ) {
        let lbs = vec![lb; m];
        let ubs = vec![profile.n_locations(); m];
        if let Some(sizes) = max_total_sizes(&profile, &lbs, &ubs) {
            prop_assert!(is_realizable(&sizes, &profile));
            prop_assert!(sizes.iter().all(|&x| x >= lb));
            prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
            // Optimality against exhaustive search over totals.
            let exact = solve_exact(
                &profile,
                &Demand::single(
                    ExperimentClass::simple("x", (lb - 1) as f64, 1.0),
                    Volume::Count(m as u64),
                ),
            )
            .unwrap();
            let total: u64 = sizes.iter().sum();
            prop_assert!(
                total as f64 >= exact.total_utility - 1e-9
                    || exact.per_class[0].admitted < m as u64,
                "greedy total {total} below exhaustive {} at full admission",
                exact.total_utility
            );
        }
    }
}
