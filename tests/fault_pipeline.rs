//! End-to-end fault-injection pipeline: testbed simulation under a
//! `FaultPlan` → measured empirical game → Shapley shares → policy
//! report. The whole chain must complete without panicking, produce
//! finite payoffs, and surface per-coalition measurement diagnostics.

use fedval::coalition::CoalitionalGame;
use fedval::core::ExperimentClass;
use fedval::testbed::SimConfig;
use fedval::{
    empirical_game_diagnosed, policy_report_measured, shapley_normalized, synthetic_authority,
    Coalition, Demand, FaultPlan, Federation, FederationScenario, Workload,
};

fn federation() -> Federation {
    Federation::new(vec![
        synthetic_authority("PLC", 0, 5, 2, 3, 100),
        synthetic_authority("PLE", 5, 3, 2, 3, 60),
        synthetic_authority("PLJ", 8, 3, 2, 3, 40),
    ])
}

fn config() -> SimConfig {
    SimConfig {
        horizon: 300.0,
        warmup: 30.0,
        seed: 21,
        churn: None,
    }
}

#[test]
fn faulted_pipeline_completes_with_finite_payoffs_and_diagnostics() {
    let fed = federation();
    let workload = Workload::single(ExperimentClass::simple("exp", 3.0, 1.0), 1.5, 1.0);
    // Node crashes, one correlated site-wide outage, one mid-trace
    // authority departure, one transient credential outage.
    let plan = FaultPlan::new()
        .node_crash(2, 60.0, Some(40.0))
        .node_crash(12, 90.0, None)
        .site_outage(0, 1, 100.0, 50.0)
        .authority_departure(2, 150.0)
        .credential_outage(1, 200.0, 2.0)
        .retry_policy(3, 1.5);

    let measured = empirical_game_diagnosed(&fed, &workload, &config(), &plan)
        .expect("3-authority game is measurable");

    // The game is fully populated and finite.
    assert_eq!(measured.game.n_players(), 3);
    for c in Coalition::all(3) {
        assert!(measured.game.value(c).is_finite(), "v({c:?}) finite");
    }
    // Every coalition has a diagnostics record; the injected faults are
    // visible in them (the grand coalition saw all five plan entries).
    let d = &measured.diagnostics;
    assert_eq!(d.per_coalition.len(), 8);
    assert!(d.total_faults_injected() > 0);
    assert_eq!(d.get(Coalition::grand(3)).unwrap().faults_injected, 5);
    assert_eq!(d.fallbacks_used(), 0, "a valid plan measures every run");

    // Shapley on the measured game: finite shares summing to one.
    let shares = shapley_normalized(&measured.game);
    assert_eq!(shares.len(), 3);
    assert!(shares.iter().all(|s| s.is_finite()));
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // Policy report over the measured scenario, with diagnostics attached.
    let scenario = FederationScenario::from_measured(
        fed.facilities(),
        Demand::one_experiment(ExperimentClass::simple("exp", 3.0, 1.0)),
        measured.game.clone(),
    );
    let report = policy_report_measured(&scenario, measured.diagnostics.clone());
    let payoffs = scenario.payoffs(&shares);
    assert!(payoffs.iter().all(|p| p.is_finite()));
    assert!((payoffs.iter().sum::<f64>() - scenario.grand_value()).abs() < 1e-9);
    let text = report.render();
    assert!(text.contains("measurement:"), "{text}");
    assert!(!report.recommended().is_empty());
}

#[test]
fn degraded_pipeline_survives_a_poisoned_plan() {
    // An unschedulable fault (NaN time) on authority 0's node wedges every
    // run containing authority 0; the pipeline must degrade to fallback
    // values, disclose them, and still produce a usable report.
    let fed = federation();
    let workload = Workload::single(ExperimentClass::simple("exp", 2.0, 1.0), 1.5, 1.0);
    let plan = FaultPlan::new().node_crash(0, f64::NAN, None);

    let measured =
        empirical_game_diagnosed(&fed, &workload, &config(), &plan).expect("degrades, not errors");
    let d = &measured.diagnostics;
    assert_eq!(d.fallbacks_used(), 4, "the 4 coalitions containing 0");
    for c in Coalition::all(3) {
        assert!(measured.game.value(c).is_finite());
        if !c.is_empty() && c.contains(0) {
            let rec = d.get(c).unwrap();
            assert!(rec.source.is_fallback());
            assert!(rec.error.is_some());
        }
    }
    // The fallback game is still superadditive enough to report on.
    let shares = shapley_normalized(&measured.game);
    assert!(shares.iter().all(|s| s.is_finite()));
    let scenario = FederationScenario::from_measured(
        fed.facilities(),
        Demand::one_experiment(ExperimentClass::simple("exp", 2.0, 1.0)),
        measured.game.clone(),
    );
    let report = policy_report_measured(&scenario, measured.diagnostics.clone());
    let text = report.render();
    assert!(text.contains("warning:"), "fallbacks are disclosed: {text}");
}
