//! End-to-end tests of the `fedval` CLI binary (spawned as a real
//! process via the path Cargo exports to integration tests).

use std::process::Command;

fn fedval(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fedval"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn shares_defaults_print_the_worked_example() {
    let (stdout, _, ok) = fedval(&["shares"]);
    assert!(ok);
    assert!(stdout.contains("V(N) = 1300.00"), "{stdout}");
    assert!(stdout.contains("0.1538"), "phi_hat_2 = 2/13: {stdout}");
}

#[test]
fn values_lists_every_coalition() {
    let (stdout, _, ok) = fedval(&["values", "--locations", "10,20", "--threshold", "15"]);
    assert!(ok);
    assert!(stdout.contains("{1}"));
    assert!(stdout.contains("{1,2}"));
    // V({2}) = 20 (20 > 15), V({1,2}) = 30.
    assert!(stdout.contains("20.00"));
    assert!(stdout.contains("30.00"));
}

#[test]
fn report_includes_all_schemes_and_recommendation() {
    let (stdout, _, ok) = fedval(&[
        "report",
        "--capacities",
        "80,60,20",
        "--threshold",
        "250",
        "--volume",
        "40",
    ]);
    assert!(ok);
    for scheme in ["shapley", "proportional", "consumption", "nucleolus", "equal"] {
        assert!(stdout.contains(scheme), "missing {scheme}: {stdout}");
    }
    assert!(stdout.contains("recommended:"));
}

#[test]
fn bad_input_fails_with_usage() {
    let (_, stderr, ok) = fedval(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");

    let (_, stderr, ok) = fedval(&["shares", "--locations", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("--locations"));
}

#[test]
fn nucleolus_scheme_via_cli() {
    let (stdout, _, ok) = fedval(&["shares", "--scheme", "nucleolus"]);
    assert!(ok);
    assert!(stdout.contains("nucleolus"));
    // Payoffs must sum to V(N) = 1300 — sum the payoff column of the
    // facility rows (lines whose first token is the facility index).
    let total: f64 = stdout
        .lines()
        .filter(|l| {
            l.split_whitespace()
                .next()
                .is_some_and(|t| t.parse::<u32>().is_ok())
        })
        .filter_map(|l| l.split_whitespace().last())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum();
    assert!((total - 1300.0).abs() < 1.0, "payoff column sums to {total}");
}

#[test]
fn trace_flag_writes_valid_jsonl_with_pipeline_spans() {
    let path = std::env::temp_dir().join("fedval_cli_trace_test.jsonl");
    let path_arg = path.to_str().expect("temp path is utf-8");
    let (stdout, _, ok) = fedval(&["report", "--trace", path_arg]);
    assert!(ok);
    assert!(stdout.contains("recommended:"), "{stdout}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"type\":"), "untyped record: {line}");
    }
    // The §4.1 pipeline is visible: scenario build, every coalition LP
    // evaluation (8 for 3 players), Shapley aggregation, report build.
    for span in [
        "core.scenario.table_build",
        "coalition.game.eval",
        "coalition.shapley.exact",
        "policy.report.build",
        "fedval.cli.command",
    ] {
        assert!(text.contains(span), "trace is missing {span}");
    }
    let evals = text
        .lines()
        .filter(|l| l.contains("span_start") && l.contains("coalition.game.eval"))
        .count();
    assert_eq!(evals, 8, "one eval span per coalition of 3 players");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_flag_appends_run_report() {
    let (stdout, _, ok) = fedval(&["shares", "--metrics", "--scheme", "nucleolus"]);
    assert!(ok);
    // Command output first, then the run report.
    assert!(stdout.contains("V(N) = 1300.00"), "{stdout}");
    assert!(stdout.contains("== run report =="), "{stdout}");
    assert!(stdout.contains("-- spans (wall time) --"), "{stdout}");
    assert!(stdout.contains("simplex.solver.pivots"), "{stdout}");
    assert!(stdout.contains("coalition.nucleolus.lp_solves"), "{stdout}");
    let report_at = stdout.find("== run report ==").unwrap();
    let shares_at = stdout.find("V(N)").unwrap();
    assert!(shares_at < report_at, "report must follow the command output");
}

#[test]
fn trace_to_unwritable_path_fails_cleanly() {
    let (_, stderr, ok) = fedval(&["report", "--trace", "/nonexistent-dir/out.jsonl"]);
    assert!(!ok);
    assert!(stderr.contains("--trace"), "{stderr}");
}

#[test]
fn untraced_runs_print_no_report() {
    let (stdout, _, ok) = fedval(&["shares"]);
    assert!(ok);
    assert!(!stdout.contains("== run report =="));
}
