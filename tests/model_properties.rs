//! Property-based tests of scenario-level invariants on random federation
//! configurations.

use fedval::{Coalition, CoalitionalGame, Demand, ExperimentClass, Facility, FederationScenario, Volume};
use proptest::prelude::*;

/// Random 3-facility configuration with disjoint location blocks.
fn facilities_strategy() -> impl Strategy<Value = Vec<Facility>> {
    (
        prop::collection::vec(1u32..60, 3),
        prop::collection::vec(1u64..6, 3),
    )
        .prop_map(|(ls, rs)| {
            let mut start = 0u32;
            ls.iter()
                .zip(&rs)
                .enumerate()
                .map(|(i, (&l, &r))| {
                    let f = Facility::uniform(format!("f{i}"), start, l, r);
                    start += l;
                    f
                })
                .collect()
        })
}

fn demand_strategy() -> impl Strategy<Value = Demand> {
    (0u32..150, prop::bool::ANY, 1u64..30).prop_map(|(l, fill, k)| {
        let class = ExperimentClass::simple("e", f64::from(l), 1.0);
        if fill {
            Demand::capacity_filling(class)
        } else {
            Demand::single(class, Volume::Count(k))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shares_are_probability_vectors(
        facilities in facilities_strategy(),
        demand in demand_strategy(),
    ) {
        let scenario = FederationScenario::new(facilities, demand);
        let grand = scenario.grand_value();
        for (name, shares) in [
            ("shapley", scenario.shapley_shares()),
            ("proportional", scenario.proportional_shares()),
            ("consumption", scenario.consumption_shares()),
        ] {
            let total: f64 = shares.iter().sum();
            if grand > 1e-9 || name == "proportional" {
                prop_assert!(
                    (total - 1.0).abs() < 1e-6,
                    "{name} sums to {total} (V(N) = {grand})"
                );
            }
            prop_assert!(shares.iter().all(|&s| s >= -1e-9), "{name}: {shares:?}");
        }
    }

    #[test]
    fn value_is_monotone_in_coalitions(
        facilities in facilities_strategy(),
        demand in demand_strategy(),
    ) {
        let scenario = FederationScenario::new(facilities, demand);
        let game = scenario.game();
        for s in Coalition::all(3) {
            let vs = game.value(s);
            for i in s.complement(3).players() {
                prop_assert!(
                    game.value(s.with(i)) >= vs - 1e-9,
                    "adding facility {i} to {s} lost value"
                );
            }
        }
    }

    #[test]
    fn federation_game_is_superadditive_for_disjoint_facilities(
        facilities in facilities_strategy(),
        demand in demand_strategy(),
    ) {
        // Disjoint location sets and a common demand: pooling can only
        // help (the union can always mimic the separate optima).
        let scenario = FederationScenario::new(facilities, demand);
        let game = scenario.game();
        // Check V(S∪T) ≥ V(S) + V(T)... NOT generally true for shared
        // external demand (the same customers can't be served twice), but
        // single-class capacity-filling demand replicates, so:
        // only assert the weaker zero-normalized superadditivity vs
        // singletons of the grand coalition.
        let singles: f64 = (0..3)
            .map(|i| game.value(Coalition::singleton(i)))
            .sum();
        let _ = singles; // volume-capped demand may make this fail; check
        // instead that the grand coalition dominates every single.
        for i in 0..3 {
            prop_assert!(game.grand_value() >= game.value(Coalition::singleton(i)) - 1e-9);
        }
    }

    #[test]
    fn capacity_filling_demand_is_superadditive(
        facilities in facilities_strategy(),
        threshold in 0u32..120,
    ) {
        // With capacity-filling single-class demand the game IS
        // superadditive: demand replicates across coalitions.
        let demand = Demand::capacity_filling(
            ExperimentClass::simple("e", f64::from(threshold), 1.0),
        );
        let scenario = FederationScenario::new(facilities, demand);
        prop_assert!(fedval::coalition::is_superadditive(scenario.game(), 1e-7));
    }

    #[test]
    fn scaling_capacity_scales_value_linearly_when_unblocked(
        facilities in facilities_strategy(),
    ) {
        // Threshold-0 capacity-filling demand: V(N) = total slots, so
        // doubling every R doubles V(N).
        let demand = Demand::capacity_filling(ExperimentClass::simple("e", 0.0, 1.0));
        let doubled: Vec<Facility> = facilities
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let mut offer = fedval::LocationOffer::new();
                for (l, r) in f.offer.iter() {
                    offer.add(l, r * 2);
                }
                Facility::new(format!("d{i}"), offer)
            })
            .collect();
        let v1 = FederationScenario::new(facilities, demand.clone()).grand_value();
        let v2 = FederationScenario::new(doubled, demand).grand_value();
        prop_assert!((v2 - 2.0 * v1).abs() < 1e-6, "{v1} vs {v2}");
    }
}
