//! Parallel-vs-sequential equivalence guards (DESIGN.md §9).
//!
//! The determinism contract of this workspace's parallel paths is *bit
//! equality*, not approximate equality: `shapley_parallel` must return
//! exactly `shapley`'s floats for every thread count, and
//! [`fedval_bench::run_sweep`]-generated figure data must render to
//! identical bytes at threads=1 and threads=4. Anything weaker would let
//! thread count leak into committed figure CSVs and
//! BENCH_pipeline.json's deterministic section.

use fedval_bench::{run_sweep, set_sweep_threads};
use fedval_coalition::{shapley, shapley_parallel, TableGame};
use proptest::prelude::*;

/// Random small `TableGame`: 2–6 players, arbitrary finite values with
/// `V(∅) = 0`. The vector strategy draws the max table size (64) and
/// truncates to `2^n` (the vendored proptest has no `prop_flat_map`).
fn table_game_strategy() -> impl Strategy<Value = TableGame> {
    (
        2usize..=6,
        prop::collection::vec(-100.0f64..100.0, 64),
    )
        .prop_map(|(n, mut values)| {
            values.truncate(1 << n);
            values[0] = 0.0; // V(∅) = 0 convention
            TableGame::from_values(n, values)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shapley_parallel_is_bit_identical(game in table_game_strategy()) {
        let sequential = shapley(&game);
        for threads in 1..=8 {
            let parallel = shapley_parallel(&game, threads);
            // Bit-for-bit: each player's sum runs in the same order on
            // exactly one worker, so even float rounding must agree.
            prop_assert_eq!(
                &sequential,
                &parallel,
                "threads={} diverged",
                threads
            );
        }
    }

    #[test]
    fn run_sweep_is_thread_count_invariant(points in prop::collection::vec(-1000i64..1000, 1..80)) {
        let eval = |&p: &i64| (p as f64).sin() * (p as f64);
        let sequential = run_sweep(&points, eval, 1);
        for threads in [2usize, 3, 4, 8] {
            let parallel = run_sweep(&points, eval, threads);
            prop_assert_eq!(&sequential, &parallel, "threads={} diverged", threads);
        }
    }
}

/// End-to-end: a real figure generator produces byte-identical CSV at
/// threads=1 and threads=4 (the same equality `bench_pipeline` commits
/// to BENCH_pipeline.json and ci.sh re-checks via `repro --csv` diffs).
#[test]
fn figure_data_is_thread_invariant() {
    set_sweep_threads(1);
    let sequential = fedval_bench::fig4_threshold().to_csv();
    set_sweep_threads(4);
    let parallel = fedval_bench::fig4_threshold().to_csv();
    set_sweep_threads(0);
    assert_eq!(
        sequential, parallel,
        "fig4 CSV differs between threads=1 and threads=4"
    );
}
