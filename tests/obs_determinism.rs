//! Nondeterministic-output guard for the observability layer.
//!
//! Two identical seeded runs of the full pipeline (scenario → Shapley →
//! nucleolus → policy report → faulted testbed simulation) recorded under
//! a [`RecordingSink`] must produce *byte-identical* metric snapshots.
//! [`MetricsSnapshot`] deliberately excludes every timing field, so any
//! difference here means a counter, span count, gauge, or event payload
//! depends on something other than the inputs and the seed — exactly the
//! kind of nondeterminism that would silently corrupt BENCH_pipeline.json
//! and cross-machine comparisons.
//!
//! The whole check lives in one `#[test]` because the obs registry is
//! process-global: parallel test threads would interleave their records.

use fedval::{
    empirical_game_diagnosed, paper_facilities, policy_report, synthetic_authority, Demand,
    ExperimentClass, FaultPlan, Federation, FederationScenario, SimConfig, Workload,
};
use fedval_obs::{MetricsSnapshot, RecordingSink};
use std::sync::Arc;

/// One full observed pipeline run; returns the deterministic snapshot text.
fn traced_run() -> String {
    let sink = RecordingSink::new();
    fedval_obs::install(Arc::new(sink.clone()));

    // Closed-form worked example: table build + Shapley + nucleolus + report.
    let scenario = FederationScenario::new(
        paper_facilities([1, 1, 1]),
        Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0)),
    );
    let _ = scenario.shapley_shares();
    let _ = scenario.nucleolus_shares();
    let _ = policy_report(&scenario).render();

    // Seeded faulted measurement: exercises the testbed counters, fault
    // events, and the desim engine counters.
    let federation = Federation::new(vec![
        synthetic_authority("A", 0, 3, 2, 1, 60),
        synthetic_authority("B", 3, 3, 2, 1, 60),
    ]);
    let workload = Workload::single(ExperimentClass::simple("slice", 2.0, 1.0), 1.5, 2.0);
    let config = SimConfig {
        horizon: 300.0,
        warmup: 50.0,
        seed: 7,
        churn: None,
    };
    let plan = FaultPlan::new()
        .node_crash(1, 80.0, Some(40.0))
        .credential_outage(1, 120.0, 3.0);
    let _ = empirical_game_diagnosed(&federation, &workload, &config, &plan)
        .expect("2-authority game is measurable");

    fedval_obs::shutdown();
    MetricsSnapshot::from_records(&sink.records()).to_text()
}

#[test]
fn identical_seeded_runs_yield_byte_identical_snapshots() {
    let first = traced_run();
    let second = traced_run();
    assert_eq!(
        first, second,
        "metric snapshot differs between identical seeded runs"
    );

    // The snapshot really covered the pipeline (not trivially empty).
    for needle in [
        "simplex.solver.pivots",
        "simplex.solver.solves",
        "coalition.nucleolus.lp_solves",
        "coalition.game.eval",
        "coalition.shapley.exact",
        "desim.engine.delivered",
        "testbed.simulate.runs",
        "testbed.faults.apply",
        "policy.report.build",
        "core.scenario.table_build",
    ] {
        assert!(first.contains(needle), "snapshot is missing {needle}:\n{first}");
    }
}
