//! Integration: market baselines vs coalitional sharing, plus market
//! invariants under random books.

use fedval::market::{clear_double_auction, run_combinatorial_auction, Ask, Bid, Order};
use fedval::{paper_facilities, Demand, ExperimentClass, FederationScenario};
use proptest::prelude::*;

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[test]
fn market_shares_are_near_proportional_and_far_from_shapley() {
    // The §5 claim, quantified on the pivotal-experiment scenario.
    let facilities = paper_facilities([1, 1, 1]);
    let bids = vec![Bid::new("global", 1201, 2600.0)];
    let market = run_combinatorial_auction(&facilities, &bids).revenue_shares();

    let scenario = FederationScenario::new(
        facilities,
        Demand::one_experiment(ExperimentClass::simple("e", 1200.0, 1.0)),
    );
    let shapley = scenario.shapley_shares();
    let proportional = scenario.proportional_shares();

    let to_pi = l1(&market, &proportional);
    let to_phi = l1(&market, &shapley);
    assert!(
        to_pi < 0.1 && to_phi > 0.4,
        "market {market:?} should track pi (d={to_pi:.3}) not phi (d={to_phi:.3})"
    );
}

#[test]
fn spot_market_with_flat_reserves_is_exactly_proportional() {
    let facilities = paper_facilities([80, 60, 20]);
    let asks: Vec<Ask> = facilities
        .iter()
        .map(|f| Ask {
            quantity: f.total_slots(),
            reserve: 0.0,
        })
        .collect();
    let orders = [Order {
        quantity: 1_000_000, // ample demand clears everything
        limit: 1.0,
    }];
    let out = clear_double_auction(&asks, &orders);
    let shares = out.revenue_shares();
    let scenario = FederationScenario::new(
        facilities,
        Demand::one_experiment(ExperimentClass::simple("e", 0.0, 1.0)),
    );
    let pi = scenario.proportional_shares();
    assert!(l1(&shares, &pi) < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn double_auction_invariants(
        ask_specs in prop::collection::vec((1u64..50, 0u32..10), 1..6),
        order_specs in prop::collection::vec((1u64..50, 0u32..10), 1..6),
    ) {
        let asks: Vec<Ask> = ask_specs
            .iter()
            .map(|&(q, r)| Ask { quantity: q, reserve: f64::from(r) })
            .collect();
        let orders: Vec<Order> = order_specs
            .iter()
            .map(|&(q, l)| Order { quantity: q, limit: f64::from(l) })
            .collect();
        let out = clear_double_auction(&asks, &orders);

        // Conservation: sold sums to traded, bounded by both books.
        let sold: u64 = out.sold.iter().sum();
        prop_assert_eq!(sold, out.traded);
        let supply: u64 = asks.iter().map(|a| a.quantity).sum();
        let demand: u64 = orders.iter().map(|o| o.quantity).sum();
        prop_assert!(out.traded <= supply.min(demand));

        // Individual rationality for sellers: no ask sells below reserve.
        for (ask, &q) in asks.iter().zip(&out.sold) {
            if q > 0 {
                prop_assert!(out.price >= ask.reserve - 1e-9);
            }
        }
        // Price bounded by the most generous order.
        if out.traded > 0 {
            let best_limit = orders
                .iter()
                .map(|o| o.limit)
                .fold(f64::MIN, f64::max);
            prop_assert!(out.price <= best_limit + 1e-9);
        }
        // Budget balance: seller revenue = price × traded = buyer payments.
        let revenue: f64 = out.revenue.iter().sum();
        prop_assert!((revenue - out.price * out.traded as f64).abs() < 1e-6);
    }

    #[test]
    fn auction_winners_are_always_packable(
        bundle_sizes in prop::collection::vec(1u64..8, 1..6),
        amounts in prop::collection::vec(1u32..100, 1..6),
        n_locations in 2u32..10,
    ) {
        let n = bundle_sizes.len().min(amounts.len());
        let facilities = vec![fedval::Facility::uniform("f", 0, n_locations, 2)];
        let bids: Vec<Bid> = (0..n)
            .map(|i| Bid::new(format!("b{i}"), bundle_sizes[i], f64::from(amounts[i])))
            .collect();
        let out = run_combinatorial_auction(&facilities, &bids);
        // Winner bundles must fit within the capacity profile.
        let mut sizes: Vec<u64> = out.winners.iter().map(|&i| bids[i].min_locations).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let profile = fedval::core::coalition_profile(&facilities);
        prop_assert!(fedval::core::allocation::is_realizable(&sizes, &profile));
        // Revenue equals the sum of winning bids.
        let expect: f64 = out.winners.iter().map(|&i| bids[i].amount).sum();
        prop_assert!((out.revenue - expect).abs() < 1e-9);
        // Facility attribution never exceeds total revenue.
        let attributed: f64 = out.facility_revenue.iter().sum();
        prop_assert!(attributed <= out.revenue + 1e-6);
    }
}
