#!/usr/bin/env sh
# Tier-1 gate + panic-discipline lint.
#
#   ./ci.sh            build, test, clippy
#
# The clippy stage enforces the no-panic rule on the solver crates'
# non-test code: unwrap()/expect() are denied in fedval-simplex,
# fedval-core, fedval-coalition, and fedval-desim (tests are exempt —
# clippy does not lint #[cfg(test)] code with these lints promoted only
# for lib targets).
set -eu

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q (workspace)"
cargo test -q --workspace

echo "== clippy panic-discipline (solver crates, lib targets only)"
for crate in fedval-simplex fedval-core fedval-coalition fedval-desim; do
    echo "--  $crate"
    cargo clippy -q -p "$crate" --lib --release -- \
        -D clippy::unwrap_used \
        -D clippy::expect_used
done

echo "ci.sh: all green"
