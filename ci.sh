#!/usr/bin/env sh
# Tier-1 gate + panic-discipline lint + fedval-lint static analysis.
#
#   ./ci.sh            build, test, clippy, bench --check, sweep
#                      invariance, serve smoke, sampled-Shapley smoke,
#                      fedchaos, fedval-lint
#
# The clippy stage enforces the no-panic rule on every crate's non-test
# lib code: unwrap()/expect() are denied workspace-wide (tests are exempt —
# clippy does not lint #[cfg(test)] code with these lints promoted only
# for lib targets).
#
# The fedval-lint stage runs the workspace's own static-analysis pass
# (see DESIGN.md §7): findings are diffed against the committed
# lint-baseline.toml, and any NEW finding fails the build.
set -eu

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q (workspace; dev profile arms the lock-order checker)"
# Tests run under debug_assertions, so every OrderedMutex/OrderedRwLock
# acquisition is recorded in the runtime lock-order graph and any
# witnessed cycle panics with its path (DESIGN.md §12).
cargo test -q --workspace

echo "== clippy panic-discipline (all crates, lib targets only)"
for crate in fedval-simplex fedval-core fedval-coalition fedval-desim \
             fedval-testbed fedval-market fedval-policy fedval-bench \
             fedval-lint fedval-obs fedval-serve fedval-form; do
    echo "--  $crate"
    cargo clippy -q -p "$crate" --lib --release -- \
        -D clippy::unwrap_used \
        -D clippy::expect_used
done

echo "== bench_pipeline --check (deterministic section + sweep speedup gate)"
# --threads 4 arms the ratcheted sweep.speedup floor: at >= 4 requested
# workers the parallel sweep leg must not be slower than the sequential
# one (within measurement tolerance). On single-core hosts run_sweep
# clamps its worker count, so the gate stays meaningful everywhere.
if ! cargo run -q -p fedval-bench --release --bin bench_pipeline -- --check --threads 4; then
    echo ""
    echo "ci.sh: BENCH_pipeline.json is stale or the sweep speedup regressed —"
    echo "either a change shifted a deterministic pipeline count (pivots, LP"
    echo "solves, cache ratio, simulation totals), or sweep.speedup fell below"
    echo "the ratcheted floor at 4 threads."
    echo "Regenerate with:  cargo run --release -p fedval-bench --bin bench_pipeline -- --threads 4"
    exit 1
fi

echo "== sweep thread-invariance (repro --csv at --threads 1 vs 4)"
sweep_tmp=$(mktemp -d)
trap 'rm -rf "$sweep_tmp" "${smoke_tmp:-}"' EXIT
mkdir -p "$sweep_tmp/t1" "$sweep_tmp/t4"
cargo run -q -p fedval-bench --release --bin repro -- all \
    --csv "$sweep_tmp/t1" --threads 1 > /dev/null
cargo run -q -p fedval-bench --release --bin repro -- all \
    --csv "$sweep_tmp/t4" --threads 4 > /dev/null
if ! diff -r "$sweep_tmp/t1" "$sweep_tmp/t4"; then
    echo ""
    echo "ci.sh: figure data differs between --threads 1 and --threads 4."
    echo "The sweep engine's determinism contract (DESIGN.md section 9) is"
    echo "broken: results must merge in input order, independent of scheduling."
    exit 1
fi

echo "== fedval-serve smoke (loopback daemon + deterministic fedload)"
smoke_tmp=$(mktemp -d)
./target/release/fedval-serve --addr 127.0.0.1:0 --warm \
    > "$smoke_tmp/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$smoke_tmp/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci.sh: fedval-serve did not come up; log:"
    cat "$smoke_tmp/serve.log"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
if ! ./target/release/fedload --addr "$addr" --connections 2 --requests 2000 \
        --kind mixed --seed 7 --out "$smoke_tmp/BENCH_serve_smoke.json" \
        --metrics "$smoke_tmp/load_metrics.json" \
        --scrape "$smoke_tmp/metrics_scrape.json" --shutdown; then
    echo ""
    echo "ci.sh: fedload failed — protocol errors or byte-identical-response"
    echo "mismatches against the live server (see report above)."
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# The metrics scrape must be a well-formed exposition with a nonzero
# serve_req_ok (2000 requests just succeeded) plus the ring buffer.
if ! grep -q '# TYPE serve_req_ok counter' "$smoke_tmp/metrics_scrape.json" \
   || ! grep -Eq 'serve_req_ok [1-9][0-9]*' "$smoke_tmp/metrics_scrape.json" \
   || ! grep -q '"ring":\[' "$smoke_tmp/metrics_scrape.json"; then
    echo ""
    echo "ci.sh: the metrics query scrape is malformed or reports zero"
    echo "serve_req_ok after a successful load run:"
    cat "$smoke_tmp/metrics_scrape.json"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# The client-side registry dump must carry the sharded latency histogram.
if ! grep -q '"load.request_ns"' "$smoke_tmp/load_metrics.json"; then
    echo ""
    echo "ci.sh: fedload --metrics dump is missing load.request_ns:"
    cat "$smoke_tmp/load_metrics.json"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
if ! wait "$serve_pid"; then
    echo ""
    echo "ci.sh: fedval-serve exited nonzero — the drain abandoned queued work."
    cat "$smoke_tmp/serve.log"
    exit 1
fi
if ! grep -q "protocol_errors=0" "$smoke_tmp/serve.log"; then
    echo ""
    echo "ci.sh: server-side drain summary reports protocol errors:"
    cat "$smoke_tmp/serve.log"
    exit 1
fi

echo "== sampled Shapley (n<=16 validation + deterministic n=200 serve smoke)"
# Release-mode re-run of the estimator-vs-exact validation suite: the
# sampled phi must sit within its own certified CI of the 2^n solver on
# games small enough to enumerate (DESIGN.md §14).
cargo test -q -p fedval-coalition --release approx > /dev/null
approx_tmp=$(mktemp -d)
trap 'rm -rf "$sweep_tmp" "${smoke_tmp:-}" "${approx_tmp:-}"' EXIT
# A 200-authority synthetic federation is far past every exact cap; the
# daemon must answer shapley queries via the sampled path, and fedload's
# canonical-bytes check proves every response in the run is
# byte-identical (seeded estimator, thread-count invariant).
./target/release/fedval-serve --addr 127.0.0.1:0 --synthetic 200:7 \
    --approx-samples 32 --threads 2 > "$approx_tmp/serve.log" 2>&1 &
approx_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$approx_tmp/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci.sh: fedval-serve --synthetic 200 did not come up; log:"
    cat "$approx_tmp/serve.log"
    kill "$approx_pid" 2>/dev/null || true
    exit 1
fi
if ! ./target/release/fedload --addr "$addr" --connections 2 --requests 50 \
        --kind shapley --seed 7 --shutdown > "$approx_tmp/load.json"; then
    echo ""
    echo "ci.sh: fedload failed against the n=200 sampled-Shapley daemon —"
    echo "either a request errored or two shapley responses differed byte"
    echo "for byte (the seeded estimator must be deterministic)."
    cat "$approx_tmp/load.json"
    kill "$approx_pid" 2>/dev/null || true
    exit 1
fi
if ! grep -q '"mismatches": 0' "$approx_tmp/load.json" \
   || ! grep -q '"protocol_errors": 0' "$approx_tmp/load.json"; then
    echo ""
    echo "ci.sh: n=200 shapley responses were not byte-identical across the run:"
    cat "$approx_tmp/load.json"
    kill "$approx_pid" 2>/dev/null || true
    exit 1
fi
if ! wait "$approx_pid"; then
    echo ""
    echo "ci.sh: fedval-serve --synthetic 200 exited nonzero."
    cat "$approx_tmp/serve.log"
    exit 1
fi

echo "== fedform formation smoke (n=200 churn, fingerprint invariance)"
# Seeded hedonic merge/split dynamics on the 200-authority synthetic
# federation: the full stdout — round trajectory, stability verdict,
# payoff table, fingerprints — must be byte-identical across repeated
# runs AND across thread counts (DESIGN.md §15). A diff here means the
# engine leaked scheduling order into a committed surface.
form_tmp=$(mktemp -d)
trap 'rm -rf "$sweep_tmp" "${smoke_tmp:-}" "${approx_tmp:-}" "${form_tmp:-}"' EXIT
./target/release/fedform --synthetic 200:7 --rounds 12 --approx-samples 8 \
    --threads 4 > "$form_tmp/t4_run1.txt"
./target/release/fedform --synthetic 200:7 --rounds 12 --approx-samples 8 \
    --threads 4 > "$form_tmp/t4_run2.txt"
./target/release/fedform --synthetic 200:7 --rounds 12 --approx-samples 8 \
    --threads 1 > "$form_tmp/t1_run1.txt"
if ! diff "$form_tmp/t4_run1.txt" "$form_tmp/t4_run2.txt"; then
    echo ""
    echo "ci.sh: two identical fedform invocations produced different bytes —"
    echo "the formation engine is not run-to-run deterministic."
    exit 1
fi
if ! diff "$form_tmp/t4_run1.txt" "$form_tmp/t1_run1.txt"; then
    echo ""
    echo "ci.sh: fedform output differs between --threads 4 and --threads 1."
    echo "The merge/split engine's fold discipline (input-order batched"
    echo "evaluation) is broken: thread count leaked into the trajectory or"
    echo "payoff table."
    exit 1
fi
if ! grep -q "outcome fingerprint:" "$form_tmp/t4_run1.txt"; then
    echo ""
    echo "ci.sh: fedform output is missing its outcome fingerprint:"
    cat "$form_tmp/t4_run1.txt"
    exit 1
fi

echo "== fedchaos smoke (seeded chaos campaign vs hardened daemon)"
chaos_tmp=$(mktemp -d)
trap 'rm -rf "$sweep_tmp" "${smoke_tmp:-}" "${approx_tmp:-}" "${form_tmp:-}" "${chaos_tmp:-}"' EXIT
./target/release/fedval-serve --addr 127.0.0.1:0 --warm --chaos-harness \
    --max-connections 24 --io-timeout-ms 500 --frame-deadline-ms 1000 \
    --idle-timeout-ms 5000 > "$chaos_tmp/serve.log" 2>&1 &
chaos_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$chaos_tmp/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci.sh: fedval-serve (chaos harness) did not come up; log:"
    cat "$chaos_tmp/serve.log"
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
fds_before=$(ls "/proc/$chaos_pid/fd" | wc -l)
# Seed 3 at 12 rounds deterministically includes connect-flood AND
# panic-injection rounds, so both the shed and worker_restarts counters
# are exercised (verified; the fault menu is a pure function of seed).
if ! ./target/release/fedchaos --addr "$addr" --seed 3 --rounds 12 \
        --flood 32 --hold-ms 1200 --panic-injection --expect-stall-close \
        --stats > "$chaos_tmp/chaos.json"; then
    echo ""
    echo "ci.sh: fedchaos campaign failed (report above) — a survival"
    echo "invariant broke: probe mismatch, unanswered frame, unclosed stall,"
    echo "or unshed flood. Reproduce with the printed seed."
    cat "$chaos_tmp/chaos.json"
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
sleep 1
fds_after=$(ls "/proc/$chaos_pid/fd" | wc -l)
if [ "$fds_after" -gt $((fds_before + 4)) ]; then
    echo ""
    echo "ci.sh: fd leak in fedval-serve under chaos: $fds_before fds before"
    echo "the campaign, $fds_after after. Stalled/reset connections are not"
    echo "being reaped."
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
if ! grep -q '"worker_restarts":[1-9]' "$chaos_tmp/chaos.json"; then
    echo ""
    echo "ci.sh: injected panics did not surface as worker_restarts in stats:"
    cat "$chaos_tmp/chaos.json"
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
if ! grep -q '"shed":[1-9]' "$chaos_tmp/chaos.json"; then
    echo ""
    echo "ci.sh: connect floods did not surface as shed connections in stats:"
    cat "$chaos_tmp/chaos.json"
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
if ! ./target/release/fedload --addr "$addr" --connections 2 --requests 500 \
        --kind mixed --seed 11 --retry 3 --shutdown > "$chaos_tmp/load.json"; then
    echo ""
    echo "ci.sh: fedload --retry failed against the post-chaos server."
    cat "$chaos_tmp/load.json"
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
if ! wait "$chaos_pid"; then
    echo ""
    echo "ci.sh: chaos-harness fedval-serve exited nonzero — drain abandoned work."
    cat "$chaos_tmp/serve.log"
    exit 1
fi
if ! grep -q "abandoned=0" "$chaos_tmp/serve.log"; then
    echo ""
    echo "ci.sh: chaos-harness drain summary missing abandoned=0:"
    cat "$chaos_tmp/serve.log"
    exit 1
fi
if ! grep -q "worker_restarts=" "$chaos_tmp/serve.log"; then
    echo ""
    echo "ci.sh: drain summary no longer reports worker_restarts:"
    cat "$chaos_tmp/serve.log"
    exit 1
fi

echo "== fedval-lint (workspace static analysis vs lint-baseline.toml)"
if ! cargo run -q -p fedval-lint --release; then
    echo ""
    echo "ci.sh: fedval-lint found NEW findings above the committed baseline."
    echo "The delta is listed above. Fix each finding, or justify it with an"
    echo "inline marker:  // lint: allow(<rule>) — <reason>"
    echo "For the reasoning behind any rule, run:"
    echo "    cargo run -p fedval-lint --release -- --explain <rule>"
    echo "Pre-existing budgeted debt never fails; only new debt does."
    exit 1
fi

echo "== fedval-analyze runtime cross-check (lock-order checker self-tests)"
# The static lock-order rules above pair with the dynamic checker in
# fedval_obs::lockorder; its self-tests prove the checker still panics
# on witnessed cycles (a silently disarmed checker would let the whole
# debug-profile suite above vouch for nothing).
if ! cargo test -q -p fedval-obs --lib lockorder; then
    echo ""
    echo "ci.sh: the runtime lock-order checker's self-tests failed — the"
    echo "dynamic half of DESIGN.md §12 is broken, so debug-profile test"
    echo "runs no longer witness acquisition-order violations."
    exit 1
fi

echo "ci.sh: all green"
