//! Offline stand-in for `crossbeam`: the scoped-thread API the workspace
//! uses (`crossbeam::thread::scope` + `Scope::spawn`), implemented on
//! `std::thread::scope` (stable since 1.63).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to `scope`'s closure; `spawn` borrows from the
    /// enclosing environment like crossbeam's scope does.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives a placeholder
        /// argument standing in for crossbeam's nested-scope handle (the
        /// workspace always ignores it: `|_| …`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which borrowed threads can be spawned; all
    /// spawned threads are joined before `scope` returns. Matches
    /// crossbeam's `Result` signature; panics in workers propagate via
    /// `std::thread::scope`, so the `Err` arm is never constructed here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u32 * 2);
            }
        })
        .unwrap();
        assert_eq!(data, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }
}
