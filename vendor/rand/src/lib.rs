//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment cannot reach a crates.io registry, so the workspace
//! vendors the tiny slice of `rand` it actually uses: a seedable generator
//! (`rngs::StdRng`), the `SeedableRng`/`Rng` traits with `random`,
//! `random_range`, and `seq::SliceRandom::shuffle`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and easily
//! good enough for simulation and property tests. It is **not** the real
//! `rand` crate and produces a different stream for the same seed.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` (stand-in for the
/// `StandardUniform` distribution).
pub trait UniformSample: Sized {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening multiply.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = rng.next_u64() as u128;
    (wide * span) >> 64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_from(rng);
        self.start + (self.end - self.start) * u
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`rng.random::<f64>()` is uniform in `[0,1)`).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Stand-in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn uniform01_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-4i32..=6);
            assert!((-4..=6).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
