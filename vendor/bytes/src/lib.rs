//! Offline stand-in for the `bytes` crate: `Bytes`/`BytesMut` backed by
//! plain `Vec<u8>`/cursor, exposing the big-endian `Buf`/`BufMut` subset the
//! federation wire format needs. No refcounted zero-copy slicing — `slice`
//! and `freeze` copy, which is fine at registry-exchange sizes.

use std::ops::Deref;

/// Read side of a byte buffer (big-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes, returning them.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }

    /// Consumes a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let b = self.copy_to_bytes(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Consumes a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Consumes a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

/// Write side of a byte buffer (big-endian appenders).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length of the *unconsumed* contents.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copied sub-range of the unconsumed contents.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }

    /// The unconsumed contents as a slice.
    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// The unconsumed contents as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        out
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32(0xDEADBEEF);
        w.put_u16(7);
        w.put_slice(b"ab");
        w.put_u64(42);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 2 + 2 + 8);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u16(), 7);
        assert_eq!(&r.copy_to_bytes(2)[..], b"ab");
        assert_eq!(r.get_u64(), 42);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_len_track_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..3).to_vec(), vec![2, 3]);
        let _ = b.get_u16();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[3, 4, 5]);
    }
}
