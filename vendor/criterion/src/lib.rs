//! Offline stand-in for `criterion`.
//!
//! Lets the workspace's `criterion` benches compile and run without the
//! registry: each benchmark executes its closure a handful of times and
//! prints one wall-clock line. No warm-up, outlier analysis, or reports —
//! swap for the real crate when a registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated there in favor of
/// `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            iters: 3,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 3, &mut f);
        self
    }
}

/// A group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; scales the (tiny) iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 10);
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id(), self.iters, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        let label = id.into_benchmark_id();
        let start = Instant::now();
        for _ in 0..self.iters {
            f(&mut b, input);
        }
        report(&label, self.iters.max(1) * b.inner_iters.max(1), start.elapsed());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    inner_iters: u64,
}

impl Bencher {
    /// Runs the routine a few times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        const INNER: u64 = 3;
        self.inner_iters = INNER;
        for _ in 0..INNER {
            black_box(routine());
        }
    }
}

/// Identifies one benchmark: either a plain `&str` or a
/// [`BenchmarkId::new`] pair of function name and parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `"name/parameter"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// The printable label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: u64, f: &mut F) {
    let mut b = Bencher::default();
    let start = Instant::now();
    for _ in 0..iters {
        f(&mut b);
    }
    report(id, iters.max(1) * b.inner_iters.max(1), start.elapsed());
}

fn report(id: &str, total_iters: u64, elapsed: Duration) {
    let per = elapsed.as_secs_f64() / total_iters.max(1) as f64;
    println!("bench: {id:<40} {:>12.3} µs/iter", per * 1e6);
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
