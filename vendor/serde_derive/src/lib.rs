//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types but
//! never serializes through serde in-tree (no serde_json/bincode dependency),
//! so the derives only need to *parse*. These no-op macros accept the derive
//! and any `#[serde(...)]` helper attributes and expand to nothing; swap the
//! vendored crates for the real serde once a registry is reachable.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
