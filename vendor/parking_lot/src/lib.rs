//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! exposing parking_lot's non-poisoning guard-returning API.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader–writer lock with parking_lot's `read()`/`write()` signature.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
