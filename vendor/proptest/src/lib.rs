//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest the workspace tests rely on:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, integer/float
//! range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `any::<T>()`, and the `prop_assert!`-family macros.
//!
//! Differences from real proptest: generation is plain Monte-Carlo from a
//! deterministic per-test seed; there is **no shrinking** and no
//! regression-file persistence (`.proptest-regressions` files are ignored).
//! A failing case panics with the formatted assertion message.

/// Runner configuration and failure plumbing.
pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert!` failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: the case does not count either way.
        Reject(String),
    }

    /// Deterministic generator stream for one property test
    /// (SplitMix64 keyed by the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream fully determined by `name` — reruns reproduce failures.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a of the test name as the seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn uniform01(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (retries internally).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected every candidate: {}", self.whence);
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.uniform01()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.uniform01()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// `any::<T>()` and the `Arbitrary` trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.uniform01()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating unbiased booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `prop::bool::ANY`.
    pub const ANY: AnyBool = AnyBool;
}

/// The prelude tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module-alias namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, v in prop::collection::vec(0i32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            if rejected > cfg.max_global_rejects {
                                panic!(
                                    "proptest {}: gave up after {} prop_assume rejections",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed (case {} of {}): {}",
                                stringify!($name),
                                passed + 1,
                                cfg.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case without counting it as a pass or failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_in_bounds(
            a in 0u64..10,
            b in -4i32..=6,
            flag in any::<bool>(),
            c in prop::bool::ANY,
            v in prop::collection::vec((1u64..=4, 0.0f64..1.0), 1..=3),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-4..=6).contains(&b));
            let _ = (flag, c);
            prop_assert!(!v.is_empty() && v.len() <= 3);
            for (k, x) in v {
                prop_assert!((1..=4).contains(&k));
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn prop_map_and_assume_work(n in (1u32..5).prop_map(|x| x * 2)) {
            prop_assume!(n != 4);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 4);
        }
    }
}
