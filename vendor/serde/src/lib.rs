//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports —
//! both as (empty) traits and as no-op derive macros — so model types keep
//! their serde annotations without needing the registry. No in-tree code
//! performs actual serde serialization; swap for the real crate when a
//! registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name (no methods; the no-op
/// derive does not implement it, and no in-tree bound requires it).
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
