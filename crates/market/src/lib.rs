#![deny(missing_docs)]

//! Market-based allocation baselines — the §5 comparators, implemented.
//!
//! The paper positions its Shapley-value proposal against two families of
//! market mechanisms from the literature:
//!
//! * **Bellagio** (Young et al. 2004): a combinatorial auction over
//!   PlanetLab resources — [`combinatorial`] implements a sealed-bid,
//!   first-price variant with greedy winner determination over
//!   diversity bundles.
//! * **GridEcon** (Altmann et al. 2008): a spot market trading resource
//!   slots by double auction — [`double_auction`] implements a
//!   uniform-price clearing over the facilities' slot supply.
//!
//! The paper's critique is that with such mechanisms "profit between
//! independent organizations is shared implicitly through the market
//! ignoring the possible complementarities in the valuation of the
//! users". These implementations make the critique executable: both
//! mechanisms pay facilities (approximately) by the *slots* they sell,
//! not by the *pivotality of their diversity*, so their induced revenue
//! shares track π̂ (eq. 6) rather than ϕ̂ (eq. 5) — quantified by the
//! tests and the `market_vs_shapley` comparisons in the bench suite.

pub mod combinatorial;
pub mod double_auction;

pub use combinatorial::{run_combinatorial_auction, AuctionOutcome, Bid};
pub use double_auction::{clear_double_auction, Ask, MarketOutcome, Order};
