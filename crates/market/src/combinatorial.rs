//! A Bellagio-style sealed-bid combinatorial auction over diversity
//! bundles.
//!
//! Bidders (experiments) ask for a bundle of at least `min_locations`
//! distinct locations and state a willingness to pay. Winner
//! determination is the greedy bid-density heuristic standard in
//! combinatorial-auction practice (optimal WDP is NP-hard; Bellagio also
//! approximates): bids are admitted in decreasing `amount / min_locations`
//! order while the accepted bundle sizes remain packable
//! (Gale–Ryser-checked against the coalition's capacity profile).
//! Winners pay their bid (first price); each winner receives exactly its
//! minimum bundle.
//!
//! Facility revenue is attributed pro-rata to the location-slots each
//! facility contributes to winning bundles — the "implicit sharing
//! through the market" the paper contrasts with Shapley sharing.

use fedval_core::allocation::{is_realizable, realize_assignment};
use fedval_core::{coalition_profile, Facility, LocationOffer};
use serde::{Deserialize, Serialize};

/// One sealed bid for a diversity bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bid {
    /// Bidder label (for reports).
    pub bidder: String,
    /// Minimum number of distinct locations demanded.
    pub min_locations: u64,
    /// Willingness to pay for the bundle.
    pub amount: f64,
}

impl Bid {
    /// Creates a bid.
    ///
    /// # Panics
    /// Panics on a zero-location bundle or non-finite/negative amount.
    pub fn new(bidder: impl Into<String>, min_locations: u64, amount: f64) -> Bid {
        assert!(min_locations >= 1);
        assert!(amount.is_finite() && amount >= 0.0);
        Bid {
            bidder: bidder.into(),
            min_locations,
            amount,
        }
    }

    /// Bid density (amount per requested location).
    pub fn density(&self) -> f64 {
        self.amount / self.min_locations as f64
    }
}

/// Outcome of the auction.
#[derive(Debug, Clone)]
pub struct AuctionOutcome {
    /// Indices (into the input bid list) of winning bids, in award order.
    pub winners: Vec<usize>,
    /// Total payments collected (first-price).
    pub revenue: f64,
    /// Total winner valuation served (here equal to revenue; kept
    /// separate so second-price variants can reuse the struct).
    pub welfare: f64,
    /// Revenue attributed to each facility, pro-rata by slots supplied to
    /// winning bundles.
    pub facility_revenue: Vec<f64>,
}

impl AuctionOutcome {
    /// Facility revenue shares (normalized; zeros if no revenue).
    pub fn revenue_shares(&self) -> Vec<f64> {
        let total: f64 = self.facility_revenue.iter().sum();
        if total.abs() < 1e-12 {
            vec![0.0; self.facility_revenue.len()]
        } else {
            self.facility_revenue.iter().map(|r| r / total).collect()
        }
    }
}

/// Runs the greedy combinatorial auction.
pub fn run_combinatorial_auction(facilities: &[Facility], bids: &[Bid]) -> AuctionOutcome {
    let profile = coalition_profile(facilities);
    let merged = LocationOffer::merge(facilities.iter().map(|f| &f.offer));

    // Greedy admission by density, ties broken by input order.
    let mut order: Vec<usize> = (0..bids.len()).collect();
    order.sort_by(|&a, &b| bids[b].density().total_cmp(&bids[a].density()).then(a.cmp(&b)));

    let mut winners: Vec<usize> = Vec::new();
    let mut sizes: Vec<u64> = Vec::new();
    for idx in order {
        let bid = &bids[idx];
        let mut trial = sizes.clone();
        trial.push(bid.min_locations);
        trial.sort_unstable_by(|a, b| b.cmp(a));
        if is_realizable(&trial, &profile) {
            winners.push(idx);
            sizes = trial;
        }
    }

    let revenue: f64 = winners.iter().map(|&i| bids[i].amount).sum();

    // Attribute revenue: realize the winning bundle sizes on the merged
    // offer, then split each location's usage among the facilities that
    // provide capacity there, weighted by each winner's payment per slot.
    //
    // For simplicity (and because winners' slots are homogeneous here) we
    // attribute the pooled revenue pro-rata to slots used per facility.
    let mut facility_revenue = vec![0.0; facilities.len()];
    let sorted_sizes = sizes;
    if !sorted_sizes.is_empty() {
        if let Some(assignment) = realize_assignment(&merged, &sorted_sizes) {
            let slots_used: u64 = assignment.usage.iter().map(|&(_, u)| u).sum();
            if slots_used > 0 {
                let per_slot = revenue / slots_used as f64;
                for &(loc, used) in &assignment.usage {
                    if used == 0 {
                        continue;
                    }
                    let total_cap = merged.capacity_at(loc) as f64;
                    for (i, f) in facilities.iter().enumerate() {
                        let cap = f.offer.capacity_at(loc) as f64;
                        if cap > 0.0 {
                            facility_revenue[i] += used as f64 * per_slot * cap / total_cap;
                        }
                    }
                }
            }
        }
    }

    AuctionOutcome {
        winners,
        revenue,
        welfare: revenue,
        facility_revenue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::paper_facilities;

    #[test]
    fn greedy_prefers_denser_bids() {
        // 3 locations capacity 1: a dense small bid beats a cheap big one.
        let facilities = vec![Facility::uniform("f", 0, 3, 1)];
        let bids = vec![
            Bid::new("cheap-big", 3, 3.0), // density 1
            Bid::new("dense-small", 1, 5.0), // density 5
            Bid::new("mid", 2, 4.0),       // density 2
        ];
        let out = run_combinatorial_auction(&facilities, &bids);
        // dense-small (1 loc) + mid (2 locs) fill capacity; cheap-big loses.
        assert_eq!(out.winners, vec![1, 2]);
        assert!((out.revenue - 9.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_bundles_are_rejected() {
        let facilities = vec![Facility::uniform("f", 0, 2, 1)];
        let bids = vec![Bid::new("too-big", 5, 100.0), Bid::new("fits", 2, 1.0)];
        let out = run_combinatorial_auction(&facilities, &bids);
        assert_eq!(out.winners, vec![1]);
    }

    #[test]
    fn revenue_attribution_is_pro_rata_by_slots() {
        // Facility A: 1 location; facility B: 3 locations. A 4-location
        // bundle uses all of both: A gets 1/4 of revenue.
        let facilities = vec![
            Facility::uniform("A", 0, 1, 1),
            Facility::uniform("B", 1, 3, 1),
        ];
        let bids = vec![Bid::new("x", 4, 8.0)];
        let out = run_combinatorial_auction(&facilities, &bids);
        assert!((out.facility_revenue[0] - 2.0).abs() < 1e-9);
        assert!((out.facility_revenue[1] - 6.0).abs() < 1e-9);
        let shares = out.revenue_shares();
        assert!((shares[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn market_shares_track_consumption_not_pivotality() {
        // The paper's critique, executable: a diversity-pivotal small
        // facility earns only its slot share from the market, while its
        // Shapley share is far larger.
        use fedval_coalition::shapley_normalized;
        use fedval_core::{Demand, ExperimentClass, FederationGame};

        let facilities = paper_facilities([1, 1, 1]);
        // One bundle needing 1250 locations: only the grand coalition
        // can host it (1300 total), and every facility is pivotal.
        let bids = vec![Bid::new("monster", 1250, 1250.0)];
        let out = run_combinatorial_auction(&facilities, &bids);
        let market = out.revenue_shares();

        let demand = Demand::one_experiment(ExperimentClass::simple("e", 1249.0, 1.0));
        let game = FederationGame::new(&facilities, &demand).table();
        let shapley = shapley_normalized(&game);

        // Shapley: equal thirds (all pivotal). Market: slot-proportional.
        for s in &shapley {
            assert!((s - 1.0 / 3.0).abs() < 1e-9);
        }
        assert!(market[0] < 0.11, "market underpays the small facility");
        assert!(market[2] > 0.55, "market overpays the big facility");
    }

    #[test]
    fn empty_bid_set() {
        let facilities = vec![Facility::uniform("f", 0, 3, 1)];
        let out = run_combinatorial_auction(&facilities, &[]);
        assert!(out.winners.is_empty());
        assert_eq!(out.revenue, 0.0);
        assert_eq!(out.revenue_shares(), vec![0.0]);
    }
}
