//! A GridEcon-style uniform-price double auction for resource slots.
//!
//! Facilities place *asks* (quantity of location-slots at a reserve price
//! per slot); experimenters place *orders* (quantity demanded at a limit
//! price per slot). Clearing finds the largest quantity `q` where the
//! q-th cheapest supply unit still costs no more than the q-th most
//! generous demand unit; everyone trades at one uniform price (midpoint
//! of the crossing pair — the standard k = ½ double-auction rule).
//!
//! The mechanism is deliberately diversity-blind: slots are fungible, so
//! a facility is paid for *how much* it sells, never for *where* its
//! slots are — the paper's §5 point about markets ignoring
//! complementarities, in executable form.

use serde::{Deserialize, Serialize};

/// A supply offer: `quantity` slots at `reserve` per slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ask {
    /// Slots offered.
    pub quantity: u64,
    /// Minimum acceptable price per slot.
    pub reserve: f64,
}

/// A demand order: `quantity` slots at up to `limit` per slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Slots demanded.
    pub quantity: u64,
    /// Maximum acceptable price per slot.
    pub limit: f64,
}

/// Cleared-market outcome.
#[derive(Debug, Clone)]
pub struct MarketOutcome {
    /// Uniform clearing price per slot (0 when no trade).
    pub price: f64,
    /// Slots traded.
    pub traded: u64,
    /// Slots sold by each ask (aligned with the input asks).
    pub sold: Vec<u64>,
    /// Revenue of each ask (`price × sold`).
    pub revenue: Vec<f64>,
}

impl MarketOutcome {
    /// Normalized revenue shares across asks (zeros when no trade).
    pub fn revenue_shares(&self) -> Vec<f64> {
        let total: f64 = self.revenue.iter().sum();
        if total.abs() < 1e-12 {
            vec![0.0; self.revenue.len()]
        } else {
            self.revenue.iter().map(|r| r / total).collect()
        }
    }
}

/// Clears the double auction.
///
/// Supply units are served cheapest-reserve first (pro-rata within equal
/// reserves); demand units are served highest-limit first.
pub fn clear_double_auction(asks: &[Ask], orders: &[Order]) -> MarketOutcome {
    // Expand both books into sorted unit curves. Quantities can be large,
    // so work with (price, quantity) segments instead of unit vectors.
    let mut supply: Vec<(f64, u64, usize)> = asks
        .iter()
        .enumerate()
        .filter(|(_, a)| a.quantity > 0)
        .map(|(i, a)| (a.reserve, a.quantity, i))
        .collect();
    supply.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut demand: Vec<(f64, u64)> = orders
        .iter()
        .filter(|o| o.quantity > 0)
        .map(|o| (o.limit, o.quantity))
        .collect();
    demand.sort_by(|x, y| y.0.total_cmp(&x.0));

    // March the two curves to find the crossing quantity.
    let mut traded = 0u64;
    let mut si = 0usize;
    let mut s_left = supply.first().map_or(0, |s| s.1);
    let mut di = 0usize;
    let mut d_left = demand.first().map_or(0, |d| d.1);
    let mut last_ask = 0.0f64;
    let mut last_bid = 0.0f64;
    while si < supply.len() && di < demand.len() {
        let ask_price = supply[si].0;
        let bid_price = demand[di].0;
        if ask_price > bid_price {
            break;
        }
        let step = s_left.min(d_left);
        traded += step;
        last_ask = ask_price;
        last_bid = bid_price;
        s_left -= step;
        d_left -= step;
        if s_left == 0 {
            si += 1;
            s_left = supply.get(si).map_or(0, |s| s.1);
        }
        if d_left == 0 {
            di += 1;
            d_left = demand.get(di).map_or(0, |d| d.1);
        }
    }

    if traded == 0 {
        return MarketOutcome {
            price: 0.0,
            traded: 0,
            sold: vec![0; asks.len()],
            revenue: vec![0.0; asks.len()],
        };
    }
    let price = 0.5 * (last_ask + last_bid);

    // Fill supply cheapest-first up to `traded`.
    let mut sold = vec![0u64; asks.len()];
    let mut remaining = traded;
    for &(_, quantity, idx) in &supply {
        if remaining == 0 {
            break;
        }
        let take = quantity.min(remaining);
        sold[idx] += take;
        remaining -= take;
    }
    let revenue: Vec<f64> = sold.iter().map(|&q| q as f64 * price).collect();
    MarketOutcome {
        price,
        traded,
        sold,
        revenue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_crossing() {
        // Supply: 10 @ 1, 10 @ 3. Demand: 12 @ 5, 10 @ 2.
        // Units 1..=10 trade (1 vs 5); units 11,12 trade (3 vs 5);
        // units 13.. would pair ask 3 with bid 2 → stop. q = 12.
        let asks = [
            Ask {
                quantity: 10,
                reserve: 1.0,
            },
            Ask {
                quantity: 10,
                reserve: 3.0,
            },
        ];
        let orders = [
            Order {
                quantity: 12,
                limit: 5.0,
            },
            Order {
                quantity: 10,
                limit: 2.0,
            },
        ];
        let out = clear_double_auction(&asks, &orders);
        assert_eq!(out.traded, 12);
        assert!((out.price - 4.0).abs() < 1e-12); // midpoint of (3, 5)
        assert_eq!(out.sold, vec![10, 2]);
        assert!((out.revenue[0] - 40.0).abs() < 1e-12);
    }

    #[test]
    fn no_trade_when_reserves_exceed_limits() {
        let asks = [Ask {
            quantity: 5,
            reserve: 10.0,
        }];
        let orders = [Order {
            quantity: 5,
            limit: 1.0,
        }];
        let out = clear_double_auction(&asks, &orders);
        assert_eq!(out.traded, 0);
        assert_eq!(out.price, 0.0);
        assert_eq!(out.revenue_shares(), vec![0.0]);
    }

    #[test]
    fn zero_reserves_pay_by_capacity() {
        // The paper's π̂-tracking property: free supply, ample demand ⇒
        // revenue shares equal capacity shares.
        let asks = [
            Ask {
                quantity: 100,
                reserve: 0.0,
            },
            Ask {
                quantity: 400,
                reserve: 0.0,
            },
            Ask {
                quantity: 800,
                reserve: 0.0,
            },
        ];
        let orders = [Order {
            quantity: 2000,
            limit: 1.0,
        }];
        let out = clear_double_auction(&asks, &orders);
        assert_eq!(out.traded, 1300);
        let shares = out.revenue_shares();
        assert!((shares[0] - 100.0 / 1300.0).abs() < 1e-9);
        assert!((shares[1] - 400.0 / 1300.0).abs() < 1e-9);
        assert!((shares[2] - 800.0 / 1300.0).abs() < 1e-9);
    }

    #[test]
    fn cheapest_supply_fills_first() {
        let asks = [
            Ask {
                quantity: 6,
                reserve: 2.0,
            },
            Ask {
                quantity: 6,
                reserve: 1.0,
            },
        ];
        let orders = [Order {
            quantity: 6,
            limit: 3.0,
        }];
        let out = clear_double_auction(&asks, &orders);
        assert_eq!(out.traded, 6);
        assert_eq!(out.sold, vec![0, 6], "the cheap ask wins it all");
    }

    #[test]
    fn partial_fill_of_marginal_ask() {
        let asks = [Ask {
            quantity: 10,
            reserve: 1.0,
        }];
        let orders = [Order {
            quantity: 4,
            limit: 2.0,
        }];
        let out = clear_double_auction(&asks, &orders);
        assert_eq!(out.traded, 4);
        assert_eq!(out.sold, vec![4]);
        assert!((out.price - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_books() {
        let out = clear_double_auction(&[], &[]);
        assert_eq!(out.traded, 0);
        assert!(out.sold.is_empty());
    }
}
