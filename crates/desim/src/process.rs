//! Arrival processes.

use crate::rng::{Distribution, Exponential, SimRng};

/// A homogeneous Poisson arrival process of rate λ.
///
/// Generates successive interarrival gaps; pair with
/// [`Simulator::schedule`](crate::Simulator::schedule) to drive workloads.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    interarrival: Exponential,
}

impl PoissonProcess {
    /// Process with arrival rate `lambda` (> 0).
    pub fn new(lambda: f64) -> PoissonProcess {
        PoissonProcess {
            interarrival: Exponential::with_rate(lambda),
        }
    }

    /// The arrival rate λ.
    pub fn rate(&self) -> f64 {
        1.0 / self.interarrival.mean()
    }

    /// Draws the gap until the next arrival.
    pub fn next_gap(&self, rng: &mut SimRng) -> f64 {
        self.interarrival.sample(rng)
    }

    /// Generates all arrival instants in `[0, horizon)`.
    pub fn arrivals_until(&self, horizon: f64, rng: &mut SimRng) -> Vec<f64> {
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += self.next_gap(rng);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_count_matches_rate() {
        let p = PoissonProcess::new(2.5);
        let mut rng = SimRng::seed_from(21);
        let horizon = 20_000.0;
        let n = p.arrivals_until(horizon, &mut rng).len() as f64;
        let expected = 2.5 * horizon;
        // Within 3σ of the Poisson count (σ = sqrt(λT)).
        assert!((n - expected).abs() < 3.0 * expected.sqrt(), "n = {n}");
    }

    #[test]
    fn arrivals_are_increasing_and_within_horizon() {
        let p = PoissonProcess::new(1.0);
        let mut rng = SimRng::seed_from(22);
        let a = p.arrivals_until(100.0, &mut rng);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&t| t < 100.0));
    }

    #[test]
    fn rate_round_trips() {
        assert!((PoissonProcess::new(4.0).rate() - 4.0).abs() < 1e-12);
    }
}
