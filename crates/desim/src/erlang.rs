//! Loss-system analytics: the Erlang-B blocking formula.
//!
//! The paper's future-work pointer (§6) is a loss-network formulation à la
//! Paschalidis–Liu; Erlang B is its single-link kernel and serves as the
//! analytical baseline the simulator is validated against.

use fedval_simplex::approx::{is_zero, NOISE_EPS};

/// Erlang-B blocking probability for offered load `a` (Erlang) and `c`
/// servers, computed with the numerically stable recurrence
/// `B(0) = 1, B(k) = a·B(k−1) / (k + a·B(k−1))`.
///
/// Offered loads within [`NOISE_EPS`] of zero short-circuit to zero
/// blocking: at `a ≤ 1e-12` the exact `B ≈ aᶜ/c!` is far below float
/// resolution for any `c ≥ 1`, and the recurrence would only add noise.
pub fn erlang_b(a: f64, c: usize) -> f64 {
    assert!(a >= 0.0 && a.is_finite());
    if is_zero(a, NOISE_EPS) {
        return 0.0;
    }
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Offered load (Erlang) of a Poisson arrival stream with rate λ and mean
/// holding time `t̄`.
pub fn offered_load(lambda: f64, mean_holding: f64) -> f64 {
    assert!(lambda >= 0.0 && mean_holding >= 0.0);
    lambda * mean_holding
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // Classic: a = 2 Erlang, c = 4 → B ≈ 0.0952 (2/21).
        assert!((erlang_b(2.0, 4) - 2.0 / 21.0).abs() < 1e-12);
        // a = 1, c = 1 → B = 1/2.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotonicity() {
        // More servers → less blocking; more load → more blocking.
        for c in 1..30 {
            assert!(erlang_b(10.0, c) > erlang_b(10.0, c + 1));
        }
        for a in 1..20 {
            assert!(erlang_b(a as f64, 10) < erlang_b((a + 1) as f64, 10));
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(erlang_b(0.0, 5), 0.0);
        assert_eq!(erlang_b(7.5, 0), 1.0); // no servers: everything blocked
        assert!(erlang_b(1e6, 10) > 0.999);
    }

    #[test]
    fn offered_load_is_product() {
        assert!((offered_load(5.0, 0.4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiplexing_gain() {
        // The federation argument in miniature: two separate systems with
        // a = 4, c = 5 each block more than one pooled system with a = 8,
        // c = 10 — statistical multiplexing.
        let separate = erlang_b(4.0, 5);
        let pooled = erlang_b(8.0, 10);
        assert!(pooled < separate);
    }
}
