//! Simulation statistics: time-weighted averages, counters, and running
//! moments.

/// Time-weighted average of a piecewise-constant signal (e.g. "slots busy").
///
/// Record every change with [`TimeWeighted::record`]; the average weights
/// each value by how long it was held.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: f64,
    last_value: f64,
    weighted_sum: f64,
    start_time: f64,
}

impl TimeWeighted {
    /// Starts tracking at `time` with an initial `value`.
    pub fn new(time: f64, value: f64) -> TimeWeighted {
        TimeWeighted {
            last_time: time,
            last_value: value,
            weighted_sum: 0.0,
            start_time: time,
        }
    }

    /// Records that the signal changed to `value` at `time`.
    ///
    /// # Panics
    /// Panics if time goes backwards.
    pub fn record(&mut self, time: f64, value: f64) {
        assert!(time >= self.last_time, "time must be monotone");
        self.weighted_sum += self.last_value * (time - self.last_time);
        self.last_time = time;
        self.last_value = value;
    }

    /// The time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: f64) -> f64 {
        assert!(now >= self.last_time);
        let total = self.weighted_sum + self.last_value * (now - self.last_time);
        let span = now - self.start_time;
        if span <= 0.0 {
            self.last_value
        } else {
            total / span
        }
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// A simple event counter with rate computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Zero counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increments by one.
    pub fn bump(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// The count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Events per unit time over a span.
    pub fn rate(&self, span: f64) -> f64 {
        if span <= 0.0 {
            0.0
        } else {
            self.count as f64 / span
        }
    }
}

/// Welford's online mean/variance, for confidence intervals over
/// replications.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the ~95% normal confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_square_wave() {
        // Value 0 on [0,1), 10 on [1,3), 0 on [3,4): mean = 20/4 = 5.
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.record(1.0, 10.0);
        tw.record(3.0, 0.0);
        assert!((tw.mean(4.0) - 5.0).abs() < 1e-12);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_constant_signal() {
        let mut tw = TimeWeighted::new(2.0, 7.0);
        tw.record(5.0, 7.0);
        assert!((tw.mean(10.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.bump();
        c.add(9);
        assert_eq!(c.count(), 10);
        assert!((c.rate(5.0) - 2.0).abs() < 1e-12);
        assert_eq!(c.rate(0.0), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert!(w.ci95_half_width() > 0.0);
    }

    #[test]
    fn welford_degenerate_cases() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }
}

/// Batch-means estimator for steady-state simulation output: feed a long
/// run's observations, split into `n_batches` contiguous batches, and
/// read a mean with a confidence interval that accounts for serial
/// correlation (the standard DES output-analysis method).
#[derive(Debug, Clone)]
pub struct BatchMeans {
    observations: Vec<f64>,
    n_batches: usize,
}

impl BatchMeans {
    /// Creates an estimator that will split into `n_batches` (≥ 2).
    ///
    /// # Panics
    /// Panics if fewer than two batches are requested.
    pub fn new(n_batches: usize) -> BatchMeans {
        assert!(n_batches >= 2, "need at least two batches");
        BatchMeans {
            observations: Vec::new(),
            n_batches,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.observations.push(x);
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// `(mean, ci95 half-width)` from the batch means, or `None` when
    /// there are not enough observations for one point per batch.
    pub fn estimate(&self) -> Option<(f64, f64)> {
        let per_batch = self.observations.len() / self.n_batches;
        if per_batch == 0 {
            return None;
        }
        let mut batches = Welford::new();
        for b in 0..self.n_batches {
            let chunk = &self.observations[b * per_batch..(b + 1) * per_batch];
            let mean: f64 = chunk.iter().sum::<f64>() / chunk.len() as f64;
            batches.push(mean);
        }
        Some((batches.mean(), batches.ci95_half_width()))
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batch_means_recover_iid_mean() {
        let mut bm = BatchMeans::new(10);
        // Deterministic pseudo-random stream around mean 5.
        let mut state = 1u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 40) as f64 / (1u64 << 24) as f64;
            bm.push(4.0 + 2.0 * u);
        }
        let (mean, half) = bm.estimate().unwrap();
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!(half > 0.0 && half < 0.1);
    }

    #[test]
    fn too_few_observations_yield_none() {
        let mut bm = BatchMeans::new(4);
        bm.push(1.0);
        bm.push(2.0);
        assert!(bm.estimate().is_none());
        assert_eq!(bm.len(), 2);
        assert!(!bm.is_empty());
    }

    #[test]
    fn correlated_streams_widen_the_interval() {
        // AR(1)-ish stream: batch means must report a wider CI than the
        // naive iid CI over the same data.
        let mut bm = BatchMeans::new(10);
        let mut naive = Welford::new();
        let mut x = 0.0f64;
        let mut state = 7u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 40) as f64 / (1u64 << 24) as f64 - 0.5;
            x = 0.95 * x + u;
            bm.push(x);
            naive.push(x);
        }
        let (_, batch_half) = bm.estimate().unwrap();
        let naive_half = naive.ci95_half_width();
        assert!(
            batch_half > naive_half,
            "batch {batch_half} vs naive {naive_half}"
        );
    }
}
