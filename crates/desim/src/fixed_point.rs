//! The Erlang fixed-point (reduced-load) approximation for loss
//! *networks* — many links, routes spanning several links.
//!
//! [`kaufman_roberts`](crate::kaufman_roberts) treats capacity as one
//! pooled knapsack; a federation is really a *network*: each location is
//! a link of capacity `C_ℓ`, and an experiment is a route occupying one
//! circuit on each of its locations. Exact analysis is exponential; the
//! classical Erlang fixed-point approximation (Kelly 1986) iterates
//!
//! ```text
//! B_ℓ = ErlangB( Σ_{routes r ∋ ℓ} a_r · Π_{k ∈ r, k ≠ ℓ} (1 − B_k),  C_ℓ )
//! ```
//!
//! until the per-link blocking probabilities converge; route blocking is
//! then `L_r = 1 − Π_{ℓ∈r}(1 − B_ℓ)`. The approximation is asymptotically
//! exact in the Kelly limiting regime and widely accurate in practice —
//! here it is cross-validated against the discrete-event simulator.

use crate::erlang::erlang_b;

/// One route: the links it uses and its offered load (Erlang).
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Indices of the links (locations) the route occupies, one circuit
    /// each. Duplicate links are not allowed.
    pub links: Vec<usize>,
    /// Offered load `a = λ·t̄` of the route.
    pub offered_load: f64,
}

impl Route {
    /// Creates a route.
    ///
    /// # Panics
    /// Panics on an empty or duplicated link list, or negative load.
    pub fn new(links: Vec<usize>, offered_load: f64) -> Route {
        assert!(!links.is_empty(), "route must use at least one link");
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), links.len(), "duplicate links in route");
        assert!(offered_load >= 0.0 && offered_load.is_finite());
        Route {
            links,
            offered_load,
        }
    }
}

/// Result of the fixed-point computation.
#[derive(Debug, Clone)]
pub struct FixedPoint {
    /// Per-link blocking probabilities `B_ℓ`.
    pub link_blocking: Vec<f64>,
    /// Per-route end-to-end blocking `L_r = 1 − Π(1 − B_ℓ)`.
    pub route_blocking: Vec<f64>,
    /// Iterations until convergence.
    pub iterations: usize,
    /// Whether the iteration converged within the cap.
    pub converged: bool,
}

/// Runs the Erlang fixed-point iteration.
///
/// `capacities[ℓ]` is link ℓ's circuit count. Damped successive
/// substitution (factor ½) with tolerance `1e-10`, capped at 10 000
/// sweeps — the fixed point is unique for this monotone system (Kelly),
/// so convergence failure indicates pathological inputs.
///
/// # Panics
/// Panics if a route references a non-existent link.
pub fn erlang_fixed_point(capacities: &[u64], routes: &[Route]) -> FixedPoint {
    let n = capacities.len();
    for r in routes {
        assert!(
            r.links.iter().all(|&l| l < n),
            "route references unknown link"
        );
    }
    let mut blocking = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < 10_000 {
        iterations += 1;
        let mut max_delta = 0.0f64;
        for l in 0..n {
            // Reduced offered load at link l.
            let mut a = 0.0;
            for r in routes {
                if !r.links.contains(&l) {
                    continue;
                }
                let thinned: f64 = r
                    .links
                    .iter()
                    .filter(|&&k| k != l)
                    .map(|&k| 1.0 - blocking[k])
                    .product();
                a += r.offered_load * thinned;
            }
            let target = erlang_b(a, capacities[l] as usize);
            let next = 0.5 * blocking[l] + 0.5 * target;
            max_delta = max_delta.max((next - blocking[l]).abs());
            blocking[l] = next;
        }
        if max_delta < 1e-10 {
            converged = true;
            break;
        }
    }
    let route_blocking = routes
        .iter()
        .map(|r| {
            1.0 - r
                .links
                .iter()
                .map(|&l| 1.0 - blocking[l])
                .product::<f64>()
        })
        .collect();
    FixedPoint {
        link_blocking: blocking,
        route_blocking,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_reduces_to_erlang_b() {
        let fp = erlang_fixed_point(&[5], &[Route::new(vec![0], 3.0)]);
        assert!(fp.converged);
        assert!((fp.link_blocking[0] - erlang_b(3.0, 5)).abs() < 1e-8);
        assert!((fp.route_blocking[0] - fp.link_blocking[0]).abs() < 1e-12);
    }

    #[test]
    fn unloaded_links_never_block() {
        let fp = erlang_fixed_point(&[4, 4, 4], &[Route::new(vec![0], 1.0)]);
        assert!(fp.link_blocking[1] < 1e-12);
        assert!(fp.link_blocking[2] < 1e-12);
    }

    #[test]
    fn longer_routes_block_more() {
        // Same load, uniform links: a 3-link route sees ≈ 3× the blocking
        // of a 1-link route at small B.
        let routes = vec![
            Route::new(vec![0], 1.0),
            Route::new(vec![1, 2, 3], 1.0),
        ];
        let fp = erlang_fixed_point(&[3, 3, 3, 3], &routes);
        assert!(fp.route_blocking[1] > fp.route_blocking[0]);
    }

    #[test]
    fn shared_link_couples_routes() {
        // Two routes share link 0: loading route 1 raises route 0's
        // blocking even though route 0's own private link is idle.
        let light = erlang_fixed_point(
            &[2, 10],
            &[Route::new(vec![0, 1], 0.5), Route::new(vec![0], 0.01)],
        );
        let heavy = erlang_fixed_point(
            &[2, 10],
            &[Route::new(vec![0, 1], 0.5), Route::new(vec![0], 3.0)],
        );
        assert!(heavy.route_blocking[0] > light.route_blocking[0]);
    }

    #[test]
    fn matches_des_on_a_small_network() {
        // 3 links, 2 routes; cross-check against event-driven simulation.
        use crate::rng::{Distribution, Exponential, SimRng};
        use crate::Simulator;
        let capacities = [3u64, 4, 3];
        let routes = [
            Route::new(vec![0, 1], 1.2),
            Route::new(vec![1, 2], 1.5),
        ];
        let fp = erlang_fixed_point(&capacities, &routes);
        assert!(fp.converged);

        let mut sim = Simulator::new();
        let mut rng = SimRng::seed_from(4242);
        enum Ev {
            Arrival(usize),
            Departure(Vec<usize>),
        }
        for (k, r) in routes.iter().enumerate() {
            let gap = Exponential::with_rate(r.offered_load); // t̄ = 1
            sim.schedule(gap.sample(&mut rng), Ev::Arrival(k));
        }
        let mut free = capacities.to_vec();
        let mut arrivals = [0u64; 2];
        let mut blocked = [0u64; 2];
        let hold = Exponential::with_mean(1.0);
        while let Some((now, ev)) = sim.next_event() {
            if now > 60_000.0 {
                break;
            }
            match ev {
                Ev::Arrival(k) => {
                    arrivals[k] += 1;
                    let links = &routes[k].links;
                    if links.iter().all(|&l| free[l] > 0) {
                        for &l in links {
                            free[l] -= 1;
                        }
                        sim.schedule_at(
                            now + hold.sample(&mut rng),
                            Ev::Departure(links.clone()),
                        );
                    } else {
                        blocked[k] += 1;
                    }
                    let gap = Exponential::with_rate(routes[k].offered_load);
                    sim.schedule_at(now + gap.sample(&mut rng), Ev::Arrival(k));
                }
                Ev::Departure(links) => {
                    for l in links {
                        free[l] += 1;
                    }
                }
            }
        }
        for k in 0..2 {
            let simulated = blocked[k] as f64 / arrivals[k] as f64;
            // The fixed point is an approximation: on a system this small
            // the known bias is a few percentage points (it vanishes in
            // the Kelly scaling regime — see the next test).
            assert!(
                (simulated - fp.route_blocking[k]).abs() < 0.04,
                "route {k}: sim {simulated} vs fixed point {}",
                fp.route_blocking[k]
            );
        }
    }

    #[test]
    fn kelly_scaling_shrinks_the_approximation_error() {
        // Scale capacities and loads together: the reduced-load
        // approximation becomes asymptotically exact, so the fixed-point
        // blocking should approach the (pooled-limit) simulated value.
        // Here we verify the *internal* consistency signature of the
        // regime: blocking decreases and the iteration still converges.
        let mut prev = 1.0;
        for scale in [1u64, 4, 16] {
            let fp = erlang_fixed_point(
                &[3 * scale, 4 * scale, 3 * scale],
                &[
                    Route::new(vec![0, 1], 1.2 * scale as f64),
                    Route::new(vec![1, 2], 1.5 * scale as f64),
                ],
            );
            assert!(fp.converged);
            assert!(
                fp.route_blocking[0] < prev + 1e-12,
                "blocking must fall with scale"
            );
            prev = fp.route_blocking[0];
        }
        assert!(prev < 0.1, "large systems barely block: {prev}");
    }

    #[test]
    fn federation_pooling_in_network_form() {
        // Two identical sub-networks vs the pooled network with doubled
        // link capacities: pooling cuts route blocking.
        let separate = erlang_fixed_point(&[3, 3], &[Route::new(vec![0, 1], 2.0)]);
        let pooled = erlang_fixed_point(&[6, 6], &[Route::new(vec![0, 1], 4.0)]);
        assert!(pooled.route_blocking[0] < separate.route_blocking[0]);
    }
}
