#![deny(missing_docs)]

//! Discrete-event simulation substrate for the federation reproduction.
//!
//! The paper's static analysis abstracts away time: holding times `t_k`
//! enter only as multiplexing factors. §2.2 stresses that holding time
//! drives "the level of statistical multiplexing achieved under different
//! federation scenarios", and §6 names a loss-network formulation as the
//! natural extension. This crate provides the machinery to actually run
//! that dynamics: an event calendar, Poisson arrival processes,
//! holding-time distributions, time-weighted statistics, and the Erlang-B
//! loss formula as an analytical cross-check.
//!
//! `fedval-testbed` builds the PlanetLab-style facility simulation on top.
//!
//! # Example: M/M/c/c loss system vs Erlang B
//!
//! ```
//! use fedval_desim::{erlang_b, Simulator, Exponential, Distribution, SimRng};
//!
//! let mut sim = Simulator::new();
//! let mut rng = SimRng::seed_from(7);
//! let arrival = Exponential::with_rate(1.0);
//! let service = Exponential::with_rate(0.5); // offered load = 2 Erlang
//! let servers = 4usize;
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//! sim.schedule(arrival.sample(&mut rng), Ev::Arrival);
//! let (mut busy, mut arrivals, mut blocked) = (0usize, 0u64, 0u64);
//! while let Some((now, ev)) = sim.next_event() {
//!     if now > 10_000.0 { break; }
//!     match ev {
//!         Ev::Arrival => {
//!             arrivals += 1;
//!             if busy < servers {
//!                 busy += 1;
//!                 sim.schedule_at(now + service.sample(&mut rng), Ev::Departure);
//!             } else {
//!                 blocked += 1;
//!             }
//!             sim.schedule_at(now + arrival.sample(&mut rng), Ev::Arrival);
//!         }
//!         Ev::Departure => busy -= 1,
//!     }
//! }
//! let simulated = blocked as f64 / arrivals as f64;
//! let analytic = erlang_b(2.0, 4);
//! assert!((simulated - analytic).abs() < 0.02);
//! ```

mod engine;
mod erlang;
mod fixed_point;
mod loss_network;
mod process;
mod rng;
mod stats;

pub use engine::{ScheduleError, Simulator};
pub use erlang::{erlang_b, offered_load};
pub use fixed_point::{erlang_fixed_point, FixedPoint, Route};
pub use loss_network::{kaufman_roberts, LossAnalysis, LossClass};
pub use process::PoissonProcess;
pub use rng::{Deterministic, Distribution, Exponential, Pareto, SimRng, Uniform};
pub use stats::{BatchMeans, Counter, TimeWeighted, Welford};
