//! Multi-class loss systems: the Kaufman–Roberts recursion.
//!
//! The paper's §6 names "a loss networks formulation … similar to
//! Paschalidis and Liu" as the natural dynamic extension of its static
//! model. The single-link kernel of that theory is the *stochastic
//! knapsack*: `C` resource units shared by `K` Poisson classes, class `k`
//! holding `b_k` units for an exponential holding time. The occupancy
//! distribution satisfies the Kaufman–Roberts recursion
//!
//! ```text
//! j·q(j) = Σ_k a_k · b_k · q(j − b_k)        (a_k = λ_k·t̄_k)
//! ```
//!
//! and class-`k` blocking is the tail mass `B_k = Σ_{j > C−b_k} q(j)`.
//! Complexity `O(C·K)` — exact, no simulation noise.

/// One traffic class of the stochastic knapsack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossClass {
    /// Poisson arrival rate λ.
    pub rate: f64,
    /// Mean holding time t̄.
    pub mean_holding: f64,
    /// Resource units held per admitted call (`b_k ≥ 1`).
    pub size: u64,
}

impl LossClass {
    /// Creates a class.
    ///
    /// # Panics
    /// Panics on non-positive rate/holding or zero size.
    pub fn new(rate: f64, mean_holding: f64, size: u64) -> LossClass {
        assert!(rate >= 0.0 && rate.is_finite());
        assert!(mean_holding > 0.0 && mean_holding.is_finite());
        assert!(size >= 1);
        LossClass {
            rate,
            mean_holding,
            size,
        }
    }

    /// Offered load `a = λ·t̄` in Erlang.
    pub fn offered_load(&self) -> f64 {
        self.rate * self.mean_holding
    }
}

/// Result of the Kaufman–Roberts analysis.
#[derive(Debug, Clone)]
pub struct LossAnalysis {
    /// Blocking probability per class.
    pub blocking: Vec<f64>,
    /// Occupancy distribution `q(j)`, `j ∈ 0..=C`.
    pub occupancy: Vec<f64>,
    /// Mean number of busy resource units.
    pub mean_occupancy: f64,
}

impl LossAnalysis {
    /// Long-run admitted throughput of class `k` (arrivals per time unit).
    pub fn throughput(&self, classes: &[LossClass], k: usize) -> f64 {
        classes[k].rate * (1.0 - self.blocking[k])
    }

    /// Long-run *value rate*: `Σ_k λ_k·(1 − B_k)·u_k` for per-admission
    /// utilities `u`.
    pub fn value_rate(&self, classes: &[LossClass], utilities: &[f64]) -> f64 {
        classes
            .iter()
            .zip(&self.blocking)
            .zip(utilities)
            .map(|((c, &b), &u)| c.rate * (1.0 - b) * u)
            .sum()
    }
}

/// Runs the Kaufman–Roberts recursion for `capacity` resource units.
pub fn kaufman_roberts(capacity: u64, classes: &[LossClass]) -> LossAnalysis {
    let c = capacity as usize;
    // Unnormalized occupancy: g(0) = 1; j·g(j) = Σ a_k b_k g(j − b_k).
    let mut g = vec![0.0f64; c + 1];
    g[0] = 1.0;
    for j in 1..=c {
        let mut total = 0.0;
        for class in classes {
            let b = class.size as usize;
            if b <= j {
                total += class.offered_load() * b as f64 * g[j - b];
            }
        }
        g[j] = total / j as f64;
    }
    let norm: f64 = g.iter().sum();
    let occupancy: Vec<f64> = g.iter().map(|&v| v / norm).collect();

    let blocking = classes
        .iter()
        .map(|class| {
            let b = class.size as usize;
            if b > c {
                1.0
            } else {
                occupancy[c + 1 - b..=c].iter().sum()
            }
        })
        .collect();
    let mean_occupancy = occupancy
        .iter()
        .enumerate()
        .map(|(j, &q)| j as f64 * q)
        .sum();
    LossAnalysis {
        blocking,
        occupancy,
        mean_occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erlang::erlang_b;

    #[test]
    fn single_unit_class_reduces_to_erlang_b() {
        for (a, c) in [(2.0, 4u64), (5.0, 5), (0.5, 10)] {
            let analysis = kaufman_roberts(c, &[LossClass::new(a, 1.0, 1)]);
            let expect = erlang_b(a, c as usize);
            assert!(
                (analysis.blocking[0] - expect).abs() < 1e-12,
                "a={a} c={c}: {} vs {expect}",
                analysis.blocking[0]
            );
        }
    }

    #[test]
    fn occupancy_is_a_distribution() {
        let classes = [LossClass::new(1.0, 1.0, 1), LossClass::new(0.5, 2.0, 3)];
        let analysis = kaufman_roberts(12, &classes);
        let total: f64 = analysis.occupancy.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(analysis.occupancy.iter().all(|&q| q >= 0.0));
        assert!(analysis.mean_occupancy > 0.0 && analysis.mean_occupancy < 12.0);
    }

    #[test]
    fn bigger_calls_block_more() {
        let classes = [LossClass::new(1.0, 1.0, 1), LossClass::new(1.0, 1.0, 4)];
        let analysis = kaufman_roberts(10, &classes);
        assert!(analysis.blocking[1] > analysis.blocking[0]);
    }

    #[test]
    fn oversized_calls_always_block() {
        let analysis = kaufman_roberts(3, &[LossClass::new(1.0, 1.0, 5)]);
        assert!((analysis.blocking[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pooling_two_links_reduces_blocking() {
        // The federation story in loss-network form: one class split over
        // two C-unit links blocks more than the same total load on 2C.
        let half = [LossClass::new(2.0, 1.0, 2)];
        let full = [LossClass::new(4.0, 1.0, 2)];
        let separate = kaufman_roberts(10, &half).blocking[0];
        let pooled = kaufman_roberts(20, &full).blocking[0];
        assert!(pooled < separate);
    }

    #[test]
    fn value_rate_and_throughput() {
        let classes = [LossClass::new(2.0, 1.0, 1), LossClass::new(1.0, 1.0, 2)];
        let analysis = kaufman_roberts(6, &classes);
        let tp0 = analysis.throughput(&classes, 0);
        assert!(tp0 > 0.0 && tp0 <= 2.0);
        let vr = analysis.value_rate(&classes, &[10.0, 25.0]);
        let by_hand =
            2.0 * (1.0 - analysis.blocking[0]) * 10.0 + 1.0 * (1.0 - analysis.blocking[1]) * 25.0;
        assert!((vr - by_hand).abs() < 1e-12);
    }

    #[test]
    fn matches_des_simulation() {
        // Cross-validate against the event-driven simulator.
        use crate::rng::{Distribution, Exponential, SimRng};
        use crate::Simulator;
        let classes = [LossClass::new(1.5, 1.0, 1), LossClass::new(0.75, 1.0, 3)];
        let capacity = 8u64;
        let analytic = kaufman_roberts(capacity, &classes);

        let mut sim = Simulator::new();
        let mut rng = SimRng::seed_from(77);
        enum Ev {
            Arrival(usize),
            Departure(u64),
        }
        for (k, class) in classes.iter().enumerate() {
            let gap = Exponential::with_rate(class.rate);
            sim.schedule(gap.sample(&mut rng), Ev::Arrival(k));
        }
        let mut busy = 0u64;
        let mut arrivals = [0u64; 2];
        let mut blocked = [0u64; 2];
        while let Some((now, ev)) = sim.next_event() {
            if now > 40_000.0 {
                break;
            }
            match ev {
                Ev::Arrival(k) => {
                    let class = &classes[k];
                    arrivals[k] += 1;
                    if busy + class.size <= capacity {
                        busy += class.size;
                        let hold = Exponential::with_mean(class.mean_holding);
                        sim.schedule_at(now + hold.sample(&mut rng), Ev::Departure(class.size));
                    } else {
                        blocked[k] += 1;
                    }
                    let gap = Exponential::with_rate(class.rate);
                    sim.schedule_at(now + gap.sample(&mut rng), Ev::Arrival(k));
                }
                Ev::Departure(size) => busy -= size,
            }
        }
        for k in 0..2 {
            let simulated = blocked[k] as f64 / arrivals[k] as f64;
            assert!(
                (simulated - analytic.blocking[k]).abs() < 0.015,
                "class {k}: sim {simulated} vs kr {}",
                analytic.blocking[k]
            );
        }
    }
}
