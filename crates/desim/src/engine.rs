//! The event calendar and simulation clock.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Why an event could not be scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// The requested firing time is NaN or infinite.
    NonFiniteTime {
        /// The offending time.
        at: f64,
    },
    /// The requested firing time precedes the current clock.
    TimeInPast {
        /// The requested firing time.
        at: f64,
        /// The simulator's current time.
        now: f64,
    },
    /// A relative delay was negative (or NaN).
    NegativeDelay {
        /// The offending delay.
        delay: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NonFiniteTime { at } => {
                write!(f, "event time {at} is not finite")
            }
            ScheduleError::TimeInPast { at, now } => {
                write!(f, "cannot schedule at {at}: clock is already at {now}")
            }
            ScheduleError::NegativeDelay { delay } => {
                write!(f, "delay {delay} must be non-negative")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A pending event: fires at `time`, carrying `payload`.
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        // Ties broken by insertion order (seq) for determinism. `total_cmp`
        // keeps this panic-free; non-finite times are rejected at scheduling
        // time, so the IEEE total order only ever sees finite values here.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event simulator.
///
/// Caller-driven: `schedule` events, then drain them in time order with
/// [`Simulator::next_event`], scheduling follow-ups as you go. Same-time
/// events fire in scheduling order, making runs reproducible.
pub struct Simulator<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: f64,
    seq: u64,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Simulator::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator at time 0.
    pub fn new() -> Simulator<E> {
        Simulator {
            queue: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time (the time of the last delivered event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is non-finite or in the past. Use
    /// [`Simulator::try_schedule_at`] on paths that must not panic.
    pub fn schedule_at(&mut self, at: f64, payload: E) {
        if let Err(e) = self.try_schedule_at(at, payload) {
            // lint: allow(no-panic-path) — documented `# Panics` convenience
            // wrapper; fallible callers use try_schedule_at instead.
            panic!("schedule_at: {e}");
        }
    }

    /// Schedules `payload` at absolute time `at`, rejecting non-finite or
    /// past times as a [`ScheduleError`] instead of panicking.
    ///
    /// # Errors
    /// [`ScheduleError::NonFiniteTime`] for NaN or infinite `at`;
    /// [`ScheduleError::TimeInPast`] when `at` precedes the current clock.
    pub fn try_schedule_at(&mut self, at: f64, payload: E) -> Result<(), ScheduleError> {
        if !at.is_finite() {
            return Err(ScheduleError::NonFiniteTime { at });
        }
        if at < self.now {
            return Err(ScheduleError::TimeInPast { at, now: self.now });
        }
        self.queue.push(Scheduled {
            time: at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        Ok(())
    }

    /// Schedules `payload` after a `delay` from the current time.
    ///
    /// # Panics
    /// Panics if `delay` is negative or non-finite. Use
    /// [`Simulator::try_schedule`] on paths that must not panic.
    pub fn schedule(&mut self, delay: f64, payload: E) {
        if let Err(e) = self.try_schedule(delay, payload) {
            // lint: allow(no-panic-path) — documented `# Panics` convenience
            // wrapper; fallible callers use try_schedule instead.
            panic!("schedule: {e}");
        }
    }

    /// Schedules `payload` after a `delay` from the current time, rejecting
    /// negative or non-finite delays as a [`ScheduleError`].
    ///
    /// # Errors
    /// [`ScheduleError::NegativeDelay`] for NaN or negative `delay`; otherwise
    /// as [`Simulator::try_schedule_at`].
    pub fn try_schedule(&mut self, delay: f64, payload: E) -> Result<(), ScheduleError> {
        if delay.is_nan() || delay < 0.0 {
            return Err(ScheduleError::NegativeDelay { delay });
        }
        self.try_schedule_at(self.now + delay, payload)
    }

    /// Delivers the next event, advancing the clock. `None` when the
    /// calendar is empty.
    pub fn next_event(&mut self) -> Option<(f64, E)> {
        let ev = self.queue.pop()?;
        self.now = ev.time;
        self.processed += 1;
        Some((ev.time, ev.payload))
    }

    /// Peeks at the next event time without delivering.
    pub fn peek_time(&self) -> Option<f64> {
        self.queue.peek().map(|e| e.time)
    }
}

impl<E> Drop for Simulator<E> {
    /// Reports calendar throughput to the observability layer once per
    /// simulator lifetime — aggregated on drop rather than emitted per
    /// event, so the hot event loop stays record-free.
    fn drop(&mut self) {
        if self.seq > 0 && fedval_obs::is_enabled() {
            fedval_obs::counter_add("desim.engine.scheduled", self.seq);
            fedval_obs::counter_add("desim.engine.delivered", self.processed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_at(3.0, "c");
        sim.schedule_at(1.0, "a");
        sim.schedule_at(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| sim.next_event().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| sim.next_event().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule(2.5, ());
        assert_eq!(sim.now(), 0.0);
        assert_eq!(sim.peek_time(), Some(2.5));
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t, 2.5);
        assert_eq!(sim.now(), 2.5);
        sim.schedule(1.0, ());
        let (t2, _) = sim.next_event().unwrap();
        assert_eq!(t2, 3.5);
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "clock is already at")]
    fn rejects_past_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(2.0, ());
        sim.next_event();
        sim.schedule_at(1.0, ());
    }

    #[test]
    fn empty_calendar_returns_none() {
        let mut sim: Simulator<()> = Simulator::new();
        assert!(sim.next_event().is_none());
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn try_schedule_reports_bad_times_without_panicking() {
        let mut sim = Simulator::new();
        assert!(matches!(
            sim.try_schedule_at(f64::NAN, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        sim.schedule_at(2.0, ());
        sim.next_event();
        assert_eq!(
            sim.try_schedule_at(1.0, ()),
            Err(ScheduleError::TimeInPast { at: 1.0, now: 2.0 })
        );
        assert_eq!(
            sim.try_schedule(-0.5, ()),
            Err(ScheduleError::NegativeDelay { delay: -0.5 })
        );
        // The calendar is untouched by rejected schedules.
        assert_eq!(sim.pending(), 0);
        assert!(sim.try_schedule(1.0, ()).is_ok());
        assert_eq!(sim.pending(), 1);
    }
}
