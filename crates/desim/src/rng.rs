//! Seeded randomness and the distributions the workload models need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The simulation RNG: a seeded `StdRng` so every run is reproducible.
pub struct SimRng(StdRng);

impl SimRng {
    /// Creates a deterministic stream from a seed.
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.0.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.0.random_range(0..n)
    }

    /// Derives an independent child stream (for per-entity streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng(StdRng::seed_from_u64(self.0.random()))
    }
}

/// A sampleable distribution over non-negative reals.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean.
    fn mean(&self) -> f64;
}

/// Exponential distribution — memoryless holding times / interarrivals.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// From a rate λ (> 0); mean is `1/λ`.
    pub fn with_rate(rate: f64) -> Exponential {
        assert!(rate > 0.0 && rate.is_finite());
        Exponential { rate }
    }

    /// From a mean (> 0).
    pub fn with_mean(mean: f64) -> Exponential {
        Exponential::with_rate(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - rng.uniform01();
        -u.ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Point mass — deterministic holding times.
#[derive(Debug, Clone, Copy)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// A constant sample value (≥ 0).
    pub fn new(value: f64) -> Deterministic {
        assert!(value >= 0.0 && value.is_finite());
        Deterministic { value }
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }
}

/// Pareto (heavy-tailed) distribution — long-running experiment sessions.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Pareto with minimum `scale` and tail index `shape` (> 1 so the mean
    /// exists).
    pub fn new(scale: f64, shape: f64) -> Pareto {
        assert!(scale > 0.0 && shape > 1.0);
        Pareto { scale, shape }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.uniform01();
        self.scale / u.powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * self.shape / (self.shape - 1.0)
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Uniform {
        assert!(lo < hi);
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.uniform01()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean<D: Distribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(3.0);
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn pareto_mean_converges() {
        let d = Pareto::new(1.0, 3.0);
        let m = sample_mean(&d, 400_000, 2);
        assert!((m - d.mean()).abs() < 0.05, "mean {m} vs {}", d.mean());
    }

    #[test]
    fn uniform_mean_and_range() {
        let d = Uniform::new(2.0, 4.0);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((sample_mean(&d, 100_000, 4) - 3.0).abs() < 0.02);
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(1.5);
        let mut rng = SimRng::seed_from(5);
        assert_eq!(d.sample(&mut rng), 1.5);
        assert_eq!(d.mean(), 1.5);
    }

    #[test]
    fn seeding_is_reproducible_and_forks_differ() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        assert_eq!(a.uniform01(), b.uniform01());
        let mut fork = a.fork();
        // The fork must diverge from the parent's continued stream.
        assert_ne!(fork.uniform01(), b.uniform01());
    }

    #[test]
    fn samples_are_nonnegative() {
        let mut rng = SimRng::seed_from(11);
        let e = Exponential::with_rate(2.0);
        let p = Pareto::new(0.5, 2.0);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) >= 0.0);
            assert!(p.sample(&mut rng) >= 0.5);
        }
    }
}
