//! The user-facing slice API: create, inspect, and delete slices against
//! a live federation state.
//!
//! The batch simulator ([`crate::run_coalition`]) replays workloads; this
//! module is the *interactive* counterpart — the operations PlanetLab
//! exposes to researchers (§1.2: "a slice consists of one virtual machine
//! on each of a set of nodes"), with SFA-style credential checks and
//! MySlice-style node selection.

use crate::federation::{Credential, Federation};
use crate::selection::{select, NodeQuery};
use fedval_core::{ExperimentClass, LocationId, Utility};
use std::collections::BTreeMap;

/// A live sliver: `r` resource units on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sliver {
    /// Index into the manager's node table.
    pub node: usize,
    /// Location of that node.
    pub location: LocationId,
    /// Resource units held.
    pub units: u64,
}

/// A live slice.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Slice id (unique per manager).
    pub id: u64,
    /// Owner credential that created it.
    pub owner: Credential,
    /// The slivers composing the slice.
    pub slivers: Vec<Sliver>,
    /// Utility of the slice per the owning experiment class.
    pub utility: f64,
}

impl Slice {
    /// Distinct locations the slice spans.
    pub fn n_locations(&self) -> usize {
        let mut locs: Vec<LocationId> = self.slivers.iter().map(|s| s.location).collect();
        locs.sort_unstable();
        locs.dedup();
        locs.len()
    }
}

/// Why a slice request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The credential's integrity tag does not verify.
    BadCredential,
    /// The issuing authority is not a federation member.
    UnknownAuthority,
    /// Not enough distinct locations with free capacity to clear the
    /// class's diversity threshold. Carries the number available.
    InsufficientDiversity(u64),
    /// No such slice.
    NoSuchSlice,
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::BadCredential => write!(f, "credential failed verification"),
            SliceError::UnknownAuthority => write!(f, "credential from unknown authority"),
            SliceError::InsufficientDiversity(n) => {
                write!(f, "only {n} distinct locations available")
            }
            SliceError::NoSuchSlice => write!(f, "no such slice"),
        }
    }
}

impl std::error::Error for SliceError {}

struct ManagedNode {
    location: LocationId,
    capacity: u64,
    used: u64,
}

/// Tracks live slices and node occupancy for a federation.
pub struct SliceManager {
    federation: Federation,
    nodes: Vec<ManagedNode>,
    slices: BTreeMap<u64, Slice>,
    next_id: u64,
}

impl SliceManager {
    /// Creates a manager over all nodes of the federation.
    pub fn new(federation: Federation) -> SliceManager {
        let nodes = federation
            .registry()
            .into_iter()
            .map(|r| ManagedNode {
                location: r.location,
                capacity: r.sliver_capacity,
                used: 0,
            })
            .collect();
        SliceManager {
            federation,
            nodes,
            slices: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The managed federation.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// Number of live slices.
    pub fn n_slices(&self) -> usize {
        self.slices.len()
    }

    /// Total resource units currently in use.
    pub fn units_in_use(&self) -> u64 {
        self.nodes.iter().map(|n| n.used).sum()
    }

    /// Creates a slice for `class`, optionally restricted to nodes
    /// matching `query` (MySlice-style property selection).
    ///
    /// Placement: one least-loaded eligible node per matching location
    /// (up to the class's `l̄`); the class's `r` units per chosen node.
    /// Fails without side effects if the diversity threshold cannot be
    /// met.
    ///
    /// # Errors
    /// [`SliceError::BadCredential`] or [`SliceError::UnknownAuthority`] when
    /// the credential fails verification, and
    /// [`SliceError::InsufficientDiversity`] when too few distinct locations
    /// have capacity to clear the class's threshold.
    pub fn create_slice(
        &mut self,
        owner: &Credential,
        class: &ExperimentClass,
        query: Option<&NodeQuery>,
    ) -> Result<u64, SliceError> {
        if !owner.verify() {
            return Err(SliceError::BadCredential);
        }
        if owner.authority as usize >= self.federation.len() {
            return Err(SliceError::UnknownAuthority);
        }

        // Candidate node indices: registry order matches `self.nodes`.
        let allowed: Vec<bool> = match query {
            None => vec![true; self.nodes.len()],
            Some(q) => {
                let matching = select(&self.federation, q);
                // Mark nodes by (location, capacity, count) — registry
                // order is deterministic, so re-run the predicate.
                self.federation
                    .registry()
                    .iter()
                    .map(|r| matching.nodes.contains(r))
                    .collect()
            }
        };

        let r = class.resources_per_location;
        // Best (least-loaded) eligible node per location.
        let mut per_location: BTreeMap<LocationId, usize> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !allowed[i] || node.used + r > node.capacity {
                continue;
            }
            per_location
                .entry(node.location)
                .and_modify(|best| {
                    if node.used < self.nodes[*best].used {
                        *best = i;
                    }
                })
                .or_insert(i);
        }
        let available = per_location.len() as u64;
        let want = class.max_size(available);
        if (want as f64) <= class.utility.threshold {
            return Err(SliceError::InsufficientDiversity(available));
        }
        let mut chosen: Vec<usize> = per_location.into_values().collect();
        chosen.sort_by_key(|&i| (self.nodes[i].used, i));
        chosen.truncate(want as usize);

        let slivers: Vec<Sliver> = chosen
            .iter()
            .map(|&i| {
                self.nodes[i].used += r;
                Sliver {
                    node: i,
                    location: self.nodes[i].location,
                    units: r,
                }
            })
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        self.slices.insert(
            id,
            Slice {
                id,
                owner: owner.clone(),
                utility: class.utility.eval(want as f64),
                slivers,
            },
        );
        Ok(id)
    }

    /// Looks up a live slice.
    pub fn slice(&self, id: u64) -> Option<&Slice> {
        self.slices.get(&id)
    }

    /// Deletes a slice, releasing its slivers.
    ///
    /// # Errors
    /// [`SliceError::NoSuchSlice`] when `id` is not a live slice.
    pub fn delete_slice(&mut self, id: u64) -> Result<(), SliceError> {
        let slice = self.slices.remove(&id).ok_or(SliceError::NoSuchSlice)?;
        for sliver in &slice.slivers {
            debug_assert!(self.nodes[sliver.node].used >= sliver.units);
            self.nodes[sliver.node].used -= sliver.units;
        }
        Ok(())
    }

    /// Total utility of all live slices.
    pub fn total_utility(&self) -> f64 {
        self.slices.values().map(|s| s.utility).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::synthetic_authority;

    fn manager() -> SliceManager {
        SliceManager::new(Federation::new(vec![
            synthetic_authority("PLC", 0, 6, 2, 2, 10),
            synthetic_authority("PLE", 6, 4, 2, 2, 10),
        ]))
    }

    fn cred() -> Credential {
        Credential::issue(0, 7)
    }

    #[test]
    fn create_inspect_delete_round_trip() {
        let mut m = manager();
        let class = ExperimentClass::simple("e", 5.0, 1.0);
        let id = m.create_slice(&cred(), &class, None).unwrap();
        let slice = m.slice(id).unwrap();
        assert_eq!(slice.n_locations(), 10);
        assert_eq!(slice.utility, 10.0);
        assert_eq!(m.units_in_use(), 10);
        m.delete_slice(id).unwrap();
        assert_eq!(m.units_in_use(), 0);
        assert_eq!(m.n_slices(), 0);
        assert_eq!(m.delete_slice(id), Err(SliceError::NoSuchSlice));
    }

    #[test]
    fn rejects_forged_credentials() {
        let mut m = manager();
        let mut forged = cred();
        forged.user = 99;
        let class = ExperimentClass::simple("e", 1.0, 1.0);
        assert_eq!(
            m.create_slice(&forged, &class, None),
            Err(SliceError::BadCredential)
        );
        let foreign = Credential::issue(9, 1);
        assert_eq!(
            m.create_slice(&foreign, &class, None),
            Err(SliceError::UnknownAuthority)
        );
    }

    #[test]
    fn capacity_exhaustion_blocks_politely() {
        let mut m = manager();
        // Each location has 2 nodes × 2 slivers = 4 capacity; a slice
        // takes 1 unit at one node per location. 4 wide slices fill the
        // per-location best nodes' capacity...
        let class = ExperimentClass::simple("e", 9.0, 1.0);
        let mut created = 0;
        loop {
            match m.create_slice(&cred(), &class, None) {
                Ok(_) => created += 1,
                Err(SliceError::InsufficientDiversity(n)) => {
                    assert!(n < 10);
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(created < 100, "must eventually exhaust");
        }
        // 10 locations × 4 slivers = 40 units; each slice takes 10.
        assert_eq!(created, 4);
    }

    #[test]
    fn query_restricts_placement() {
        let mut m = manager();
        let class = ExperimentClass::simple("e", 3.0, 1.0);
        // Only PLE's block (locations 6..10).
        let q = NodeQuery::any().in_location_range(6, 10);
        let id = m.create_slice(&cred(), &class, Some(&q)).unwrap();
        let slice = m.slice(id).unwrap();
        assert_eq!(slice.n_locations(), 4);
        assert!(slice.slivers.iter().all(|s| s.location >= 6));
        // A too-narrow query fails cleanly.
        let tight = NodeQuery::any().in_location_range(6, 8);
        let err = m.create_slice(&cred(), &class, Some(&tight));
        assert_eq!(err, Err(SliceError::InsufficientDiversity(2)));
    }

    #[test]
    fn failed_creation_has_no_side_effects() {
        let mut m = manager();
        let class = ExperimentClass::simple("e", 50.0, 1.0); // impossible
        let before = m.units_in_use();
        let _ = m.create_slice(&cred(), &class, None);
        assert_eq!(m.units_in_use(), before);
        assert_eq!(m.n_slices(), 0);
    }
}
