//! Seeded large-n federation generator — the PlanetLab-scale workload.
//!
//! The paper's federation story is about *hundreds* of authorities, far
//! past the `2^n` exact solvers. This module fabricates such federations
//! deterministically so the sampled-Shapley path
//! ([`fedval_coalition::shapley_auto_wide`]) has a first-class workload:
//! `fedval-serve --synthetic`, the `bench_pipeline` approx section, and the
//! CI n=200 smoke all build their scenarios here from a `(n, seed)` pair,
//! which pins every downstream byte.
//!
//! Authority sizes follow the skew real PlanetLab exhibits: most sites
//! contribute a handful of nodes, a few contribute big blocks. Location
//! ranges never overlap (each authority owns a contiguous block), so the
//! merged coalition profile is just the concatenation the allocation
//! optimizer expects.

use fedval_core::{Demand, ExperimentClass, Facility, FederationScenario};

/// Smallest location block an authority contributes.
const MIN_LOCATIONS: u32 = 4;

/// SplitMix64 — the same seeded stream discipline as `fedval-serve`'s
/// chaos injector; deterministic and dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw `(locations, capacity)` draw per authority plus the demand
/// threshold — the spec-level form of [`synthetic_federation`], for
/// consumers (like `fedval-serve --synthetic`) that build their own
/// facility objects from location/capacity vectors.
///
/// # Panics
/// Panics if `n == 0` (a federation needs at least one authority).
pub fn synthetic_profile(n: usize, seed: u64) -> (Vec<(u32, u64)>, f64) {
    assert!(n > 0, "need at least one authority");
    let mut rng = seed ^ 0x5CA1_AB1E_F00D_CAFE;
    let mut draws = Vec::with_capacity(n);
    let mut total: u64 = 0;
    for _ in 0..n {
        let roll = splitmix64(&mut rng);
        // 1-in-8 authorities are "large" (up to ~64 locations); the rest
        // draw uniformly from the small range.
        let locations = if roll & 7 == 0 {
            // lint: allow(lossy-cast) — the modulus bounds the value below
            // 48 before the cast; exact.
            MIN_LOCATIONS + 16 + ((roll >> 8) % 48) as u32
        } else {
            // lint: allow(lossy-cast) — bounded below 16 by the modulus.
            MIN_LOCATIONS + ((roll >> 8) % 16) as u32
        };
        let capacity = 1 + (splitmix64(&mut rng) % 4);
        draws.push((locations, capacity));
        total += locations as u64;
    }
    let threshold = (total as f64 * 0.3).floor();
    (draws, threshold)
}

/// Generates a synthetic federation of `n` authorities from `seed`.
///
/// Each authority contributes a contiguous block of locations whose size is
/// drawn from a skewed distribution (mostly [`MIN_LOCATIONS`]..20, with
/// ~1-in-8 "large" authorities up to ~64 — the PlanetLab site-size skew)
/// and a per-location sliver capacity in 1..=4. The demand is a single
/// threshold experiment whose threshold sits at 30% of the federation's
/// total location count, so marginal contributions are genuinely
/// position-dependent: early coalition members are below threshold and
/// contribute nothing, later members tip the coalition over.
///
/// The output is a pure function of `(n, seed)` — same inputs, same
/// facilities, same demand, same downstream Shapley bytes.
///
/// # Panics
/// Panics if `n == 0` (a federation needs at least one authority).
pub fn synthetic_federation(n: usize, seed: u64) -> (Vec<Facility>, Demand) {
    let (draws, threshold) = synthetic_profile(n, seed);
    let mut facilities = Vec::with_capacity(n);
    let mut start: u32 = 0;
    for (i, &(locations, capacity)) in draws.iter().enumerate() {
        facilities.push(Facility::uniform(
            format!("authority-{i}"),
            start,
            locations,
            capacity,
        ));
        start += locations;
    }
    let demand = Demand::one_experiment(ExperimentClass::simple("scale", threshold, 1.0));
    (facilities, demand)
}

/// [`synthetic_federation`] packaged as a ready-to-query
/// [`FederationScenario`].
pub fn synthetic_scenario(n: usize, seed: u64) -> FederationScenario {
    let (facilities, demand) = synthetic_federation(n, seed);
    FederationScenario::new(facilities, demand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_coalition::approx::WideGame;
    use fedval_core::FederationGame;

    #[test]
    fn generator_is_deterministic() {
        let (a, _) = synthetic_federation(50, 7);
        let (b, _) = synthetic_federation(50, 7);
        assert_eq!(a.len(), 50);
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.offer.n_locations(), fb.offer.n_locations());
        }
        // A different seed reshapes the federation.
        let (c, _) = synthetic_federation(50, 8);
        let sizes = |fs: &[Facility]| -> Vec<usize> {
            fs.iter().map(|f| f.offer.n_locations()).collect()
        };
        assert_ne!(sizes(&a), sizes(&c));
    }

    #[test]
    fn n200_federation_is_wide_game_ready() {
        let (facilities, demand) = synthetic_federation(200, 42);
        let game = FederationGame::new(&facilities, &demand);
        assert_eq!(WideGame::n_players(&game), 200);
        // The grand coalition clears the threshold; small prefixes do not.
        let all: Vec<usize> = (0..200).collect();
        assert!(game.value_members(&all) > 0.0);
        assert_eq!(game.value_members(&[0, 1]), 0.0);
        assert_eq!(game.value_members(&[]), 0.0);
    }
}
