//! Sites and nodes — PlanetLab's unit of contribution.
//!
//! A PlanetLab *site* (a university or research institution) contributes at
//! least two *nodes* (servers) at its geographic location; in exchange its
//! users may deploy slices across the whole facility (§1.2 of the paper).

use fedval_core::LocationId;
use serde::{Deserialize, Serialize};

/// One server. `sliver_capacity` is how many concurrent slivers the node
/// hosts with acceptable quality — the admission-control expression of
/// PlanetLab's short-term fair-share scheduling (each of `k` slivers gets a
/// `1/k` share; beyond the cap, shares are too small to be useful).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Maximum concurrent slivers admitted.
    pub sliver_capacity: u64,
}

impl Node {
    /// A node admitting `sliver_capacity` concurrent slivers.
    ///
    /// # Panics
    /// Panics if the capacity is zero.
    pub fn new(sliver_capacity: u64) -> Node {
        assert!(sliver_capacity > 0);
        Node { sliver_capacity }
    }
}

/// A contributing institution: ≥ 2 nodes at one location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Site name, e.g. "upmc" or "princeton".
    pub name: String,
    /// The site's geographic/network location.
    pub location: LocationId,
    /// The contributed nodes (PlanetLab requires at least two).
    pub nodes: Vec<Node>,
}

impl Site {
    /// Creates a site.
    ///
    /// # Panics
    /// Panics if fewer than two nodes are contributed (the PlanetLab
    /// membership requirement).
    pub fn new(name: impl Into<String>, location: LocationId, nodes: Vec<Node>) -> Site {
        assert!(nodes.len() >= 2, "a site must contribute at least 2 nodes");
        Site {
            name: name.into(),
            location,
            nodes,
        }
    }

    /// A site with `n_nodes` identical nodes.
    pub fn uniform(
        name: impl Into<String>,
        location: LocationId,
        n_nodes: usize,
        sliver_capacity: u64,
    ) -> Site {
        Site::new(name, location, vec![Node::new(sliver_capacity); n_nodes])
    }

    /// Total sliver capacity at this site (the site's `R` contribution).
    pub fn total_sliver_capacity(&self) -> u64 {
        self.nodes.iter().map(|n| n.sliver_capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_capacity_sums_nodes() {
        let s = Site::uniform("upmc", 7, 4, 5);
        assert_eq!(s.total_sliver_capacity(), 20);
        assert_eq!(s.location, 7);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_node_sites() {
        let _ = Site::new("tiny", 0, vec![Node::new(1)]);
    }
}
