#![deny(missing_docs)]

//! PlanetLab-style federated testbed simulator.
//!
//! The paper models PlanetLab; this crate *builds* a miniature of it so the
//! economic machinery can run on measured rather than closed-form coalition
//! values:
//!
//! * [`Site`]s contribute ≥ 2 [`Node`]s at a location; nodes admit a
//!   bounded number of concurrent slivers (the admission-control face of
//!   PlanetLab's per-node fair-share scheduling).
//! * [`Authority`] (PLC, PLE, PLJ, …) owns sites and users and projects
//!   onto the economic model as a [`fedval_core::Facility`].
//! * [`Federation`] peers authorities SFA-style: node-registry exchange
//!   (with a compact wire format) and user [`Credential`]s.
//! * [`run_coalition`] replays a slice [`Workload`] against any coalition
//!   of authorities; [`empirical_game`] measures the full characteristic
//!   function, ready for `fedval_coalition::shapley`.
//!
//! ```
//! use fedval_testbed::{synthetic_authority, Federation, Workload, SimConfig, empirical_game};
//! use fedval_coalition::shapley_normalized;
//! use fedval_core::ExperimentClass;
//!
//! let federation = Federation::new(vec![
//!     synthetic_authority("PLC", 0, 6, 2, 2, 100),
//!     synthetic_authority("PLE", 6, 4, 2, 2, 80),
//! ]);
//! let workload = Workload::single(ExperimentClass::simple("exp", 8.0, 1.0), 0.5, 1.0);
//! let game = empirical_game(&federation, &workload, &SimConfig::default());
//! let shares = shapley_normalized(&game);
//! assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

mod authority;
pub mod faults;
mod federation;
mod scale;
mod selection;
mod simulate;
mod slice;
mod site;
mod workload;

pub use authority::{synthetic_authority, Authority};
pub use faults::{Fault, FaultPlan, RetryPolicy};
pub use federation::{Credential, Federation, NodeRecord};
pub use scale::{synthetic_federation, synthetic_profile, synthetic_scenario};
pub use selection::{satisfies_diversity, select, NodeQuery, Selection};
pub use simulate::{
    empirical_game, empirical_game_diagnosed, run_coalition, run_coalition_faulted, Churn,
    FaultedRun, MeasuredGame, SimConfig, SimError, SimReport,
};
pub use site::{Node, Site};
pub use slice::{Slice, SliceError, SliceManager, Sliver};
pub use workload::{ClassLoad, SliceRequest, Workload};
