//! Slice-request workloads: Poisson arrivals of the paper's experiment
//! classes with stochastic holding times.

use fedval_core::ExperimentClass;
use fedval_desim::{Distribution, Exponential, SimRng};

/// Arrival/holding specification for one experiment class.
#[derive(Debug, Clone)]
pub struct ClassLoad {
    /// The experiment class (threshold, shape, r, t).
    pub class: ExperimentClass,
    /// Poisson arrival rate of slice requests of this class.
    pub arrival_rate: f64,
    /// Mean holding time; the class's `holding_time` attribute scaled by
    /// the workload's base duration.
    pub mean_holding: f64,
    /// Owning authority (player index) for the P2P scenario — utility of
    /// this class accrues to that authority's users. `None` models
    /// external customers (the commercial scenario).
    pub owner: Option<usize>,
}

impl ClassLoad {
    /// External-customer load (no owner).
    pub fn external(class: ExperimentClass, arrival_rate: f64, mean_holding: f64) -> ClassLoad {
        ClassLoad {
            class,
            arrival_rate,
            mean_holding,
            owner: None,
        }
    }

    /// Affiliated-user load owned by authority `owner`.
    pub fn owned(
        owner: usize,
        class: ExperimentClass,
        arrival_rate: f64,
        mean_holding: f64,
    ) -> ClassLoad {
        ClassLoad {
            class,
            arrival_rate,
            mean_holding,
            owner: Some(owner),
        }
    }
}

/// A complete workload: a mixture of class loads.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The class loads.
    pub classes: Vec<ClassLoad>,
}

/// One slice request materialized from the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceRequest {
    /// Index into [`Workload::classes`].
    pub class: usize,
    /// Arrival instant.
    pub arrival: f64,
    /// Holding duration.
    pub holding: f64,
}

impl Workload {
    /// Builds a workload from the paper's canonical class mix, with
    /// holding times proportional to each class's `t` attribute:
    /// P2P (t = 0.1), CDN (t = 1), measurement (t = 0.4).
    ///
    /// `base_rate` is the total arrival rate across classes and
    /// `base_holding` the holding time corresponding to `t = 1`.
    pub fn planetlab_mix(base_rate: f64, base_holding: f64) -> Workload {
        assert!(base_rate > 0.0 && base_holding > 0.0);
        let classes = [
            ExperimentClass::p2p(),
            ExperimentClass::cdn(),
            ExperimentClass::measurement(),
        ];
        let per_class_rate = base_rate / classes.len() as f64;
        Workload {
            classes: classes
                .into_iter()
                .map(|class| {
                    let mean_holding = base_holding * class.holding_time;
                    ClassLoad::external(class, per_class_rate, mean_holding)
                })
                .collect(),
        }
    }

    /// A single-class workload (external customers).
    pub fn single(class: ExperimentClass, arrival_rate: f64, mean_holding: f64) -> Workload {
        Workload {
            classes: vec![ClassLoad::external(class, arrival_rate, mean_holding)],
        }
    }

    /// Total offered arrival rate.
    pub fn total_rate(&self) -> f64 {
        self.classes.iter().map(|c| c.arrival_rate).sum()
    }

    /// Materializes all slice requests in `[0, horizon)`, merged across
    /// classes and sorted by arrival time. Holding times are exponential
    /// with each class's mean.
    pub fn generate(&self, horizon: f64, rng: &mut SimRng) -> Vec<SliceRequest> {
        let mut requests = Vec::new();
        for (k, load) in self.classes.iter().enumerate() {
            if load.arrival_rate <= 0.0 {
                continue;
            }
            let gap = Exponential::with_rate(load.arrival_rate);
            let holding = Exponential::with_mean(load.mean_holding);
            let mut t = 0.0;
            loop {
                t += gap.sample(rng);
                if t >= horizon {
                    break;
                }
                requests.push(SliceRequest {
                    class: k,
                    arrival: t,
                    holding: holding.sample(rng),
                });
            }
        }
        // total_cmp: arrivals are cumulative sums of finite exponential
        // gaps, but a total order keeps the sort panic-free regardless.
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planetlab_mix_reflects_paper_holding_times() {
        let w = Workload::planetlab_mix(3.0, 10.0);
        assert_eq!(w.classes.len(), 3);
        assert!((w.total_rate() - 3.0).abs() < 1e-12);
        assert!((w.classes[0].mean_holding - 1.0).abs() < 1e-12); // p2p 0.1
        assert!((w.classes[1].mean_holding - 10.0).abs() < 1e-12); // cdn 1
        assert!((w.classes[2].mean_holding - 4.0).abs() < 1e-12); // meas 0.4
    }

    #[test]
    fn generate_is_sorted_and_bounded() {
        let w = Workload::planetlab_mix(5.0, 1.0);
        let mut rng = SimRng::seed_from(1);
        let reqs = w.generate(100.0, &mut rng);
        assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert!(reqs.iter().all(|r| r.arrival < 100.0 && r.holding > 0.0));
        // Expected count ≈ 500 ± 3σ.
        let n = reqs.len() as f64;
        assert!((n - 500.0).abs() < 3.0 * 500.0f64.sqrt(), "n = {n}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let w = Workload::single(ExperimentClass::p2p(), 2.0, 1.0);
        let a = w.generate(50.0, &mut SimRng::seed_from(7));
        let b = w.generate(50.0, &mut SimRng::seed_from(7));
        assert_eq!(a, b);
    }
}
