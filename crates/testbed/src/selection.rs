//! Property-based resource selection — the paper's MySlice direction.
//!
//! §4.3.2: "We have now initiated changes to the PlanetLab interface to
//! allow users to explicitly select resources on the basis of their
//! properties (geographic location, reliability, etc.)". This module is
//! that interface for the simulated testbed: a small query language over
//! the federated node registry, so experimenters (and the workload
//! generator) can express *which* diversity they want rather than taking
//! whatever the allocator picks.

use crate::federation::{Federation, NodeRecord};
use fedval_core::LocationId;

/// A query over the federated node registry. All set criteria must hold
/// (conjunction); unset criteria match everything.
#[derive(Debug, Clone, Default)]
pub struct NodeQuery {
    /// Restrict to these location ids.
    pub locations: Option<Vec<LocationId>>,
    /// Restrict to a location id range `[lo, hi)` (e.g. "Europe" as an
    /// id block).
    pub location_range: Option<(LocationId, LocationId)>,
    /// Minimum sliver capacity of the node.
    pub min_capacity: Option<u64>,
    /// Restrict to nodes operated by these authorities (by index).
    pub authorities: Option<Vec<u32>>,
    /// Substring match on the owning site's name.
    pub site_contains: Option<String>,
}

impl NodeQuery {
    /// The match-everything query.
    pub fn any() -> NodeQuery {
        NodeQuery::default()
    }

    /// Restricts to a location range (builder style).
    pub fn in_location_range(mut self, lo: LocationId, hi: LocationId) -> NodeQuery {
        self.location_range = Some((lo, hi));
        self
    }

    /// Restricts to specific locations (builder style).
    pub fn at_locations(mut self, locations: Vec<LocationId>) -> NodeQuery {
        self.locations = Some(locations);
        self
    }

    /// Requires at least this much sliver capacity (builder style).
    pub fn with_min_capacity(mut self, min: u64) -> NodeQuery {
        self.min_capacity = Some(min);
        self
    }

    /// Restricts to authorities (builder style).
    pub fn from_authorities(mut self, authorities: Vec<u32>) -> NodeQuery {
        self.authorities = Some(authorities);
        self
    }

    /// Requires the site name to contain `needle` (builder style).
    pub fn with_site_containing(mut self, needle: impl Into<String>) -> NodeQuery {
        self.site_contains = Some(needle.into());
        self
    }

    /// Whether a record matches.
    pub fn matches(&self, record: &NodeRecord) -> bool {
        if let Some(locs) = &self.locations {
            if !locs.contains(&record.location) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.location_range {
            if record.location < lo || record.location >= hi {
                return false;
            }
        }
        if let Some(min) = self.min_capacity {
            if record.sliver_capacity < min {
                return false;
            }
        }
        if let Some(auths) = &self.authorities {
            if !auths.contains(&record.authority) {
                return false;
            }
        }
        if let Some(needle) = &self.site_contains {
            if !record.site.contains(needle.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Result of a selection: matching nodes plus diversity metadata.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The matching node records.
    pub nodes: Vec<NodeRecord>,
    /// Distinct locations among the matches.
    pub distinct_locations: usize,
    /// Total sliver capacity among the matches.
    pub total_capacity: u64,
}

/// Runs a query against the federation's registry.
pub fn select(federation: &Federation, query: &NodeQuery) -> Selection {
    let nodes: Vec<NodeRecord> = federation
        .registry()
        .into_iter()
        .filter(|r| query.matches(r))
        .collect();
    let mut locations: Vec<LocationId> = nodes.iter().map(|r| r.location).collect();
    locations.sort_unstable();
    locations.dedup();
    let total_capacity = nodes.iter().map(|r| r.sliver_capacity).sum();
    Selection {
        distinct_locations: locations.len(),
        total_capacity,
        nodes,
    }
}

/// Whether a selection can host an experiment requiring strictly more
/// than `threshold` distinct locations.
pub fn satisfies_diversity(selection: &Selection, threshold: f64) -> bool {
    selection.distinct_locations as f64 > threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::synthetic_authority;

    fn fed() -> Federation {
        Federation::new(vec![
            synthetic_authority("PLC", 0, 10, 2, 4, 0),
            synthetic_authority("PLE", 10, 6, 2, 8, 0),
        ])
    }

    #[test]
    fn any_query_matches_everything() {
        let f = fed();
        let s = select(&f, &NodeQuery::any());
        assert_eq!(s.nodes.len(), (10 + 6) * 2);
        assert_eq!(s.distinct_locations, 16);
        assert_eq!(s.total_capacity, 10 * 2 * 4 + 6 * 2 * 8);
    }

    #[test]
    fn location_range_selects_a_region() {
        let f = fed();
        // "Europe" is the PLE block 10..16.
        let s = select(&f, &NodeQuery::any().in_location_range(10, 16));
        assert_eq!(s.distinct_locations, 6);
        assert!(s.nodes.iter().all(|r| r.authority == 1));
    }

    #[test]
    fn capacity_filter() {
        let f = fed();
        let s = select(&f, &NodeQuery::any().with_min_capacity(5));
        assert!(s.nodes.iter().all(|r| r.sliver_capacity >= 5));
        assert_eq!(s.nodes.len(), 12); // only PLE's capacity-8 nodes
    }

    #[test]
    fn authority_and_site_filters_compose() {
        let f = fed();
        let q = NodeQuery::any()
            .from_authorities(vec![0])
            .with_site_containing("site-3");
        let s = select(&f, &q);
        assert_eq!(s.distinct_locations, 1);
        assert!(s.nodes.iter().all(|r| r.site == "PLC-site-3"));
    }

    #[test]
    fn explicit_location_list() {
        let f = fed();
        let s = select(&f, &NodeQuery::any().at_locations(vec![0, 11, 99]));
        assert_eq!(s.distinct_locations, 2); // 99 does not exist
    }

    #[test]
    fn diversity_predicate_uses_strict_threshold() {
        let f = fed();
        let s = select(&f, &NodeQuery::any().in_location_range(0, 10));
        assert!(satisfies_diversity(&s, 9.0));
        assert!(!satisfies_diversity(&s, 10.0)); // 10 is not > 10
    }

    #[test]
    fn selection_feeds_feasibility_decisions() {
        // An experimenter wanting > 12 distinct locations of capacity ≥ 5
        // cannot be served: only PLE qualifies and it has 6 locations.
        let f = fed();
        let s = select(&f, &NodeQuery::any().with_min_capacity(5));
        assert!(!satisfies_diversity(&s, 12.0));
        // Relaxing the capacity requirement unlocks the full federation.
        let relaxed = select(&f, &NodeQuery::any());
        assert!(satisfies_diversity(&relaxed, 12.0));
    }
}
