//! Top-level authorities (PLC, PLE, PLJ, …) and their resource view.

use crate::site::Site;
use fedval_core::{Facility, LocationOffer};
use serde::{Deserialize, Serialize};

/// A top-level federation authority: operates sites, vouches for users.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Authority {
    /// Name, e.g. "PLC", "PLE", "PLJ".
    pub name: String,
    /// Sites this authority manages.
    pub sites: Vec<Site>,
    /// Number of affiliated users (researchers).
    pub users: u64,
}

impl Authority {
    /// Creates an authority.
    pub fn new(name: impl Into<String>, sites: Vec<Site>, users: u64) -> Authority {
        Authority {
            name: name.into(),
            sites,
            users,
        }
    }

    /// Number of distinct locations covered (`Lᵢ` in the economic model).
    pub fn n_locations(&self) -> usize {
        let mut locs: Vec<_> = self.sites.iter().map(|s| s.location).collect();
        locs.sort_unstable();
        locs.dedup();
        locs.len()
    }

    /// Total sliver capacity contributed.
    pub fn total_capacity(&self) -> u64 {
        self.sites.iter().map(|s| s.total_sliver_capacity()).sum()
    }

    /// Projects the authority onto the economic model: one [`Facility`]
    /// whose per-location capacity is the summed sliver capacity of the
    /// authority's sites there.
    pub fn as_facility(&self) -> Facility {
        let mut offer = LocationOffer::new();
        for site in &self.sites {
            offer.add(site.location, site.total_sliver_capacity());
        }
        Facility::new(self.name.clone(), offer).with_users(self.users)
    }
}

/// Builds a synthetic authority with `n_sites` uniform sites on contiguous
/// locations starting at `first_location`.
pub fn synthetic_authority(
    name: impl Into<String>,
    first_location: u32,
    n_sites: u32,
    nodes_per_site: usize,
    sliver_capacity: u64,
    users: u64,
) -> Authority {
    let name = name.into();
    let sites = (0..n_sites)
        .map(|i| {
            Site::uniform(
                format!("{name}-site-{i}"),
                first_location + i,
                nodes_per_site,
                sliver_capacity,
            )
        })
        .collect();
    Authority::new(name, sites, users)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_authority_dimensions() {
        let a = synthetic_authority("PLE", 100, 40, 2, 5, 150);
        assert_eq!(a.sites.len(), 40);
        assert_eq!(a.n_locations(), 40);
        assert_eq!(a.total_capacity(), 40 * 2 * 5);
        assert_eq!(a.users, 150);
    }

    #[test]
    fn facility_projection_matches_model() {
        let a = synthetic_authority("PLC", 0, 10, 2, 4, 100);
        let f = a.as_facility();
        assert_eq!(f.n_locations(), 10);
        assert_eq!(f.total_slots(), 80);
        assert_eq!(f.users, 100);
        assert_eq!(f.name, "PLC");
    }

    #[test]
    fn colocated_sites_merge_into_one_location() {
        let a = Authority::new(
            "X",
            vec![Site::uniform("s1", 5, 2, 3), Site::uniform("s2", 5, 2, 3)],
            0,
        );
        assert_eq!(a.n_locations(), 1);
        let f = a.as_facility();
        assert_eq!(f.n_locations(), 1);
        assert_eq!(f.offer.capacity_at(5), 12);
    }
}
