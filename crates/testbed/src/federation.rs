//! The federation layer: authorities peer by exchanging node descriptions
//! and user credentials — a miniature of the Slice-based Federation
//! Architecture (SFA) the paper cites as PlanetLab's federation substrate.

use crate::authority::Authority;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedval_core::Facility;

/// A federation of top-level authorities.
#[derive(Debug, Clone)]
pub struct Federation {
    authorities: Vec<Authority>,
}

/// One entry of the federated node registry (the "node descriptions"
/// exchanged between PLC and PLE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// Index of the owning authority within the federation.
    pub authority: u32,
    /// Site name the node belongs to.
    pub site: String,
    /// Location of the node.
    pub location: u32,
    /// Sliver capacity of the node.
    pub sliver_capacity: u64,
}

/// A user credential vouched for by an authority — the "direct exchange of
/// user credentials" that makes cross-authority slice creation possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// Issuing authority index.
    pub authority: u32,
    /// User id within the authority.
    pub user: u64,
    /// Integrity tag over the payload (toy checksum — stands in for the
    /// signature chain of SFA).
    pub tag: u64,
}

impl Credential {
    /// Issues a credential for `(authority, user)`.
    pub fn issue(authority: u32, user: u64) -> Credential {
        Credential {
            authority,
            user,
            tag: Self::compute_tag(authority, user),
        }
    }

    /// Validates the integrity tag.
    pub fn verify(&self) -> bool {
        self.tag == Self::compute_tag(self.authority, self.user)
    }

    fn compute_tag(authority: u32, user: u64) -> u64 {
        // FNV-1a over the fields; deterministic and dependency-free.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in authority
            .to_le_bytes()
            .into_iter()
            .chain(user.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl Federation {
    /// Forms a federation.
    ///
    /// # Panics
    /// Panics if empty or larger than 64 authorities.
    pub fn new(authorities: Vec<Authority>) -> Federation {
        assert!(!authorities.is_empty());
        assert!(authorities.len() <= 64);
        Federation { authorities }
    }

    /// The member authorities, in player order.
    pub fn authorities(&self) -> &[Authority] {
        &self.authorities
    }

    /// Number of member authorities.
    pub fn len(&self) -> usize {
        self.authorities.len()
    }

    /// Whether the federation has no members (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.authorities.is_empty()
    }

    /// Economic-model view: one [`Facility`] per authority.
    pub fn facilities(&self) -> Vec<Facility> {
        self.authorities.iter().map(|a| a.as_facility()).collect()
    }

    /// The full federated node registry.
    pub fn registry(&self) -> Vec<NodeRecord> {
        let mut out = Vec::new();
        for (ai, a) in self.authorities.iter().enumerate() {
            for site in &a.sites {
                for node in &site.nodes {
                    out.push(NodeRecord {
                        // lint: allow(lossy-cast) — authority count is
                        // config-bounded far below u32::MAX.
                        authority: ai as u32,
                        site: site.name.clone(),
                        location: site.location,
                        sliver_capacity: node.sliver_capacity,
                    });
                }
            }
        }
        out
    }

    /// Serializes the registry into the wire format authorities exchange.
    pub fn encode_registry(&self) -> Bytes {
        let records = self.registry();
        let mut buf = BytesMut::with_capacity(records.len() * 32);
        // lint: allow(lossy-cast) — the wire format caps the registry at
        // u32::MAX records; emulated federations hold a few hundred.
        buf.put_u32(records.len() as u32);
        for r in &records {
            buf.put_u32(r.authority);
            let site = r.site.as_bytes();
            // lint: allow(lossy-cast) — site names come from config and are
            // far shorter than the u16 length prefix allows.
            buf.put_u16(site.len() as u16);
            buf.put_slice(site);
            buf.put_u32(r.location);
            buf.put_u64(r.sliver_capacity);
        }
        buf.freeze()
    }

    /// Parses a registry received from a peer authority.
    ///
    /// Returns `None` on any truncation or malformed field — a peer's data
    /// is untrusted input.
    pub fn decode_registry(mut data: Bytes) -> Option<Vec<NodeRecord>> {
        if data.remaining() < 4 {
            return None;
        }
        let count = data.get_u32() as usize;
        let mut out = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            if data.remaining() < 4 + 2 {
                return None;
            }
            let authority = data.get_u32();
            let site_len = data.get_u16() as usize;
            if data.remaining() < site_len + 4 + 8 {
                return None;
            }
            let site_bytes = data.copy_to_bytes(site_len);
            let site = String::from_utf8(site_bytes.to_vec()).ok()?;
            let location = data.get_u32();
            let sliver_capacity = data.get_u64();
            out.push(NodeRecord {
                authority,
                site,
                location,
                sliver_capacity,
            });
        }
        if data.has_remaining() {
            return None; // trailing garbage
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::synthetic_authority;

    fn toy_federation() -> Federation {
        Federation::new(vec![
            synthetic_authority("PLC", 0, 3, 2, 4, 100),
            synthetic_authority("PLE", 3, 2, 2, 4, 80),
        ])
    }

    #[test]
    fn registry_lists_every_node() {
        let f = toy_federation();
        let reg = f.registry();
        assert_eq!(reg.len(), (3 + 2) * 2);
        assert!(reg.iter().any(|r| r.authority == 1 && r.location == 4));
    }

    #[test]
    fn registry_round_trips_through_wire_format() {
        let f = toy_federation();
        let bytes = f.encode_registry();
        let decoded = Federation::decode_registry(bytes).unwrap();
        assert_eq!(decoded, f.registry());
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let f = toy_federation();
        let bytes = f.encode_registry();
        // Truncated at every prefix length must fail (or equal full parse).
        let truncated = bytes.slice(0..bytes.len() - 3);
        assert!(Federation::decode_registry(truncated).is_none());
        // Trailing garbage must fail.
        let mut with_garbage = BytesMut::from(&bytes[..]);
        with_garbage.put_u8(0xFF);
        assert!(Federation::decode_registry(with_garbage.freeze()).is_none());
        // Empty input must fail.
        assert!(Federation::decode_registry(Bytes::new()).is_none());
    }

    #[test]
    fn credentials_verify_and_detect_tampering() {
        let c = Credential::issue(1, 42);
        assert!(c.verify());
        let mut forged = c.clone();
        forged.user = 43;
        assert!(!forged.verify());
    }

    #[test]
    fn facilities_projection() {
        let f = toy_federation();
        let facs = f.facilities();
        assert_eq!(facs.len(), 2);
        assert_eq!(facs[0].n_locations(), 3);
        assert_eq!(facs[1].total_slots(), 2 * 2 * 4);
    }
}
