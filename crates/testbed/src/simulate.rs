//! The slice-lifecycle simulation and the empirical characteristic
//! function.
//!
//! For a coalition `S` of authorities, the simulator instantiates the
//! nodes of `S`'s sites, replays a workload of slice requests (external
//! customers — the paper's commercial scenario, where demand does not
//! depend on the coalition), and measures the utility delivered:
//! a slice wanting `> l` distinct locations is admitted on the
//! least-loaded node (with `r` free sliver units) of every available
//! location (up to its `l̄`), holds `r` units per node for its holding
//! time, and contributes `u(x)` on admission.
//!
//! Running this for every coalition yields a **measured** coalitional game
//! ([`empirical_game`]) on which the Shapley machinery runs unchanged —
//! the paper's proposed off-line policy-design pipeline, with simulation
//! standing in for the closed-form model.
//!
//! On top of the background [`Churn`] process, a [`FaultPlan`] injects
//! *targeted* failures — node crashes, correlated site outages, permanent
//! authority departures, credential-service outages — through
//! [`run_coalition_faulted`]; [`empirical_game_diagnosed`] measures the
//! whole game under such a plan, substituting conservative fallback values
//! for runs that fail outright and recording what happened per coalition
//! in a [`GameDiagnostics`].

use crate::faults::{Fault, FaultPlan};
use crate::federation::Federation;
use crate::workload::{SliceRequest, Workload};
use fedval_coalition::{
    Coalition, CoalitionDiagnostics, GameDiagnostics, TableGame, ValueSource,
};
use fedval_core::{LocationId, Utility};
use fedval_desim::{ScheduleError, SimRng, Simulator, TimeWeighted};
use std::collections::BTreeMap;
use std::fmt;

/// Node churn parameters: nodes alternate exponentially-distributed up
/// and down periods — the paper's §2.1 *reliability* attribute ("how long
/// it remains available without interruption") made operational.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Mean time between failures (mean up period).
    pub mtbf: f64,
    /// Mean time to repair (mean down period).
    pub mttr: f64,
}

impl Churn {
    /// Long-run node availability `MTBF / (MTBF + MTTR)` — the model's
    /// `Tᵢ` when all of a facility's nodes share the same churn.
    pub fn availability(&self) -> f64 {
        self.mtbf / (self.mtbf + self.mttr)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulated time horizon.
    pub horizon: f64,
    /// Initial span excluded from statistics (transient warm-up).
    pub warmup: f64,
    /// RNG seed (workload and tie-breaking).
    pub seed: u64,
    /// Optional node up/down churn (None = perfectly reliable nodes).
    pub churn: Option<Churn>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: 1000.0,
            warmup: 100.0,
            seed: 42,
            churn: None,
        }
    }
}

/// Why a simulation run could not be carried out.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An event time was unschedulable (NaN, infinite, or in the past) —
    /// typically a malformed workload or fault plan.
    Schedule(ScheduleError),
    /// A fault targeted a node index outside the federation registry.
    UnknownNode {
        /// The offending federation-wide node index.
        node: usize,
        /// Nodes in the federation.
        n_nodes: usize,
    },
    /// A fault targeted an authority outside the federation.
    UnknownAuthority {
        /// The offending authority index.
        authority: usize,
        /// Authorities in the federation.
        n_authorities: usize,
    },
    /// A fault targeted a site index its authority does not have.
    UnknownSite {
        /// The authority the fault targeted.
        authority: usize,
        /// The offending site index.
        site: usize,
        /// Sites that authority actually has.
        n_sites: usize,
    },
    /// A credential outage window has a non-finite start or a non-finite
    /// or negative duration.
    BadCredentialWindow {
        /// Window start.
        at: f64,
        /// Window length.
        duration: f64,
    },
    /// The federation is too large to measure all `2^n` coalitions.
    TooManyAuthorities {
        /// Authorities in the federation.
        n: usize,
        /// Supported maximum.
        max: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Schedule(e) => write!(f, "cannot schedule event: {e}"),
            SimError::UnknownNode { node, n_nodes } => {
                write!(f, "fault targets node {node}, federation has {n_nodes}")
            }
            SimError::UnknownAuthority {
                authority,
                n_authorities,
            } => write!(
                f,
                "fault targets authority {authority}, federation has {n_authorities}"
            ),
            SimError::UnknownSite {
                authority,
                site,
                n_sites,
            } => write!(
                f,
                "fault targets site {site} of authority {authority}, which has {n_sites}"
            ),
            SimError::BadCredentialWindow { at, duration } => {
                write!(f, "credential outage window [{at}, {at}+{duration}) is malformed")
            }
            SimError::TooManyAuthorities { n, max } => {
                write!(f, "{n} authorities exceed the 2^n measurement limit of {max}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> SimError {
        SimError::Schedule(e)
    }
}

/// Measured outcome of one coalition run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total utility delivered after warm-up.
    pub total_utility: f64,
    /// Utility per workload class.
    pub per_class_utility: Vec<f64>,
    /// Admitted slice count per class.
    pub admitted: Vec<u64>,
    /// Blocked slice count per class.
    pub blocked: Vec<u64>,
    /// Sliver-time consumed on each authority's nodes (player-indexed over
    /// the full federation; non-members are zero).
    pub consumption: Vec<f64>,
    /// Mean fraction of the coalition's sliver capacity in use.
    pub mean_utilization: f64,
    /// Sliver placements killed by node failures (after warm-up).
    pub disrupted_slivers: u64,
    /// Utility accrued to each authority's affiliated users (P2P
    /// scenario; classes with `owner: None` accrue to no one here).
    pub per_authority_utility: Vec<f64>,
}

impl SimReport {
    /// Blocking probability per class (`NaN`-free: 0 when no arrivals).
    pub fn blocking_probability(&self, class: usize) -> f64 {
        let total = self.admitted[class] + self.blocked[class];
        if total == 0 {
            0.0
        } else {
            self.blocked[class] as f64 / total as f64
        }
    }
}

/// Outcome of one fault-injected coalition run: the ordinary report plus
/// fault-layer counters.
#[derive(Debug, Clone)]
pub struct FaultedRun {
    /// The measured report (same semantics as [`run_coalition`]).
    pub report: SimReport,
    /// Fault-plan events that applied to this coalition (events targeting
    /// non-members do not count).
    pub faults_injected: u32,
    /// Credential-exchange retries taken during admission control.
    pub credential_retries: u32,
}

struct NodeState {
    authority: usize,
    location: LocationId,
    capacity: u64,
    used: u64,
    up: bool,
    /// Incremented on every failure; stale departures are ignored.
    epoch: u64,
    /// The node's authority left the federation: permanently down.
    departed: bool,
}

enum Event {
    /// Index into the request list.
    Arrival(usize),
    /// Release `r` sliver units on each listed `(node, epoch)`; stale
    /// epochs (the node failed meanwhile) are skipped.
    Departure { nodes: Vec<(usize, u64)>, r: u64 },
    /// A node fails under background churn (killing its slivers) …
    NodeDown(usize),
    /// … and later recovers.
    NodeUp(usize),
    /// An injected fault downs a node (crash or site outage).
    FaultDown(usize),
    /// An injected repair restores a faulted node.
    FaultUp(usize),
    /// The node's authority departs the federation: down for good.
    Depart(usize),
}

/// Runs the slice simulation for the authorities in `coalition`.
///
/// # Panics
/// Panics where [`run_coalition_faulted`] would return an error — with an
/// empty fault plan that is only a malformed workload (non-finite arrival
/// or holding times).
pub fn run_coalition(
    federation: &Federation,
    coalition: Coalition,
    workload: &Workload,
    config: &SimConfig,
) -> SimReport {
    match run_coalition_faulted(federation, coalition, workload, config, &FaultPlan::new()) {
        Ok(run) => run.report,
        // lint: allow(no-panic-path) — documented `# Panics` convenience
        // wrapper; fallible callers use run_coalition_faulted instead.
        Err(e) => panic!("run_coalition: {e}"),
    }
}

/// Runs the slice simulation for `coalition` under an injected
/// [`FaultPlan`], reporting failures as [`SimError`] instead of
/// panicking.
///
/// Fault events targeting authorities or nodes outside the coalition are
/// validated but otherwise ignored, so one plan can be replayed against
/// every coalition. Injected outages compose with background churn: a
/// node is usable only while no failure of either kind holds it down
/// (overlapping repairs may shorten a churn downtime — the windows
/// effectively union).
///
/// # Errors
/// [`SimError::Schedule`] for unschedulable event times, the
/// `Unknown*`/[`SimError::BadCredentialWindow`] variants for fault events
/// referencing nonexistent targets or malformed outage windows.
pub fn run_coalition_faulted(
    federation: &Federation,
    coalition: Coalition,
    workload: &Workload,
    config: &SimConfig,
    plan: &FaultPlan,
) -> Result<FaultedRun, SimError> {
    let _run_span = fedval_obs::span_with("testbed.simulate.run", || {
        format!(
            "mask={} horizon={} seed={}",
            coalition.0, config.horizon, config.seed
        )
    });
    let n_classes = workload.classes.len();
    let mut rng = SimRng::seed_from(config.seed);
    let requests: Vec<SliceRequest> = workload.generate(config.horizon, &mut rng);

    // Instantiate the coalition's nodes, tracking federation-wide node
    // indices (authority-major, site-major — registry order) so fault
    // targets resolve against any coalition.
    let mut nodes: Vec<NodeState> = Vec::new();
    let mut fed_to_local: Vec<Option<usize>> = Vec::new();
    for (ai, authority) in federation.authorities().iter().enumerate() {
        let member = coalition.contains(ai);
        for site in &authority.sites {
            for node in &site.nodes {
                if member {
                    fed_to_local.push(Some(nodes.len()));
                    nodes.push(NodeState {
                        authority: ai,
                        location: site.location,
                        capacity: node.sliver_capacity,
                        used: 0,
                        up: true,
                        epoch: 0,
                        departed: false,
                    });
                } else {
                    fed_to_local.push(None);
                }
            }
        }
    }
    let total_capacity: u64 = nodes.iter().map(|n| n.capacity).sum();

    // Location → node indices.
    let mut by_location: BTreeMap<LocationId, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_location.entry(n.location).or_default().push(i);
    }

    let mut sim: Simulator<Event> = Simulator::new();

    // Injected faults are scheduled first so that at equal timestamps they
    // take effect before arrivals (a departure at t applies to every
    // arrival from t on).
    let faults_injected =
        schedule_faults(&mut sim, federation, coalition, plan, &fed_to_local, &nodes)?;

    for (i, r) in requests.iter().enumerate() {
        sim.try_schedule_at(r.arrival, Event::Arrival(i))?;
    }
    let mut churn_rng = rng.fork();
    if let Some(churn) = config.churn {
        use fedval_desim::{Distribution, Exponential};
        let up = Exponential::with_mean(churn.mtbf);
        for i in 0..nodes.len() {
            sim.try_schedule(up.sample(&mut churn_rng), Event::NodeDown(i))?;
        }
    }

    let mut per_class_utility = vec![0.0; n_classes];
    let mut admitted = vec![0u64; n_classes];
    let mut blocked = vec![0u64; n_classes];
    let mut consumption = vec![0.0; federation.len()];
    let mut per_authority_utility = vec![0.0; federation.len()];
    let mut busy = TimeWeighted::new(0.0, 0.0);
    let mut disrupted = 0u64;
    let mut credential_retries = 0u32;

    while let Some((now, event)) = sim.next_event() {
        if now > config.horizon {
            break; // departures past the horizon cannot affect statistics
        }
        match event {
            Event::Arrival(idx) => {
                let req = requests[idx];
                let class = &workload.classes[req.class].class;
                let r = class.resources_per_location;
                // Credential exchange with each member authority: a
                // transient outage denies an authority's nodes unless a
                // backed-off retry lands after its window clears.
                let mut denied_mask = 0u64;
                if plan.has_credential_outages() {
                    for ai in coalition.players() {
                        if !plan.credential_blocked(ai, now) {
                            continue;
                        }
                        let mut cleared = false;
                        for attempt in 1..=plan.retry.max_retries {
                            credential_retries += 1;
                            let t = plan.retry.attempt_time(now, attempt);
                            if !plan.credential_blocked(ai, t) {
                                cleared = true;
                                break;
                            }
                        }
                        if !cleared {
                            denied_mask |= 1 << ai;
                        }
                    }
                }
                // One node with >= r free sliver units per available
                // location, least-loaded first.
                let mut chosen: Vec<usize> = Vec::new();
                for node_ids in by_location.values() {
                    let free = node_ids
                        .iter()
                        .copied()
                        .filter(|&i| {
                            nodes[i].up
                                && nodes[i].used + r <= nodes[i].capacity
                                && denied_mask & (1 << nodes[i].authority) == 0
                        })
                        .min_by_key(|&i| (nodes[i].used, i));
                    if let Some(i) = free {
                        chosen.push(i);
                    }
                }
                let want = class.max_size(chosen.len() as u64);
                if (want as f64) <= class.utility.threshold {
                    // Not enough distinct locations: blocked.
                    if now >= config.warmup {
                        blocked[req.class] += 1;
                    }
                    continue;
                }
                // Prefer the least-loaded locations when trimming to l̄.
                chosen.sort_by_key(|&i| (nodes[i].used * 1000) / nodes[i].capacity.max(1));
                chosen.truncate(want as usize);
                for &i in &chosen {
                    nodes[i].used += r;
                }
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
                if now >= config.warmup {
                    admitted[req.class] += 1;
                    let u = class.utility.eval(want as f64);
                    per_class_utility[req.class] += u;
                    if let Some(owner) = workload.classes[req.class].owner {
                        if owner < per_authority_utility.len() {
                            per_authority_utility[owner] += u;
                        }
                    }
                    for &i in &chosen {
                        consumption[nodes[i].authority] += r as f64 * req.holding;
                    }
                }
                let held: Vec<(usize, u64)> = chosen.iter().map(|&i| (i, nodes[i].epoch)).collect();
                sim.try_schedule_at(now + req.holding, Event::Departure { nodes: held, r })?;
            }
            Event::Departure { nodes: held, r } => {
                for &(i, epoch) in &held {
                    if nodes[i].epoch == epoch {
                        debug_assert!(nodes[i].used >= r);
                        nodes[i].used -= r;
                    }
                }
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
            }
            Event::NodeDown(i) => {
                if nodes[i].departed {
                    continue; // the churn chain dies with the authority
                }
                if now >= config.warmup {
                    disrupted += nodes[i].used;
                }
                nodes[i].up = false;
                nodes[i].used = 0;
                nodes[i].epoch += 1;
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
                if let Some(churn) = config.churn {
                    use fedval_desim::{Distribution, Exponential};
                    let down = Exponential::with_mean(churn.mttr);
                    sim.try_schedule_at(now + down.sample(&mut churn_rng), Event::NodeUp(i))?;
                }
            }
            Event::NodeUp(i) => {
                if nodes[i].departed {
                    continue;
                }
                nodes[i].up = true;
                if let Some(churn) = config.churn {
                    use fedval_desim::{Distribution, Exponential};
                    let up = Exponential::with_mean(churn.mtbf);
                    sim.try_schedule_at(now + up.sample(&mut churn_rng), Event::NodeDown(i))?;
                }
            }
            Event::FaultDown(i) => {
                if nodes[i].departed {
                    continue;
                }
                if now >= config.warmup {
                    disrupted += nodes[i].used;
                }
                nodes[i].up = false;
                nodes[i].used = 0;
                nodes[i].epoch += 1;
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
            }
            Event::FaultUp(i) => {
                if !nodes[i].departed {
                    nodes[i].up = true;
                }
            }
            Event::Depart(i) => {
                if now >= config.warmup {
                    disrupted += nodes[i].used;
                }
                nodes[i].departed = true;
                nodes[i].up = false;
                nodes[i].used = 0;
                nodes[i].epoch += 1;
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
            }
        }
    }

    let mean_utilization = if total_capacity == 0 {
        0.0
    } else {
        busy.mean(config.horizon) / total_capacity as f64
    };

    // Counters are aggregated locally during the event loop and reported
    // once per run, so the loop itself emits no records.
    if fedval_obs::is_enabled() {
        fedval_obs::counter_add("testbed.simulate.runs", 1);
        fedval_obs::counter_add("testbed.simulate.requests", requests.len() as u64);
        fedval_obs::counter_add("testbed.simulate.admitted", admitted.iter().sum());
        fedval_obs::counter_add("testbed.simulate.blocked", blocked.iter().sum());
        fedval_obs::counter_add("testbed.simulate.disrupted_slivers", disrupted);
        fedval_obs::counter_add("testbed.simulate.faults_injected", u64::from(faults_injected));
        fedval_obs::counter_add(
            "testbed.simulate.credential_retries",
            u64::from(credential_retries),
        );
    }

    Ok(FaultedRun {
        report: SimReport {
            total_utility: per_class_utility.iter().sum(),
            per_class_utility,
            admitted,
            blocked,
            consumption,
            mean_utilization,
            disrupted_slivers: disrupted,
            per_authority_utility,
        },
        faults_injected,
        credential_retries,
    })
}

/// Validates the plan against the federation and schedules the events
/// that apply to this coalition. Returns how many plan entries applied.
fn schedule_faults(
    sim: &mut Simulator<Event>,
    federation: &Federation,
    coalition: Coalition,
    plan: &FaultPlan,
    fed_to_local: &[Option<usize>],
    nodes: &[NodeState],
) -> Result<u32, SimError> {
    let n_authorities = federation.len();
    let check_authority = |authority: usize| -> Result<(), SimError> {
        if authority >= n_authorities {
            return Err(SimError::UnknownAuthority {
                authority,
                n_authorities,
            });
        }
        Ok(())
    };
    let mut applied = 0u32;
    for fault in plan.events() {
        let applied_before = applied;
        match *fault {
            Fault::NodeCrash {
                node,
                at,
                repair_after,
            } => {
                if node >= fed_to_local.len() {
                    return Err(SimError::UnknownNode {
                        node,
                        n_nodes: fed_to_local.len(),
                    });
                }
                if let Some(li) = fed_to_local[node] {
                    sim.try_schedule_at(at, Event::FaultDown(li))?;
                    if let Some(after) = repair_after {
                        sim.try_schedule_at(at + after, Event::FaultUp(li))?;
                    }
                    applied += 1;
                }
            }
            Fault::SiteOutage {
                authority,
                site,
                at,
                duration,
            } => {
                check_authority(authority)?;
                let sites = &federation.authorities()[authority].sites;
                if site >= sites.len() {
                    return Err(SimError::UnknownSite {
                        authority,
                        site,
                        n_sites: sites.len(),
                    });
                }
                if coalition.contains(authority) {
                    let location = sites[site].location;
                    for (li, n) in nodes.iter().enumerate() {
                        if n.authority == authority && n.location == location {
                            sim.try_schedule_at(at, Event::FaultDown(li))?;
                            sim.try_schedule_at(at + duration, Event::FaultUp(li))?;
                        }
                    }
                    applied += 1;
                }
            }
            Fault::AuthorityDeparture { authority, at } => {
                check_authority(authority)?;
                if coalition.contains(authority) {
                    for (li, n) in nodes.iter().enumerate() {
                        if n.authority == authority {
                            sim.try_schedule_at(at, Event::Depart(li))?;
                        }
                    }
                    applied += 1;
                }
            }
            Fault::CredentialOutage {
                authority,
                at,
                duration,
            } => {
                check_authority(authority)?;
                if !at.is_finite() || !duration.is_finite() || duration < 0.0 {
                    return Err(SimError::BadCredentialWindow { at, duration });
                }
                if coalition.contains(authority) {
                    applied += 1;
                }
            }
        }
        if applied > applied_before {
            fedval_obs::event("testbed.faults.apply", || fault.obs_fields());
        }
    }
    Ok(applied)
}

/// Measures the full characteristic function by simulation: one run per
/// coalition, identical workload (same seed) across coalitions.
///
/// # Panics
/// Panics when the federation exceeds 16 authorities (`2^n` runs).
pub fn empirical_game(
    federation: &Federation,
    workload: &Workload,
    config: &SimConfig,
) -> TableGame {
    match empirical_game_diagnosed(federation, workload, config, &FaultPlan::new()) {
        Ok(measured) => measured.game,
        // lint: allow(no-panic-path) — documented `# Panics` convenience
        // wrapper; fallible callers use empirical_game_diagnosed instead.
        Err(e) => panic!("empirical_game: {e}"),
    }
}

/// An empirically measured game together with per-coalition provenance.
#[derive(Debug, Clone)]
pub struct MeasuredGame {
    /// The characteristic-function table (fallback values included).
    pub game: TableGame,
    /// What happened while measuring each coalition.
    pub diagnostics: GameDiagnostics,
}

/// Measures the characteristic function under a [`FaultPlan`], degrading
/// gracefully instead of failing outright.
///
/// Coalitions are visited in ascending mask order. When a run fails — an
/// unschedulable fault time, a malformed workload, a non-finite measured
/// utility — the coalition is assigned a conservative fallback: the best
/// superadditive two-part cover `v(T) + v(S∖T)` over proper non-empty
/// subsets `T ⊂ S` (whose values, measured or themselves fallbacks, are
/// already known), or zero for singletons. Every substitution is recorded
/// in the returned [`GameDiagnostics`].
///
/// Only a federation too large to enumerate is a hard error.
///
/// # Errors
/// Only [`SimError::TooManyAuthorities`]: per-coalition failures degrade
/// to recorded fallbacks rather than erroring.
pub fn empirical_game_diagnosed(
    federation: &Federation,
    workload: &Workload,
    config: &SimConfig,
    plan: &FaultPlan,
) -> Result<MeasuredGame, SimError> {
    const MAX_PLAYERS: usize = 16;
    let n = federation.len();
    if n > MAX_PLAYERS {
        return Err(SimError::TooManyAuthorities { n, max: MAX_PLAYERS });
    }
    let size = 1usize << n;
    let _game_span = fedval_obs::span_with("testbed.empirical.game", || {
        format!("n={n} coalitions={size}")
    });
    let mut values = vec![0.0_f64; size];
    let mut per_coalition: Vec<CoalitionDiagnostics> = Vec::with_capacity(size);
    for mask in 0..size as u64 {
        let c = Coalition(mask);
        if c.is_empty() {
            per_coalition.push(CoalitionDiagnostics::clean(c));
            continue;
        }
        match run_coalition_faulted(federation, c, workload, config, plan) {
            Ok(run) if run.report.total_utility.is_finite() => {
                values[c.index()] = run.report.total_utility;
                let diag = CoalitionDiagnostics {
                    coalition: c,
                    source: ValueSource::Measured,
                    faults_injected: run.faults_injected,
                    credential_retries: run.credential_retries,
                    error: None,
                };
                // Only disturbed measurements are worth a trace event;
                // clean coalitions would flood the trace with 2^n lines
                // saying "nothing happened".
                if diag.faults_injected > 0 || diag.credential_retries > 0 {
                    fedval_obs::event("testbed.empirical.coalition", || diag.obs_fields());
                }
                per_coalition.push(diag);
            }
            outcome => {
                let why = match outcome {
                    Err(e) => e.to_string(),
                    Ok(_) => "non-finite measured utility".to_string(),
                };
                let (value, source) = conservative_fallback(c, &values);
                values[c.index()] = value;
                let diag = CoalitionDiagnostics {
                    coalition: c,
                    source,
                    faults_injected: 0,
                    credential_retries: 0,
                    error: Some(why),
                };
                fedval_obs::counter_add("testbed.empirical.fallbacks", 1);
                fedval_obs::event("testbed.empirical.coalition", || diag.obs_fields());
                per_coalition.push(diag);
            }
        }
    }
    let diagnostics = GameDiagnostics { per_coalition };
    fedval_obs::event("testbed.empirical.game", || {
        vec![
            ("coalitions".to_string(), size.to_string()),
            (
                "fallbacks".to_string(),
                diagnostics.fallbacks_used().to_string(),
            ),
            (
                "faults_injected".to_string(),
                diagnostics.total_faults_injected().to_string(),
            ),
            (
                "credential_retries".to_string(),
                diagnostics.total_credential_retries().to_string(),
            ),
        ]
    });
    Ok(MeasuredGame {
        game: TableGame::from_values(n, values),
        diagnostics,
    })
}

/// The best superadditive two-part cover of `c` from already-known values
/// (ascending-mask order guarantees every proper subset is filled in).
fn conservative_fallback(c: Coalition, values: &[f64]) -> (f64, ValueSource) {
    let mut best = 0.0;
    let mut source = ValueSource::ZeroFallback;
    for t in c.subsets() {
        if t.is_empty() || t == c {
            continue;
        }
        let v = values[t.index()] + values[c.difference(t).index()];
        if v > best {
            best = v;
            source = ValueSource::SubCoalitionFallback(t);
        }
    }
    (best, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use fedval_coalition::CoalitionalGame;
    use fedval_core::ExperimentClass;

    fn small_federation() -> Federation {
        Federation::new(vec![
            synthetic_authority("PLC", 0, 6, 2, 2, 100),
            synthetic_authority("PLE", 6, 4, 2, 2, 80),
        ])
    }

    fn config() -> SimConfig {
        SimConfig {
            horizon: 300.0,
            warmup: 30.0,
            seed: 7,
            churn: None,
        }
    }

    #[test]
    fn diversity_threshold_blocks_small_coalitions() {
        // Class needs > 8 locations; PLC alone has 6, PLE alone 4 —
        // only the federation (10) can serve.
        let fed = small_federation();
        let wl = Workload::single(ExperimentClass::simple("big", 8.0, 1.0), 0.5, 1.0);
        let alone = run_coalition(&fed, Coalition::singleton(0), &wl, &config());
        assert_eq!(alone.total_utility, 0.0);
        assert!(alone.blocked.iter().sum::<u64>() > 0);
        let together = run_coalition(&fed, Coalition::grand(2), &wl, &config());
        assert!(together.total_utility > 0.0);
    }

    #[test]
    fn empirical_game_is_monotone_ish_and_zero_on_empty() {
        let fed = small_federation();
        let wl = Workload::single(ExperimentClass::simple("small", 2.0, 1.0), 1.0, 0.5);
        let game = empirical_game(&fed, &wl, &config());
        assert_eq!(game.value(Coalition::EMPTY), 0.0);
        let v1 = game.value(Coalition::singleton(0));
        let vn = game.value(Coalition::grand(2));
        assert!(vn >= v1, "federation at least as valuable: {vn} vs {v1}");
    }

    #[test]
    fn same_seed_same_results() {
        let fed = small_federation();
        let wl = Workload::planetlab_mix(1.0, 1.0);
        let cfg = config();
        let a = run_coalition(&fed, Coalition::grand(2), &wl, &cfg);
        let b = run_coalition(&fed, Coalition::grand(2), &wl, &cfg);
        assert_eq!(a.total_utility, b.total_utility);
        assert_eq!(a.admitted, b.admitted);
    }

    #[test]
    fn consumption_tracks_members_only() {
        let fed = small_federation();
        let wl = Workload::single(ExperimentClass::simple("c", 1.0, 1.0), 1.0, 0.5);
        let r = run_coalition(&fed, Coalition::singleton(1), &wl, &config());
        assert_eq!(r.consumption[0], 0.0, "non-member consumed nothing");
        assert!(r.consumption[1] > 0.0);
    }

    #[test]
    fn utilization_and_blocking_bounds() {
        let fed = small_federation();
        // Overload: high arrival rate, long holding.
        let wl = Workload::single(ExperimentClass::simple("c", 1.0, 1.0), 20.0, 5.0);
        let r = run_coalition(&fed, Coalition::grand(2), &wl, &config());
        assert!(r.mean_utilization > 0.3 && r.mean_utilization <= 1.0);
        assert!(r.blocking_probability(0) > 0.0);
        assert!(r.blocking_probability(0) <= 1.0);
    }
}

#[cfg(test)]
mod resource_tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use crate::workload::ClassLoad;
    use fedval_core::ExperimentClass;

    #[test]
    fn resource_hungry_class_consumes_r_slivers_per_node() {
        // One authority, nodes of capacity 4; a class with r = 4 fills a
        // node with a single sliver, so at most one such slice fits per
        // node at a time.
        let fed = Federation::new(vec![synthetic_authority("A", 0, 3, 2, 4, 0)]);
        let wl = Workload::single(
            ExperimentClass::simple("cdn", 0.0, 1.0).with_resources(4),
            4.0,
            1.0,
        );
        let cfg = SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            seed: 3,
            churn: None,
        };
        let r = run_coalition(&fed, Coalition::grand(1), &wl, &cfg);
        // Capacity: 6 nodes × 4 units = 24 units; each slice takes up to
        // 3 locations × 4 units = 12 ⇒ heavy blocking at load 4 Erlang.
        assert!(r.blocking_probability(0) > 0.1);
        assert!(r.mean_utilization > 0.2);
    }

    #[test]
    fn heavy_class_is_blocked_before_light_class() {
        // Same arrival pattern, one light (r=1) and one heavy (r=3) class
        // competing on capacity-3 nodes: the heavy class needs a fully
        // free node per location and blocks more.
        let fed = Federation::new(vec![synthetic_authority("A", 0, 4, 2, 3, 0)]);
        let wl = Workload {
            classes: vec![
                ClassLoad::external(
                ExperimentClass::simple("light", 1.0, 1.0),
                3.0,
                1.0,
            ),
                ClassLoad::external(
                ExperimentClass::simple("heavy", 1.0, 1.0).with_resources(3),
                3.0,
                1.0,
            ),
            ],
        };
        let cfg = SimConfig {
            horizon: 600.0,
            warmup: 60.0,
            seed: 13,
            churn: None,
        };
        let r = run_coalition(&fed, Coalition::grand(1), &wl, &cfg);
        assert!(
            r.blocking_probability(1) > r.blocking_probability(0),
            "heavy {} vs light {}",
            r.blocking_probability(1),
            r.blocking_probability(0)
        );
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use fedval_core::ExperimentClass;

    fn fed() -> Federation {
        Federation::new(vec![synthetic_authority("A", 0, 6, 2, 2, 0)])
    }

    fn config(churn: Option<Churn>) -> SimConfig {
        SimConfig {
            horizon: 2000.0,
            warmup: 200.0,
            seed: 9,
            churn,
        }
    }

    #[test]
    fn churn_availability_formula() {
        let c = Churn {
            mtbf: 9.0,
            mttr: 1.0,
        };
        assert!((c.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn churn_reduces_delivered_utility() {
        let wl = Workload::single(ExperimentClass::simple("e", 2.0, 1.0), 2.0, 1.0);
        let reliable = run_coalition(&fed(), Coalition::grand(1), &wl, &config(None));
        let flaky = run_coalition(
            &fed(),
            Coalition::grand(1),
            &wl,
            &config(Some(Churn {
                mtbf: 5.0,
                mttr: 5.0, // 50% availability
            })),
        );
        assert!(flaky.total_utility < reliable.total_utility);
        assert!(flaky.disrupted_slivers > 0);
        assert_eq!(reliable.disrupted_slivers, 0);
    }

    #[test]
    fn mild_churn_is_mild() {
        let wl = Workload::single(ExperimentClass::simple("e", 2.0, 1.0), 1.0, 0.5);
        let reliable = run_coalition(&fed(), Coalition::grand(1), &wl, &config(None));
        let mild = run_coalition(
            &fed(),
            Coalition::grand(1),
            &wl,
            &config(Some(Churn {
                mtbf: 1000.0,
                mttr: 0.1,
            })),
        );
        // ~99.99% availability: utility within a few percent.
        let ratio = mild.total_utility / reliable.total_utility;
        assert!(ratio > 0.95, "ratio = {ratio}");
    }

    #[test]
    fn churn_runs_are_reproducible() {
        let wl = Workload::single(ExperimentClass::simple("e", 2.0, 1.0), 2.0, 1.0);
        let cfg = config(Some(Churn {
            mtbf: 10.0,
            mttr: 2.0,
        }));
        let a = run_coalition(&fed(), Coalition::grand(1), &wl, &cfg);
        let b = run_coalition(&fed(), Coalition::grand(1), &wl, &cfg);
        assert_eq!(a.total_utility, b.total_utility);
        assert_eq!(a.disrupted_slivers, b.disrupted_slivers);
    }
}

#[cfg(test)]
mod p2p_measured_tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use crate::workload::ClassLoad;
    use fedval_core::ExperimentClass;

    #[test]
    fn owned_classes_attribute_utility_to_their_authority() {
        // Authority 0's users run wide experiments only the federation can
        // host: the measured P2P route shows federation unblocking them.
        let fed = Federation::new(vec![
            synthetic_authority("A", 0, 4, 2, 2, 50),
            synthetic_authority("B", 4, 4, 2, 2, 50),
        ]);
        let wl = Workload {
            classes: vec![
                ClassLoad::owned(0, ExperimentClass::simple("wide", 6.0, 1.0), 0.8, 0.5),
                ClassLoad::owned(1, ExperimentClass::simple("small", 2.0, 1.0), 0.8, 0.5),
            ],
        };
        let cfg = SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            seed: 3,
            churn: None,
        };
        // A alone: 4 locations < 7 needed ⇒ its users get nothing.
        let alone = run_coalition(&fed, Coalition::singleton(0), &wl, &cfg);
        assert_eq!(alone.per_authority_utility[0], 0.0);
        // Federated: A's users are served.
        let grand = run_coalition(&fed, Coalition::grand(2), &wl, &cfg);
        assert!(grand.per_authority_utility[0] > 0.0);
        assert!(grand.per_authority_utility[1] > 0.0);
        // Per-authority utilities add up to total for fully-owned loads.
        let sum: f64 = grand.per_authority_utility.iter().sum();
        assert!((sum - grand.total_utility).abs() < 1e-9);
    }

    #[test]
    fn external_classes_accrue_to_no_authority() {
        let fed = Federation::new(vec![synthetic_authority("A", 0, 4, 2, 2, 0)]);
        let wl = Workload::single(ExperimentClass::simple("e", 1.0, 1.0), 1.0, 0.5);
        let cfg = SimConfig {
            horizon: 200.0,
            warmup: 20.0,
            seed: 5,
            churn: None,
        };
        let r = run_coalition(&fed, Coalition::grand(1), &wl, &cfg);
        assert!(r.total_utility > 0.0);
        assert_eq!(r.per_authority_utility[0], 0.0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use fedval_core::ExperimentClass;

    fn fed() -> Federation {
        Federation::new(vec![
            synthetic_authority("A", 0, 4, 2, 2, 0),
            synthetic_authority("B", 4, 4, 2, 2, 0),
        ])
    }

    fn cfg() -> SimConfig {
        SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            seed: 11,
            churn: None,
        }
    }

    fn wl() -> Workload {
        Workload::single(ExperimentClass::simple("e", 2.0, 1.0), 2.0, 1.0)
    }

    #[test]
    fn empty_plan_matches_plain_run() {
        let plain = run_coalition(&fed(), Coalition::grand(2), &wl(), &cfg());
        let faulted =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &FaultPlan::new())
                .unwrap();
        assert_eq!(plain.total_utility, faulted.report.total_utility);
        assert_eq!(faulted.faults_injected, 0);
        assert_eq!(faulted.credential_retries, 0);
    }

    #[test]
    fn crashing_every_node_forever_kills_all_utility() {
        let mut plan = FaultPlan::new();
        for node in 0..16 {
            plan = plan.node_crash(node, 0.0, None);
        }
        let run =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &plan).unwrap();
        assert_eq!(run.report.total_utility, 0.0);
        assert_eq!(run.faults_injected, 16);
    }

    #[test]
    fn site_outage_costs_utility_and_is_reproducible() {
        let clean =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &FaultPlan::new())
                .unwrap();
        // Down one site of each authority for most of the trace.
        let plan = FaultPlan::new()
            .site_outage(0, 0, 50.0, 300.0)
            .site_outage(1, 1, 50.0, 300.0);
        let a = run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &plan).unwrap();
        let b = run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &plan).unwrap();
        assert_eq!(a.report.total_utility, b.report.total_utility);
        assert!(a.report.total_utility < clean.report.total_utility);
        assert_eq!(a.faults_injected, 2);
        // Outage events targeting non-members do not apply.
        let solo =
            run_coalition_faulted(&fed(), Coalition::singleton(0), &wl(), &cfg(), &plan).unwrap();
        assert_eq!(solo.faults_injected, 1);
    }

    #[test]
    fn departure_at_time_zero_equals_absent_authority() {
        // An authority departing before the first arrival contributes
        // nothing: the run must measure exactly the value of the
        // coalition without it.
        let plan = FaultPlan::new().authority_departure(1, 0.0);
        let departed =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &plan).unwrap();
        let without = run_coalition(&fed(), Coalition::singleton(0), &wl(), &cfg());
        assert_eq!(departed.report.total_utility, without.total_utility);
        assert_eq!(departed.report.admitted, without.admitted);
    }

    #[test]
    fn mid_trace_departure_downs_nodes_for_good() {
        let plan = FaultPlan::new().authority_departure(1, 100.0);
        let cfg = SimConfig {
            churn: Some(Churn {
                mtbf: 50.0,
                mttr: 1.0,
            }),
            ..cfg()
        };
        let departed =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg, &plan).unwrap();
        let clean =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg, &FaultPlan::new())
                .unwrap();
        // Losing half the nodes (and their locations) costs utility even
        // with churn repairs racing the departure.
        assert!(departed.report.total_utility < clean.report.total_utility);
        // Consumption on the departed authority's nodes stops at 100 + max
        // holding, well below the clean run's.
        assert!(departed.report.consumption[1] < clean.report.consumption[1]);
    }

    #[test]
    fn credential_outage_denies_unless_retries_clear_it() {
        // Authority 1 unreachable for the whole trace, no retries: its
        // locations are unusable, so wide slices see only authority 0.
        let stubborn = FaultPlan::new()
            .credential_outage(1, 0.0, 1e9)
            .retry_policy(0, 1.0);
        let denied =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &stubborn).unwrap();
        let without = run_coalition(&fed(), Coalition::singleton(0), &wl(), &cfg());
        assert_eq!(denied.report.total_utility, without.total_utility);
        assert_eq!(denied.credential_retries, 0);

        // A short outage with backoff reaching past it: every admission
        // inside the window retries its way through, nothing is lost.
        let transient = FaultPlan::new()
            .credential_outage(1, 50.0, 3.0)
            .retry_policy(3, 2.0); // retries at +2, +4, +8 — past any point of the window
        let retried =
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &transient).unwrap();
        let clean = run_coalition(&fed(), Coalition::grand(2), &wl(), &cfg());
        assert_eq!(retried.report.total_utility, clean.total_utility);
        assert!(retried.credential_retries > 0);
    }

    #[test]
    fn invalid_plans_are_reported_not_panicked() {
        let bad_node = FaultPlan::new().node_crash(999, 1.0, None);
        assert_eq!(
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &bad_node).err(),
            Some(SimError::UnknownNode {
                node: 999,
                n_nodes: 16
            })
        );
        let bad_site = FaultPlan::new().site_outage(0, 7, 1.0, 1.0);
        assert!(matches!(
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &bad_site),
            Err(SimError::UnknownSite { site: 7, .. })
        ));
        let bad_time = FaultPlan::new().node_crash(0, f64::NAN, None);
        assert!(matches!(
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &bad_time),
            Err(SimError::Schedule(_))
        ));
        let bad_window = FaultPlan::new().credential_outage(0, 0.0, -1.0);
        assert!(matches!(
            run_coalition_faulted(&fed(), Coalition::grand(2), &wl(), &cfg(), &bad_window),
            Err(SimError::BadCredentialWindow { .. })
        ));
    }

    #[test]
    fn diagnosed_game_with_clean_plan_is_clean() {
        let measured =
            empirical_game_diagnosed(&fed(), &wl(), &cfg(), &FaultPlan::new()).unwrap();
        assert!(measured.diagnostics.is_clean());
        let plain = empirical_game(&fed(), &wl(), &cfg());
        for c in Coalition::all(2) {
            use fedval_coalition::CoalitionalGame;
            assert_eq!(measured.game.value(c), plain.value(c));
        }
    }

    #[test]
    fn degraded_game_falls_back_conservatively() {
        // A crash with an unschedulable (NaN) time targets a node of
        // authority 0: every coalition containing 0 fails to simulate and
        // must fall back; coalitions without 0 measure normally.
        use fedval_coalition::CoalitionalGame;
        let poison = FaultPlan::new().node_crash(0, f64::NAN, None);
        let measured = empirical_game_diagnosed(&fed(), &wl(), &cfg(), &poison).unwrap();
        let d = &measured.diagnostics;
        assert_eq!(d.fallbacks_used(), 2); // {0} and {0,1}
        let solo = d.get(Coalition::singleton(0)).unwrap();
        assert_eq!(solo.source, ValueSource::ZeroFallback);
        assert!(solo.error.is_some());
        // {0,1} falls back to the measured v({1}) via the 2-part cover.
        let grand = d.get(Coalition::grand(2)).unwrap();
        assert!(grand.source.is_fallback());
        let v1 = measured.game.value(Coalition::singleton(1));
        assert!(v1 > 0.0, "authority 1 measures normally");
        assert_eq!(measured.game.value(Coalition::grand(2)), v1);
        // All values remain finite.
        for c in Coalition::all(2) {
            assert!(measured.game.value(c).is_finite());
        }
    }

    #[test]
    fn oversize_federation_is_a_hard_error() {
        let authorities: Vec<_> = (0..17)
            .map(|i| synthetic_authority("X", i * 2, 2, 2, 1, 0))
            .collect();
        let fed = Federation::new(authorities);
        assert_eq!(
            empirical_game_diagnosed(&fed, &wl(), &cfg(), &FaultPlan::new()).err(),
            Some(SimError::TooManyAuthorities { n: 17, max: 16 })
        );
    }
}
