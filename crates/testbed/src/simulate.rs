//! The slice-lifecycle simulation and the empirical characteristic
//! function.
//!
//! For a coalition `S` of authorities, the simulator instantiates the
//! nodes of `S`'s sites, replays a workload of slice requests (external
//! customers — the paper's commercial scenario, where demand does not
//! depend on the coalition), and measures the utility delivered:
//! a slice wanting `> l` distinct locations is admitted on the
//! least-loaded node (with `r` free sliver units) of every available
//! location (up to its `l̄`), holds `r` units per node for its holding
//! time, and contributes `u(x)` on admission.
//!
//! Running this for every coalition yields a **measured** coalitional game
//! ([`empirical_game`]) on which the Shapley machinery runs unchanged —
//! the paper's proposed off-line policy-design pipeline, with simulation
//! standing in for the closed-form model.

use crate::federation::Federation;
use crate::workload::{SliceRequest, Workload};
use fedval_coalition::{Coalition, TableGame};
use fedval_core::{LocationId, Utility};
use fedval_desim::{SimRng, Simulator, TimeWeighted};
use std::collections::BTreeMap;

/// Node churn parameters: nodes alternate exponentially-distributed up
/// and down periods — the paper's §2.1 *reliability* attribute ("how long
/// it remains available without interruption") made operational.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Mean time between failures (mean up period).
    pub mtbf: f64,
    /// Mean time to repair (mean down period).
    pub mttr: f64,
}

impl Churn {
    /// Long-run node availability `MTBF / (MTBF + MTTR)` — the model's
    /// `Tᵢ` when all of a facility's nodes share the same churn.
    pub fn availability(&self) -> f64 {
        self.mtbf / (self.mtbf + self.mttr)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulated time horizon.
    pub horizon: f64,
    /// Initial span excluded from statistics (transient warm-up).
    pub warmup: f64,
    /// RNG seed (workload and tie-breaking).
    pub seed: u64,
    /// Optional node up/down churn (None = perfectly reliable nodes).
    pub churn: Option<Churn>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: 1000.0,
            warmup: 100.0,
            seed: 42,
            churn: None,
        }
    }
}

/// Measured outcome of one coalition run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total utility delivered after warm-up.
    pub total_utility: f64,
    /// Utility per workload class.
    pub per_class_utility: Vec<f64>,
    /// Admitted slice count per class.
    pub admitted: Vec<u64>,
    /// Blocked slice count per class.
    pub blocked: Vec<u64>,
    /// Sliver-time consumed on each authority's nodes (player-indexed over
    /// the full federation; non-members are zero).
    pub consumption: Vec<f64>,
    /// Mean fraction of the coalition's sliver capacity in use.
    pub mean_utilization: f64,
    /// Sliver placements killed by node failures (after warm-up).
    pub disrupted_slivers: u64,
    /// Utility accrued to each authority's affiliated users (P2P
    /// scenario; classes with `owner: None` accrue to no one here).
    pub per_authority_utility: Vec<f64>,
}

impl SimReport {
    /// Blocking probability per class (`NaN`-free: 0 when no arrivals).
    pub fn blocking_probability(&self, class: usize) -> f64 {
        let total = self.admitted[class] + self.blocked[class];
        if total == 0 {
            0.0
        } else {
            self.blocked[class] as f64 / total as f64
        }
    }
}

struct NodeState {
    authority: usize,
    location: LocationId,
    capacity: u64,
    used: u64,
    up: bool,
    /// Incremented on every failure; stale departures are ignored.
    epoch: u64,
}

enum Event {
    /// Index into the request list.
    Arrival(usize),
    /// Release `r` sliver units on each listed `(node, epoch)`; stale
    /// epochs (the node failed meanwhile) are skipped.
    Departure { nodes: Vec<(usize, u64)>, r: u64 },
    /// A node fails (killing its slivers) …
    NodeDown(usize),
    /// … and later recovers.
    NodeUp(usize),
}

/// Runs the slice simulation for the authorities in `coalition`.
pub fn run_coalition(
    federation: &Federation,
    coalition: Coalition,
    workload: &Workload,
    config: &SimConfig,
) -> SimReport {
    let n_classes = workload.classes.len();
    let mut rng = SimRng::seed_from(config.seed);
    let requests: Vec<SliceRequest> = workload.generate(config.horizon, &mut rng);

    // Instantiate the coalition's nodes.
    let mut nodes: Vec<NodeState> = Vec::new();
    for (ai, authority) in federation.authorities().iter().enumerate() {
        if !coalition.contains(ai) {
            continue;
        }
        for site in &authority.sites {
            for node in &site.nodes {
                nodes.push(NodeState {
                    authority: ai,
                    location: site.location,
                    capacity: node.sliver_capacity,
                    used: 0,
                    up: true,
                    epoch: 0,
                });
            }
        }
    }
    let total_capacity: u64 = nodes.iter().map(|n| n.capacity).sum();

    // Location → node indices.
    let mut by_location: BTreeMap<LocationId, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_location.entry(n.location).or_default().push(i);
    }

    let mut sim: Simulator<Event> = Simulator::new();
    for (i, r) in requests.iter().enumerate() {
        sim.schedule_at(r.arrival, Event::Arrival(i));
    }
    let mut churn_rng = rng.fork();
    if let Some(churn) = config.churn {
        use fedval_desim::{Distribution, Exponential};
        let up = Exponential::with_mean(churn.mtbf);
        for i in 0..nodes.len() {
            sim.schedule(up.sample(&mut churn_rng), Event::NodeDown(i));
        }
    }

    let mut per_class_utility = vec![0.0; n_classes];
    let mut admitted = vec![0u64; n_classes];
    let mut blocked = vec![0u64; n_classes];
    let mut consumption = vec![0.0; federation.len()];
    let mut per_authority_utility = vec![0.0; federation.len()];
    let mut busy = TimeWeighted::new(0.0, 0.0);
    let mut disrupted = 0u64;

    while let Some((now, event)) = sim.next_event() {
        if now > config.horizon {
            break; // departures past the horizon cannot affect statistics
        }
        match event {
            Event::Arrival(idx) => {
                let req = requests[idx];
                let class = &workload.classes[req.class].class;
                let r = class.resources_per_location;
                // One node with >= r free sliver units per available
                // location, least-loaded first.
                let mut chosen: Vec<usize> = Vec::new();
                for node_ids in by_location.values() {
                    let free = node_ids
                        .iter()
                        .copied()
                        .filter(|&i| nodes[i].up && nodes[i].used + r <= nodes[i].capacity)
                        .min_by_key(|&i| (nodes[i].used, i));
                    if let Some(i) = free {
                        chosen.push(i);
                    }
                }
                let want = class.max_size(chosen.len() as u64);
                if (want as f64) <= class.utility.threshold {
                    // Not enough distinct locations: blocked.
                    if now >= config.warmup {
                        blocked[req.class] += 1;
                    }
                    continue;
                }
                // Prefer the least-loaded locations when trimming to l̄.
                chosen.sort_by_key(|&i| (nodes[i].used * 1000) / nodes[i].capacity.max(1));
                chosen.truncate(want as usize);
                for &i in &chosen {
                    nodes[i].used += r;
                }
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
                if now >= config.warmup {
                    admitted[req.class] += 1;
                    let u = class.utility.eval(want as f64);
                    per_class_utility[req.class] += u;
                    if let Some(owner) = workload.classes[req.class].owner {
                        if owner < per_authority_utility.len() {
                            per_authority_utility[owner] += u;
                        }
                    }
                    for &i in &chosen {
                        consumption[nodes[i].authority] += r as f64 * req.holding;
                    }
                }
                let held: Vec<(usize, u64)> = chosen.iter().map(|&i| (i, nodes[i].epoch)).collect();
                sim.schedule_at(now + req.holding, Event::Departure { nodes: held, r });
            }
            Event::Departure { nodes: held, r } => {
                for &(i, epoch) in &held {
                    if nodes[i].epoch == epoch {
                        debug_assert!(nodes[i].used >= r);
                        nodes[i].used -= r;
                    }
                }
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
            }
            Event::NodeDown(i) => {
                use fedval_desim::{Distribution, Exponential};
                let churn = config.churn.expect("churn events need churn config");
                if now >= config.warmup {
                    disrupted += nodes[i].used;
                }
                nodes[i].up = false;
                nodes[i].used = 0;
                nodes[i].epoch += 1;
                busy.record(now, nodes.iter().map(|n| n.used).sum::<u64>() as f64);
                let down = Exponential::with_mean(churn.mttr);
                sim.schedule_at(now + down.sample(&mut churn_rng), Event::NodeUp(i));
            }
            Event::NodeUp(i) => {
                use fedval_desim::{Distribution, Exponential};
                let churn = config.churn.expect("churn events need churn config");
                nodes[i].up = true;
                let up = Exponential::with_mean(churn.mtbf);
                sim.schedule_at(now + up.sample(&mut churn_rng), Event::NodeDown(i));
            }
        }
    }

    let mean_utilization = if total_capacity == 0 {
        0.0
    } else {
        busy.mean(config.horizon) / total_capacity as f64
    };

    SimReport {
        total_utility: per_class_utility.iter().sum(),
        per_class_utility,
        admitted,
        blocked,
        consumption,
        mean_utilization,
        disrupted_slivers: disrupted,
        per_authority_utility,
    }
}

/// Measures the full characteristic function by simulation: one run per
/// coalition, identical workload (same seed) across coalitions.
pub fn empirical_game(
    federation: &Federation,
    workload: &Workload,
    config: &SimConfig,
) -> TableGame {
    let n = federation.len();
    assert!(n <= 16, "2^n simulation runs — keep n small");
    TableGame::from_fn(n, |coalition| {
        if coalition.is_empty() {
            0.0
        } else {
            run_coalition(federation, coalition, workload, config).total_utility
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use fedval_coalition::CoalitionalGame;
    use fedval_core::ExperimentClass;

    fn small_federation() -> Federation {
        Federation::new(vec![
            synthetic_authority("PLC", 0, 6, 2, 2, 100),
            synthetic_authority("PLE", 6, 4, 2, 2, 80),
        ])
    }

    fn config() -> SimConfig {
        SimConfig {
            horizon: 300.0,
            warmup: 30.0,
            seed: 7,
            churn: None,
        }
    }

    #[test]
    fn diversity_threshold_blocks_small_coalitions() {
        // Class needs > 8 locations; PLC alone has 6, PLE alone 4 —
        // only the federation (10) can serve.
        let fed = small_federation();
        let wl = Workload::single(ExperimentClass::simple("big", 8.0, 1.0), 0.5, 1.0);
        let alone = run_coalition(&fed, Coalition::singleton(0), &wl, &config());
        assert_eq!(alone.total_utility, 0.0);
        assert!(alone.blocked.iter().sum::<u64>() > 0);
        let together = run_coalition(&fed, Coalition::grand(2), &wl, &config());
        assert!(together.total_utility > 0.0);
    }

    #[test]
    fn empirical_game_is_monotone_ish_and_zero_on_empty() {
        let fed = small_federation();
        let wl = Workload::single(ExperimentClass::simple("small", 2.0, 1.0), 1.0, 0.5);
        let game = empirical_game(&fed, &wl, &config());
        assert_eq!(game.value(Coalition::EMPTY), 0.0);
        let v1 = game.value(Coalition::singleton(0));
        let vn = game.value(Coalition::grand(2));
        assert!(vn >= v1, "federation at least as valuable: {vn} vs {v1}");
    }

    #[test]
    fn same_seed_same_results() {
        let fed = small_federation();
        let wl = Workload::planetlab_mix(1.0, 1.0);
        let cfg = config();
        let a = run_coalition(&fed, Coalition::grand(2), &wl, &cfg);
        let b = run_coalition(&fed, Coalition::grand(2), &wl, &cfg);
        assert_eq!(a.total_utility, b.total_utility);
        assert_eq!(a.admitted, b.admitted);
    }

    #[test]
    fn consumption_tracks_members_only() {
        let fed = small_federation();
        let wl = Workload::single(ExperimentClass::simple("c", 1.0, 1.0), 1.0, 0.5);
        let r = run_coalition(&fed, Coalition::singleton(1), &wl, &config());
        assert_eq!(r.consumption[0], 0.0, "non-member consumed nothing");
        assert!(r.consumption[1] > 0.0);
    }

    #[test]
    fn utilization_and_blocking_bounds() {
        let fed = small_federation();
        // Overload: high arrival rate, long holding.
        let wl = Workload::single(ExperimentClass::simple("c", 1.0, 1.0), 20.0, 5.0);
        let r = run_coalition(&fed, Coalition::grand(2), &wl, &config());
        assert!(r.mean_utilization > 0.3 && r.mean_utilization <= 1.0);
        assert!(r.blocking_probability(0) > 0.0);
        assert!(r.blocking_probability(0) <= 1.0);
    }
}

#[cfg(test)]
mod resource_tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use crate::workload::ClassLoad;
    use fedval_core::ExperimentClass;

    #[test]
    fn resource_hungry_class_consumes_r_slivers_per_node() {
        // One authority, nodes of capacity 4; a class with r = 4 fills a
        // node with a single sliver, so at most one such slice fits per
        // node at a time.
        let fed = Federation::new(vec![synthetic_authority("A", 0, 3, 2, 4, 0)]);
        let wl = Workload::single(
            ExperimentClass::simple("cdn", 0.0, 1.0).with_resources(4),
            4.0,
            1.0,
        );
        let cfg = SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            seed: 3,
            churn: None,
        };
        let r = run_coalition(&fed, Coalition::grand(1), &wl, &cfg);
        // Capacity: 6 nodes × 4 units = 24 units; each slice takes up to
        // 3 locations × 4 units = 12 ⇒ heavy blocking at load 4 Erlang.
        assert!(r.blocking_probability(0) > 0.1);
        assert!(r.mean_utilization > 0.2);
    }

    #[test]
    fn heavy_class_is_blocked_before_light_class() {
        // Same arrival pattern, one light (r=1) and one heavy (r=3) class
        // competing on capacity-3 nodes: the heavy class needs a fully
        // free node per location and blocks more.
        let fed = Federation::new(vec![synthetic_authority("A", 0, 4, 2, 3, 0)]);
        let wl = Workload {
            classes: vec![
                ClassLoad::external(
                ExperimentClass::simple("light", 1.0, 1.0),
                3.0,
                1.0,
            ),
                ClassLoad::external(
                ExperimentClass::simple("heavy", 1.0, 1.0).with_resources(3),
                3.0,
                1.0,
            ),
            ],
        };
        let cfg = SimConfig {
            horizon: 600.0,
            warmup: 60.0,
            seed: 13,
            churn: None,
        };
        let r = run_coalition(&fed, Coalition::grand(1), &wl, &cfg);
        assert!(
            r.blocking_probability(1) > r.blocking_probability(0),
            "heavy {} vs light {}",
            r.blocking_probability(1),
            r.blocking_probability(0)
        );
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use fedval_core::ExperimentClass;

    fn fed() -> Federation {
        Federation::new(vec![synthetic_authority("A", 0, 6, 2, 2, 0)])
    }

    fn config(churn: Option<Churn>) -> SimConfig {
        SimConfig {
            horizon: 2000.0,
            warmup: 200.0,
            seed: 9,
            churn,
        }
    }

    #[test]
    fn churn_availability_formula() {
        let c = Churn {
            mtbf: 9.0,
            mttr: 1.0,
        };
        assert!((c.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn churn_reduces_delivered_utility() {
        let wl = Workload::single(ExperimentClass::simple("e", 2.0, 1.0), 2.0, 1.0);
        let reliable = run_coalition(&fed(), Coalition::grand(1), &wl, &config(None));
        let flaky = run_coalition(
            &fed(),
            Coalition::grand(1),
            &wl,
            &config(Some(Churn {
                mtbf: 5.0,
                mttr: 5.0, // 50% availability
            })),
        );
        assert!(flaky.total_utility < reliable.total_utility);
        assert!(flaky.disrupted_slivers > 0);
        assert_eq!(reliable.disrupted_slivers, 0);
    }

    #[test]
    fn mild_churn_is_mild() {
        let wl = Workload::single(ExperimentClass::simple("e", 2.0, 1.0), 1.0, 0.5);
        let reliable = run_coalition(&fed(), Coalition::grand(1), &wl, &config(None));
        let mild = run_coalition(
            &fed(),
            Coalition::grand(1),
            &wl,
            &config(Some(Churn {
                mtbf: 1000.0,
                mttr: 0.1,
            })),
        );
        // ~99.99% availability: utility within a few percent.
        let ratio = mild.total_utility / reliable.total_utility;
        assert!(ratio > 0.95, "ratio = {ratio}");
    }

    #[test]
    fn churn_runs_are_reproducible() {
        let wl = Workload::single(ExperimentClass::simple("e", 2.0, 1.0), 2.0, 1.0);
        let cfg = config(Some(Churn {
            mtbf: 10.0,
            mttr: 2.0,
        }));
        let a = run_coalition(&fed(), Coalition::grand(1), &wl, &cfg);
        let b = run_coalition(&fed(), Coalition::grand(1), &wl, &cfg);
        assert_eq!(a.total_utility, b.total_utility);
        assert_eq!(a.disrupted_slivers, b.disrupted_slivers);
    }
}

#[cfg(test)]
mod p2p_measured_tests {
    use super::*;
    use crate::authority::synthetic_authority;
    use crate::workload::ClassLoad;
    use fedval_core::ExperimentClass;

    #[test]
    fn owned_classes_attribute_utility_to_their_authority() {
        // Authority 0's users run wide experiments only the federation can
        // host: the measured P2P route shows federation unblocking them.
        let fed = Federation::new(vec![
            synthetic_authority("A", 0, 4, 2, 2, 50),
            synthetic_authority("B", 4, 4, 2, 2, 50),
        ]);
        let wl = Workload {
            classes: vec![
                ClassLoad::owned(0, ExperimentClass::simple("wide", 6.0, 1.0), 0.8, 0.5),
                ClassLoad::owned(1, ExperimentClass::simple("small", 2.0, 1.0), 0.8, 0.5),
            ],
        };
        let cfg = SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            seed: 3,
            churn: None,
        };
        // A alone: 4 locations < 7 needed ⇒ its users get nothing.
        let alone = run_coalition(&fed, Coalition::singleton(0), &wl, &cfg);
        assert_eq!(alone.per_authority_utility[0], 0.0);
        // Federated: A's users are served.
        let grand = run_coalition(&fed, Coalition::grand(2), &wl, &cfg);
        assert!(grand.per_authority_utility[0] > 0.0);
        assert!(grand.per_authority_utility[1] > 0.0);
        // Per-authority utilities add up to total for fully-owned loads.
        let sum: f64 = grand.per_authority_utility.iter().sum();
        assert!((sum - grand.total_utility).abs() < 1e-9);
    }

    #[test]
    fn external_classes_accrue_to_no_authority() {
        let fed = Federation::new(vec![synthetic_authority("A", 0, 4, 2, 2, 0)]);
        let wl = Workload::single(ExperimentClass::simple("e", 1.0, 1.0), 1.0, 0.5);
        let cfg = SimConfig {
            horizon: 200.0,
            warmup: 20.0,
            seed: 5,
            churn: None,
        };
        let r = run_coalition(&fed, Coalition::grand(1), &wl, &cfg);
        assert!(r.total_utility > 0.0);
        assert_eq!(r.per_authority_utility[0], 0.0);
    }
}
