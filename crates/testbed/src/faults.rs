//! Deterministic fault injection for the testbed simulator.
//!
//! A [`FaultPlan`] is a fixed, seed-reproducible schedule of infrastructure
//! failures layered *on top of* the background [`Churn`](crate::Churn)
//! process: targeted node crashes (with optional repair), correlated
//! site-wide outages, whole-authority departures mid-trace, and transient
//! credential-service outages that admission control must ride out with a
//! bounded [retry/backoff policy](RetryPolicy).
//!
//! Node and authority indices refer to the *federation-wide* registry
//! order (authority-major, site-major — the order of
//! [`Federation::registry`](crate::Federation::registry)), so one plan can
//! be replayed against every coalition: events whose target is outside the
//! coalition simply do not apply to that run.

use fedval_desim::{Distribution, Exponential, SimRng};

/// One scheduled infrastructure fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// A single node (federation-wide registry index) crashes at `at`,
    /// killing its slivers; with `repair_after = Some(d)` it comes back
    /// `d` time units later, with `None` it stays down for the trace.
    NodeCrash {
        /// Federation-wide node index.
        node: usize,
        /// Absolute crash time.
        at: f64,
        /// Optional time-to-repair.
        repair_after: Option<f64>,
    },
    /// Every node of one site goes down together (a correlated failure:
    /// power loss, uplink cut) and recovers together.
    SiteOutage {
        /// Authority index in federation order.
        authority: usize,
        /// Site index within that authority.
        site: usize,
        /// Absolute outage start.
        at: f64,
        /// Outage length.
        duration: f64,
    },
    /// An authority leaves the federation mid-trace: all its nodes go
    /// down permanently and never return.
    AuthorityDeparture {
        /// Authority index in federation order.
        authority: usize,
        /// Absolute departure time.
        at: f64,
    },
    /// An authority's credential service is unreachable during a window:
    /// slice admissions needing its nodes must retry the credential
    /// exchange and lose those locations if every retry lands inside the
    /// window.
    CredentialOutage {
        /// Authority index in federation order.
        authority: usize,
        /// Absolute outage start.
        at: f64,
        /// Outage length.
        duration: f64,
    },
}

impl Fault {
    /// Short machine-readable kind label (`node_crash`, `site_outage`, …)
    /// used in observability events and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::NodeCrash { .. } => "node_crash",
            Fault::SiteOutage { .. } => "site_outage",
            Fault::AuthorityDeparture { .. } => "authority_departure",
            Fault::CredentialOutage { .. } => "credential_outage",
        }
    }

    /// Key → value pairs describing the fault for an observability event
    /// (kind, target, time, and recovery info where applicable).
    pub fn obs_fields(&self) -> Vec<(String, String)> {
        let mut fields = vec![("kind".to_string(), self.kind().to_string())];
        match *self {
            Fault::NodeCrash {
                node,
                at,
                repair_after,
            } => {
                fields.push(("node".to_string(), node.to_string()));
                fields.push(("at".to_string(), at.to_string()));
                if let Some(d) = repair_after {
                    fields.push(("repair_after".to_string(), d.to_string()));
                }
            }
            Fault::SiteOutage {
                authority,
                site,
                at,
                duration,
            } => {
                fields.push(("authority".to_string(), authority.to_string()));
                fields.push(("site".to_string(), site.to_string()));
                fields.push(("at".to_string(), at.to_string()));
                fields.push(("duration".to_string(), duration.to_string()));
            }
            Fault::AuthorityDeparture { authority, at } => {
                fields.push(("authority".to_string(), authority.to_string()));
                fields.push(("at".to_string(), at.to_string()));
            }
            Fault::CredentialOutage {
                authority,
                at,
                duration,
            } => {
                fields.push(("authority".to_string(), authority.to_string()));
                fields.push(("at".to_string(), at.to_string()));
                fields.push(("duration".to_string(), duration.to_string()));
            }
        }
        fields
    }
}

/// Retry/backoff policy for credential exchange during an outage.
///
/// Attempt 0 is the initial exchange at arrival time; retry `k ≥ 1` is
/// made `backoff · 2^(k-1)` after the arrival (exponential backoff), up
/// to `max_retries` retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial failed exchange.
    pub max_retries: u32,
    /// Base backoff delay (doubles each retry).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Absolute time of attempt `k` for an exchange started at `now`
    /// (attempt 0 = immediate; attempt `k` backs off exponentially).
    pub fn attempt_time(&self, now: f64, attempt: u32) -> f64 {
        if attempt == 0 {
            now
        } else {
            // Cap the shift so pathological max_retries cannot overflow.
            now + self.backoff * (1u64 << (attempt - 1).min(52)) as f64
        }
    }
}

/// A deterministic schedule of faults plus the credential retry policy.
///
/// Build one fluently:
///
/// ```
/// use fedval_testbed::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .node_crash(3, 50.0, Some(20.0))
///     .site_outage(0, 1, 120.0, 30.0)
///     .authority_departure(2, 400.0)
///     .credential_outage(1, 200.0, 5.0)
///     .retry_policy(3, 1.0);
/// assert_eq!(plan.events().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<Fault>,
    /// Credential-exchange retry policy applied at every admission that
    /// hits a [`Fault::CredentialOutage`] window.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan: no faults, default retry policy.
    pub fn new() -> FaultPlan {
        FaultPlan {
            events: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// The scheduled fault events, in insertion order.
    pub fn events(&self) -> &[Fault] {
        &self.events
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a single-node crash (see [`Fault::NodeCrash`]).
    pub fn node_crash(mut self, node: usize, at: f64, repair_after: Option<f64>) -> FaultPlan {
        self.events.push(Fault::NodeCrash {
            node,
            at,
            repair_after,
        });
        self
    }

    /// Adds a correlated site-wide outage (see [`Fault::SiteOutage`]).
    pub fn site_outage(mut self, authority: usize, site: usize, at: f64, duration: f64) -> FaultPlan {
        self.events.push(Fault::SiteOutage {
            authority,
            site,
            at,
            duration,
        });
        self
    }

    /// Adds a permanent mid-trace authority departure.
    pub fn authority_departure(mut self, authority: usize, at: f64) -> FaultPlan {
        self.events.push(Fault::AuthorityDeparture { authority, at });
        self
    }

    /// Adds a transient credential-service outage.
    pub fn credential_outage(mut self, authority: usize, at: f64, duration: f64) -> FaultPlan {
        self.events.push(Fault::CredentialOutage {
            authority,
            at,
            duration,
        });
        self
    }

    /// Sets the credential retry policy.
    pub fn retry_policy(mut self, max_retries: u32, backoff: f64) -> FaultPlan {
        self.retry = RetryPolicy {
            max_retries,
            backoff,
        };
        self
    }

    /// Appends `count` seed-driven node crashes: uniformly random node and
    /// crash time over `[0, horizon)`, exponentially distributed repair
    /// with mean `mean_repair`. Same seed ⇒ same schedule.
    pub fn sampled_crashes(
        mut self,
        seed: u64,
        n_nodes: usize,
        horizon: f64,
        count: usize,
        mean_repair: f64,
    ) -> FaultPlan {
        if n_nodes == 0 {
            return self;
        }
        let mut rng = SimRng::seed_from(seed);
        let repair = Exponential::with_mean(mean_repair);
        for _ in 0..count {
            let node = rng.below(n_nodes as u64) as usize;
            let at = rng.uniform01() * horizon;
            let after = repair.sample(&mut rng);
            self.events.push(Fault::NodeCrash {
                node,
                at,
                repair_after: Some(after),
            });
        }
        self
    }

    /// Appends `count` seed-driven authority departures: distinct
    /// authorities drawn uniformly from `0..n_authorities`, departure
    /// times uniform over the last 70% of `[0, horizon)` (so early rounds
    /// see the federation form before churn tears at it). Same seed ⇒
    /// same schedule. The formation engine consumes these through
    /// `fedval-form`'s churn schedule.
    pub fn sampled_departures(
        mut self,
        seed: u64,
        n_authorities: usize,
        horizon: f64,
        count: usize,
    ) -> FaultPlan {
        if n_authorities == 0 {
            return self;
        }
        let mut rng = SimRng::seed_from(seed);
        let mut remaining: Vec<usize> = (0..n_authorities).collect();
        for _ in 0..count.min(n_authorities) {
            let pick = rng.below(remaining.len() as u64) as usize;
            let authority = remaining.swap_remove(pick);
            let at = horizon * (0.3 + 0.7 * rng.uniform01());
            self.events.push(Fault::AuthorityDeparture { authority, at });
        }
        self
    }

    /// Whether the plan contains any credential outage (fast pre-check for
    /// the admission hot path).
    pub fn has_credential_outages(&self) -> bool {
        self.events
            .iter()
            .any(|f| matches!(f, Fault::CredentialOutage { .. }))
    }

    /// Whether authority `a`'s credential service is inside an outage
    /// window at time `t`.
    pub fn credential_blocked(&self, a: usize, t: f64) -> bool {
        self.events.iter().any(|f| match *f {
            Fault::CredentialOutage {
                authority,
                at,
                duration,
            } => authority == a && t >= at && t < at + duration,
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_in_order() {
        let plan = FaultPlan::new()
            .node_crash(0, 1.0, None)
            .site_outage(1, 0, 2.0, 3.0)
            .authority_departure(2, 4.0)
            .credential_outage(0, 5.0, 1.0);
        assert_eq!(plan.events().len(), 4);
        assert!(matches!(plan.events()[0], Fault::NodeCrash { node: 0, .. }));
        assert!(matches!(
            plan.events()[3],
            Fault::CredentialOutage { authority: 0, .. }
        ));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn credential_windows_are_half_open() {
        let plan = FaultPlan::new().credential_outage(1, 10.0, 5.0);
        assert!(plan.has_credential_outages());
        assert!(!plan.credential_blocked(1, 9.9));
        assert!(plan.credential_blocked(1, 10.0));
        assert!(plan.credential_blocked(1, 14.9));
        assert!(!plan.credential_blocked(1, 15.0));
        // Other authorities unaffected.
        assert!(!plan.credential_blocked(0, 12.0));
    }

    #[test]
    fn backoff_is_exponential_and_overflow_safe() {
        let retry = RetryPolicy {
            max_retries: 100,
            backoff: 1.0,
        };
        assert_eq!(retry.attempt_time(10.0, 0), 10.0);
        assert_eq!(retry.attempt_time(10.0, 1), 11.0);
        assert_eq!(retry.attempt_time(10.0, 2), 12.0);
        assert_eq!(retry.attempt_time(10.0, 3), 14.0);
        // Attempt 100 must not overflow the shift.
        assert!(retry.attempt_time(10.0, 100).is_finite());
    }

    #[test]
    fn sampled_crashes_are_reproducible() {
        let a = FaultPlan::new().sampled_crashes(9, 12, 100.0, 5, 4.0);
        let b = FaultPlan::new().sampled_crashes(9, 12, 100.0, 5, 4.0);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 5);
        for f in a.events() {
            match *f {
                Fault::NodeCrash {
                    node,
                    at,
                    repair_after,
                } => {
                    assert!(node < 12);
                    assert!((0.0..100.0).contains(&at));
                    assert!(repair_after.is_some_and(|d| d > 0.0));
                }
                _ => panic!("sampled_crashes only emits NodeCrash"),
            }
        }
        // Different seed, different schedule.
        let c = FaultPlan::new().sampled_crashes(10, 12, 100.0, 5, 4.0);
        assert_ne!(a, c);
        // Zero nodes: nothing sampled, no panic.
        assert!(FaultPlan::new().sampled_crashes(9, 0, 100.0, 5, 4.0).is_empty());
    }
}
