//! Smoothed incentive weights — taming §4.4's threshold instability.
//!
//! The paper warns that the Shapley mechanism "creates powerful incentives
//! for resource provision around the threshold points … a potential
//! weakness … since it could cause instability", and suggests using ϕ̂
//! "more as an input to the complicated process of policy design rather
//! than an absolute policy parameter". One standard input-conditioning
//! step is to smooth the payoff landscape over a *neighborhood of demand
//! assumptions*: instead of the Shapley value at one threshold `l`,
//! average it over a window of thresholds (equivalently, over uncertainty
//! in the demand forecast). Jumps shrink from cliff-size to slope-size
//! while the long-run incentive gradient is preserved.

use crate::incentives::IncentivePoint;
use crate::scheme::SharingScheme;
use fedval_core::{Demand, ExperimentClass, Facility, FederationScenario};

/// Shapley shares averaged over a window of diversity thresholds
/// `l ∈ {center − spread, …, center, …, center + spread}` (uniform
/// weights, `2·half_points + 1` samples), modelling forecast uncertainty
/// about the demand's diversity requirement.
///
/// # Panics
/// Panics if `spread < 0` or the window dips below zero thresholds.
pub fn threshold_smoothed_shares(
    facilities: &[Facility],
    demand_at: &dyn Fn(f64) -> Demand,
    center: f64,
    spread: f64,
    half_points: usize,
) -> Vec<f64> {
    assert!(spread >= 0.0);
    assert!(center - spread >= 0.0, "window must stay non-negative");
    let n = facilities.len();
    let samples = 2 * half_points + 1;
    let mut acc = vec![0.0; n];
    for i in 0..samples {
        let offset = if half_points == 0 {
            0.0
        } else {
            spread * (i as f64 - half_points as f64) / half_points as f64
        };
        let scenario =
            FederationScenario::new(facilities.to_vec(), demand_at(center + offset));
        let shares = scenario.shapley_shares();
        for (a, s) in acc.iter_mut().zip(&shares) {
            *a += s / samples as f64;
        }
    }
    acc
}

/// Convenience: a smoothed Fig. 9-style incentive curve — facility
/// `target`'s payoff under threshold-smoothed Shapley weights.
pub fn smoothed_incentive_curve(
    make_facilities: &dyn Fn(u32) -> Vec<Facility>,
    threshold: f64,
    spread: f64,
    half_points: usize,
    target: usize,
    levels: &[u32],
) -> Vec<IncentivePoint> {
    levels
        .iter()
        .map(|&level| {
            let facilities = make_facilities(level);
            let shares = threshold_smoothed_shares(
                &facilities,
                &|l| Demand::capacity_filling(ExperimentClass::simple("e", l, 1.0)),
                threshold,
                spread,
                half_points,
            );
            // Payoff at the *center* scenario's value.
            let scenario = FederationScenario::new(
                facilities,
                Demand::capacity_filling(ExperimentClass::simple("e", threshold, 1.0)),
            );
            IncentivePoint {
                level,
                payoff: shares[target] * scenario.grand_value(),
            }
        })
        .collect()
}

/// Largest single-step payoff jump of a curve (the instability metric).
pub fn max_jump(curve: &[IncentivePoint]) -> f64 {
    curve
        .windows(2)
        .map(|w| (w[1].payoff - w[0].payoff).abs())
        .fold(0.0, f64::max)
}

/// Compares raw vs smoothed Shapley incentive curves for one facility.
/// Returns `(raw_max_jump, smoothed_max_jump)`.
pub fn smoothing_benefit(
    make_facilities: &dyn Fn(u32) -> Vec<Facility>,
    threshold: f64,
    spread: f64,
    half_points: usize,
    target: usize,
    levels: &[u32],
) -> (f64, f64) {
    let demand = Demand::capacity_filling(ExperimentClass::simple("e", threshold, 1.0));
    let raw = crate::incentives::incentive_curve(
        make_facilities,
        &demand,
        &SharingScheme::Shapley,
        target,
        levels,
    );
    let smoothed = smoothed_incentive_curve(
        make_facilities,
        threshold,
        spread,
        half_points,
        target,
        levels,
    );
    (max_jump(&raw), max_jump(&smoothed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::paper_facilities_with_locations;

    fn fig9(l1: u32) -> Vec<Facility> {
        paper_facilities_with_locations([l1, 400, 800], [80, 60, 20])
    }

    #[test]
    fn zero_spread_equals_raw_shapley() {
        let facilities = fig9(300);
        let shares = threshold_smoothed_shares(
            &facilities,
            &|l| Demand::capacity_filling(ExperimentClass::simple("e", l, 1.0)),
            400.0,
            0.0,
            0,
        );
        let scenario = FederationScenario::new(
            facilities,
            Demand::capacity_filling(ExperimentClass::simple("e", 400.0, 1.0)),
        );
        let raw = scenario.shapley_shares();
        for (a, b) in shares.iter().zip(&raw) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothed_shares_sum_to_one() {
        let facilities = fig9(500);
        let shares = threshold_smoothed_shares(
            &facilities,
            &|l| Demand::capacity_filling(ExperimentClass::simple("e", l, 1.0)),
            600.0,
            100.0,
            2,
        );
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_shrinks_the_threshold_jump() {
        // Around l = 800, facility 1's Shapley payoff jumps as its
        // locations unlock new serving coalitions; a ±100 window flattens
        // the cliff.
        let levels: Vec<u32> = (300..=500).step_by(50).collect();
        let (raw, smoothed) = smoothing_benefit(&fig9, 800.0, 100.0, 2, 0, &levels);
        assert!(
            smoothed <= raw + 1e-9,
            "smoothed jump {smoothed} vs raw {raw}"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_windows_below_zero() {
        let facilities = fig9(100);
        let _ = threshold_smoothed_shares(
            &facilities,
            &|l| Demand::capacity_filling(ExperimentClass::simple("e", l, 1.0)),
            50.0,
            100.0,
            2,
        );
    }
}
