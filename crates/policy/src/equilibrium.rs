//! The provision game (§3.3): facilities choose how much to contribute,
//! trading payoff against provision cost — solved by best-response
//! iteration over a discrete strategy grid.
//!
//! The paper stops at "the fact that more sophisticated schemes like the
//! Shapley value do not have a closed form makes it very challenging to
//! analytically study ... equilibria"; numerically it is just a fixed
//! point search, implemented here.

use crate::scheme::SharingScheme;
use fedval_core::{CostModel, Demand, Facility, FederationScenario};

/// Result of the best-response dynamics.
#[derive(Debug, Clone)]
pub struct Equilibrium {
    /// Chosen strategy (grid index per facility).
    pub strategy: Vec<usize>,
    /// Net payoffs (share·V(N) − provision cost) at the fixed point.
    pub net_payoffs: Vec<f64>,
    /// Whether the dynamics converged (vs hitting the iteration cap).
    pub converged: bool,
    /// Best-response sweeps performed.
    pub iterations: usize,
}

/// Runs best-response dynamics.
///
/// * `grid[i]` — facility `i`'s strategy space (e.g. candidate `Lᵢ`).
/// * `make_facility(i, s)` — facility `i` playing strategy value `s`.
///
/// Facilities update in round-robin order to the strategy maximizing
/// `share_i·V(N) − provision_cost`, until no one moves.
pub fn best_response_dynamics(
    grid: &[Vec<u32>],
    make_facility: &dyn Fn(usize, u32) -> Facility,
    demand: &Demand,
    scheme: &SharingScheme,
    cost: &CostModel,
    max_sweeps: usize,
) -> Equilibrium {
    let n = grid.len();
    assert!(n > 0 && grid.iter().all(|g| !g.is_empty()));
    let mut strategy: Vec<usize> = vec![0; n];

    let net_payoff = |strategy: &[usize], i: usize| -> f64 {
        let facilities: Vec<Facility> = (0..n)
            .map(|j| make_facility(j, grid[j][strategy[j]]))
            .collect();
        let provision = cost.provision_cost(&facilities[i]);
        let scenario = FederationScenario::new(facilities, demand.clone());
        scheme.payoffs(&scenario)[i] - provision
    };

    let mut converged = false;
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        sweeps += 1;
        let mut moved = false;
        for i in 0..n {
            let mut best = (strategy[i], net_payoff(&strategy, i));
            for cand in 0..grid[i].len() {
                if cand == strategy[i] {
                    continue;
                }
                let mut trial = strategy.clone();
                trial[i] = cand;
                let v = net_payoff(&trial, i);
                if v > best.1 + 1e-9 {
                    best = (cand, v);
                }
            }
            if best.0 != strategy[i] {
                strategy[i] = best.0;
                moved = true;
            }
        }
        if !moved {
            converged = true;
            break;
        }
    }

    let net_payoffs: Vec<f64> = (0..n).map(|i| net_payoff(&strategy, i)).collect();
    Equilibrium {
        strategy,
        net_payoffs,
        converged,
        iterations: sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{ExperimentClass, LocationOffer};

    /// Facilities choose L ∈ {10, 20, 40} at distinct location ranges.
    fn make_facility(i: usize, l: u32) -> Facility {
        let start = (i as u32) * 1000;
        Facility::new(format!("f{i}"), LocationOffer::contiguous(start, l, 1))
    }

    #[test]
    fn zero_cost_drives_full_provision() {
        let grid = vec![vec![10u32, 20, 40]; 2];
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 0.0, 1.0));
        let free = CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 0.0,
            federation_fixed: 0.0,
        };
        let eq = best_response_dynamics(
            &grid,
            &make_facility,
            &demand,
            &SharingScheme::Proportional,
            &free,
            20,
        );
        assert!(eq.converged);
        assert_eq!(eq.strategy, vec![2, 2], "both provision maximally");
    }

    #[test]
    fn prohibitive_cost_drives_minimal_provision() {
        let grid = vec![vec![10u32, 20, 40]; 2];
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 0.0, 1.0));
        let expensive = CostModel {
            alpha: 100.0, // location cost dwarfs the ≤ 1-per-location value
            beta: 0.0,
            gamma: 0.0,
            federation_fixed: 0.0,
        };
        let eq = best_response_dynamics(
            &grid,
            &make_facility,
            &demand,
            &SharingScheme::Proportional,
            &expensive,
            20,
        );
        assert!(eq.converged);
        assert_eq!(eq.strategy, vec![0, 0]);
    }

    #[test]
    fn equal_sharing_free_rides() {
        // Under equal split, contributing more only helps via V(N); with a
        // moderate cost, facilities under-provision relative to
        // proportional sharing — the incentive-compatibility failure the
        // paper warns about for contribution-blind schemes.
        let grid = vec![vec![10u32, 40]; 2];
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 0.0, 1.0));
        let cost = CostModel {
            alpha: 0.6, // value of a location to the group is 1; own equal
            beta: 0.0,  // share of it is 0.5 < 0.6 < 1
            gamma: 0.0,
            federation_fixed: 0.0,
        };
        let equal = best_response_dynamics(
            &grid,
            &make_facility,
            &demand,
            &SharingScheme::Equal,
            &cost,
            20,
        );
        let proportional = best_response_dynamics(
            &grid,
            &make_facility,
            &demand,
            &SharingScheme::Proportional,
            &cost,
            20,
        );
        assert!(equal.converged && proportional.converged);
        let equal_total: u32 = equal.strategy.iter().map(|&s| grid[0][s]).sum();
        let prop_total: u32 = proportional.strategy.iter().map(|&s| grid[0][s]).sum();
        assert!(
            equal_total < prop_total,
            "equal split must under-provision: {equal_total} vs {prop_total}"
        );
    }
}
