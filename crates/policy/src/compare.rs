//! Scheme comparison metrics: stability, incentive alignment, distance.

use crate::scheme::SharingScheme;
use fedval_coalition::{excess, is_in_core, Coalition, CoalitionalGame};
use fedval_core::FederationScenario;

/// How one scheme behaves on one scenario.
#[derive(Debug, Clone)]
pub struct SchemeAssessment {
    /// Scheme display name.
    pub scheme: String,
    /// Normalized shares.
    pub shares: Vec<f64>,
    /// Whether the payoff vector lies in the core (stable against
    /// secession) — `None` when the scenario's core is empty.
    pub in_core: Option<bool>,
    /// Largest coalition excess at the payoff vector (≤ 0 means in-core).
    pub max_excess: f64,
    /// L1 distance of shares from the proportional benchmark.
    pub distance_from_proportional: f64,
}

/// Assesses the τ-value (Tijs) alongside the schemes, when the game is
/// quasi-balanced; returns `None` otherwise.
pub fn assess_tau(scenario: &FederationScenario) -> Option<SchemeAssessment> {
    let game = scenario.game();
    let grand = game.grand_value();
    let payoffs = fedval_coalition::tau_value(game)?;
    let shares: Vec<f64> = if grand.abs() < 1e-12 {
        vec![0.0; payoffs.len()]
    } else {
        payoffs.iter().map(|p| p / grand).collect()
    };
    let n = game.n_players();
    let grand_c = Coalition::grand(n);
    let max_excess = Coalition::all(n)
        .filter(|&s| !s.is_empty() && s != grand_c)
        .map(|s| excess(game, &payoffs, s))
        .fold(f64::NEG_INFINITY, f64::max);
    let pi = scenario.proportional_shares();
    Some(SchemeAssessment {
        scheme: "tau".to_string(),
        shares: shares.clone(),
        in_core: scenario
            .core_nonempty()
            .then(|| is_in_core(game, &payoffs, 1e-7)),
        max_excess,
        distance_from_proportional: shares
            .iter()
            .zip(&pi)
            .map(|(a, b)| (a - b).abs())
            .sum(),
    })
}

/// Assesses every given scheme on a scenario.
pub fn compare_schemes(
    scenario: &FederationScenario,
    schemes: &[SharingScheme],
) -> Vec<SchemeAssessment> {
    let game = scenario.game();
    let core_nonempty = scenario.core_nonempty();
    let pi = scenario.proportional_shares();
    schemes
        .iter()
        .map(|scheme| {
            let shares = scheme.shares(scenario);
            let payoffs = scenario.payoffs(&shares);
            let n = game.n_players();
            let grand = Coalition::grand(n);
            let max_excess = Coalition::all(n)
                .filter(|&s| !s.is_empty() && s != grand)
                .map(|s| excess(game, &payoffs, s))
                .fold(f64::NEG_INFINITY, f64::max);
            SchemeAssessment {
                scheme: scheme.name().to_string(),
                shares: shares.clone(),
                in_core: core_nonempty.then(|| is_in_core(game, &payoffs, 1e-7)),
                max_excess,
                distance_from_proportional: shares
                    .iter()
                    .zip(&pi)
                    .map(|(a, b)| (a - b).abs())
                    .sum(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{paper_facilities, Demand, ExperimentClass};

    fn scenario(l: f64) -> FederationScenario {
        FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", l, 1.0)),
        )
    }

    #[test]
    fn tau_assessment_on_worked_example() {
        let s = scenario(500.0);
        let tau = assess_tau(&s).expect("quasi-balanced");
        assert_eq!(tau.scheme, "tau");
        let total: f64 = tau.shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // On this game τ coincides with Shapley: (1/26, 2/13, 21/26).
        assert!((tau.shares[1] - 2.0 / 13.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_has_zero_self_distance() {
        let s = scenario(500.0);
        let a = compare_schemes(&s, &[SharingScheme::Proportional]);
        assert!(a[0].distance_from_proportional.abs() < 1e-12);
    }

    #[test]
    fn shapley_departs_from_proportional_at_positive_threshold() {
        // The paper's headline: thresholds make ϕ̂ ≠ π̂.
        let with_threshold = compare_schemes(&scenario(500.0), &[SharingScheme::Shapley]);
        assert!(with_threshold[0].distance_from_proportional > 0.1);
        let without = compare_schemes(&scenario(0.0), &[SharingScheme::Shapley]);
        assert!(without[0].distance_from_proportional < 1e-9);
    }

    #[test]
    fn nucleolus_is_in_core_when_core_nonempty() {
        // l = 1250: only the grand coalition works; core non-empty.
        let s = scenario(1250.0);
        assert!(s.core_nonempty());
        let a = compare_schemes(&s, &[SharingScheme::Nucleolus]);
        assert_eq!(a[0].in_core, Some(true));
        assert!(a[0].max_excess <= 1e-7);
    }

    #[test]
    fn max_excess_flags_unstable_schemes() {
        // At l = 500 the core requires facility 3 to get ≥ 800/1300 ≈ 0.615
        // …actually ≥ V({3}) = 800. Equal split gives 433: coalition {3}
        // has positive excess.
        let s = scenario(500.0);
        let a = compare_schemes(&s, &[SharingScheme::Equal]);
        assert!(a[0].max_excess > 0.0);
        if let Some(in_core) = a[0].in_core {
            assert!(!in_core);
        }
    }
}
