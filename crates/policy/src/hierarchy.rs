//! Hierarchical federation sharing (§1.2 / §6 of the paper).
//!
//! PlanetLab is a two-level federation: *sites* contribute nodes to their
//! *authority* (PLC, PLE, PLJ), and authorities federate at the top. The
//! paper treats the top level only ("in future work, we will study the
//! interdependencies between local and global federation policies"); this
//! module implements that next step with the Owen value: sites are the
//! players, authorities are the a priori unions, and the Owen quotient
//! property guarantees the two levels are consistent — each authority's
//! sites jointly receive exactly the authority's top-level Shapley share.

use fedval_coalition::{
    owen_value, quotient_game, shapley, CachedGame, Coalition, CoalitionalGame,
};
use fedval_core::{Demand, Facility, FederationGame};

/// The two-level sharing result.
#[derive(Debug, Clone)]
pub struct HierarchicalShares {
    /// Top-level (authority) normalized shares — the quotient-game
    /// Shapley values.
    pub authority_shares: Vec<f64>,
    /// Per-site normalized shares (global: all sites sum to 1), grouped
    /// by authority in input order.
    pub site_shares: Vec<Vec<f64>>,
    /// Total federation value `V(N)`.
    pub grand_value: f64,
}

impl HierarchicalShares {
    /// Monetary payoff of site `s` of authority `a`.
    pub fn site_payoff(&self, a: usize, s: usize) -> f64 {
        self.site_shares[a][s] * self.grand_value
    }
}

/// Computes hierarchical Shapley/Owen shares for sites grouped by
/// authority.
///
/// `site_groups[a]` lists the facilities (sites) of authority `a`. The
/// total number of sites must be ≤ 16 (the Owen computation evaluates the
/// site-level characteristic function `O(2^u · 2^b)` times per player).
///
/// # Panics
/// Panics if there are no sites, more than 16, or the demand is not
/// supported by the allocation optimizer.
pub fn hierarchical_shapley(site_groups: &[Vec<Facility>], demand: &Demand) -> HierarchicalShares {
    let flat: Vec<Facility> = site_groups.iter().flatten().cloned().collect();
    let n = flat.len();
    assert!(n >= 1, "need at least one site");
    assert!(n <= 16, "hierarchical computation limited to 16 sites");

    // Unions: contiguous player-id blocks per authority.
    let mut unions = Vec::with_capacity(site_groups.len());
    let mut next = 0usize;
    for group in site_groups {
        assert!(!group.is_empty(), "authorities must own at least one site");
        unions.push(Coalition::from_players(next..next + group.len()));
        next += group.len();
    }

    let game = CachedGame::new(FederationGame::new(&flat, demand));
    let grand_value = game.grand_value();

    let owen = owen_value(&game, &unions);
    let quotient = quotient_game(&game, &unions);
    let authority_raw = shapley(&quotient);

    let normalize = |v: Vec<f64>| -> Vec<f64> {
        if grand_value.abs() < 1e-12 {
            vec![0.0; v.len()]
        } else {
            v.into_iter().map(|x| x / grand_value).collect()
        }
    };
    let owen_hat = normalize(owen);
    let authority_shares = normalize(authority_raw);

    let mut site_shares = Vec::with_capacity(site_groups.len());
    let mut idx = 0usize;
    for group in site_groups {
        site_shares.push(owen_hat[idx..idx + group.len()].to_vec());
        idx += group.len();
    }

    HierarchicalShares {
        authority_shares,
        site_shares,
        grand_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{ExperimentClass, Facility};

    /// Two authorities: A with two 4-location sites, B with one
    /// 6-location site; experiment needs > 9 distinct locations.
    fn site_groups() -> Vec<Vec<Facility>> {
        vec![
            vec![
                Facility::uniform("A-s1", 0, 4, 1),
                Facility::uniform("A-s2", 4, 4, 1),
            ],
            vec![Facility::uniform("B-s1", 8, 6, 1)],
        ]
    }

    fn demand() -> Demand {
        Demand::one_experiment(ExperimentClass::simple("e", 9.0, 1.0))
    }

    #[test]
    fn quotient_consistency_between_levels() {
        let h = hierarchical_shapley(&site_groups(), &demand());
        for (a, group) in h.site_shares.iter().enumerate() {
            let site_total: f64 = group.iter().sum();
            assert!(
                (site_total - h.authority_shares[a]).abs() < 1e-9,
                "authority {a}: sites sum {site_total} vs share {}",
                h.authority_shares[a]
            );
        }
        let total: f64 = h.authority_shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pivotal_small_site_earns_within_authority() {
        // V: any coalition with > 9 locations. A-s1+A-s2 = 8 < 10;
        // B-s1 alone = 6 < 10; A(8)+B(6) = 14 ≥ 10. Every serving
        // coalition needs B plus at least one A-site.
        let h = hierarchical_shapley(&site_groups(), &demand());
        // Grand value = 14 (the experiment takes all locations).
        assert!((h.grand_value - 14.0).abs() < 1e-9);
        // B is pivotal as a union: its share must exceed A's per-capita.
        assert!(h.authority_shares[1] > 0.3);
        // Symmetric sites within A get equal shares.
        let a = &h.site_shares[0];
        assert!((a[0] - a[1]).abs() < 1e-12);
        // Everything is non-negative.
        assert!(h.site_shares.iter().flatten().all(|&s| s >= -1e-12));
    }

    #[test]
    fn payoffs_scale_with_grand_value() {
        let h = hierarchical_shapley(&site_groups(), &demand());
        let total_payoff: f64 = (0..h.site_shares.len())
            .flat_map(|a| (0..h.site_shares[a].len()).map(move |s| (a, s)))
            .map(|(a, s)| h.site_payoff(a, s))
            .sum();
        assert!((total_payoff - h.grand_value).abs() < 1e-9);
    }

    #[test]
    fn single_authority_reduces_to_plain_site_shapley() {
        let groups = vec![vec![
            Facility::uniform("s1", 0, 3, 1),
            Facility::uniform("s2", 3, 5, 1),
        ]];
        let d = Demand::one_experiment(ExperimentClass::simple("e", 4.0, 1.0));
        let h = hierarchical_shapley(&groups, &d);
        assert!((h.authority_shares[0] - 1.0).abs() < 1e-9);
        let flat: Vec<Facility> = groups.concat();
        let plain = fedval_coalition::shapley_normalized(&fedval_coalition::TableGame::from_game(
            &FederationGame::new(&flat, &d),
        ));
        for (a, b) in h.site_shares[0].iter().zip(&plain) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
