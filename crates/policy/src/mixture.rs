//! Demand-mixture estimation → policy weights: closing the §4.3.2 loop.
//!
//! "It is thus important to be able to classify experiments into a few
//! meaningful categories and, based on the expected mixture, adjust the
//! federation policies implemented in practice." This module does exactly
//! that: classify observed slice requests into the organizer's demand
//! categories (by their diversity requirement), estimate the mixture, and
//! emit Shapley weights computed at the estimated mixture — the
//! `SharingScheme::Fixed` input the paper recommends deriving off-line.

use crate::scheme::SharingScheme;
use fedval_core::{
    Demand, DemandComponent, ExperimentClass, Facility, FederationScenario, Volume,
};

/// A demand category: requests whose required diversity falls in
/// `[min_locations, max_locations)` are counted here, and the category is
/// represented in the fitted demand by `representative`.
#[derive(Debug, Clone)]
pub struct Category {
    /// Display name.
    pub name: String,
    /// Inclusive lower bound on observed location requirements.
    pub min_locations: u64,
    /// Exclusive upper bound.
    pub max_locations: u64,
    /// The experiment class used to represent this category in the model.
    pub representative: ExperimentClass,
}

/// The estimated mixture.
#[derive(Debug, Clone)]
pub struct MixtureEstimate {
    /// Requests counted per category (same order as the input categories).
    pub counts: Vec<u64>,
    /// Requests that fit no category.
    pub unclassified: u64,
}

impl MixtureEstimate {
    /// Fraction of classified requests per category (zeros if none).
    pub fn fractions(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// Classifies observed per-request location requirements into categories.
pub fn classify_requests(observed_locations: &[u64], categories: &[Category]) -> MixtureEstimate {
    let mut counts = vec![0u64; categories.len()];
    let mut unclassified = 0;
    for &x in observed_locations {
        match categories
            .iter()
            .position(|c| x >= c.min_locations && x < c.max_locations)
        {
            Some(k) => counts[k] += 1,
            None => unclassified += 1,
        }
    }
    MixtureEstimate {
        counts,
        unclassified,
    }
}

/// Builds the model demand corresponding to an estimated mixture, scaled
/// to `total_volume` expected experiments.
pub fn demand_from_mixture(
    categories: &[Category],
    estimate: &MixtureEstimate,
    total_volume: u64,
) -> Demand {
    let fractions = estimate.fractions();
    Demand {
        components: categories
            .iter()
            .zip(&fractions)
            .map(|(c, &f)| DemandComponent {
                class: c.representative.clone(),
                volume: Volume::Count((f * total_volume as f64).round() as u64),
            })
            .collect(),
    }
}

/// The full pipeline: observations → mixture → Shapley weights at the
/// fitted demand → a ready-to-install [`SharingScheme::Fixed`].
pub fn fitted_policy(
    facilities: &[Facility],
    categories: &[Category],
    observed_locations: &[u64],
    total_volume: u64,
) -> (MixtureEstimate, SharingScheme) {
    let estimate = classify_requests(observed_locations, categories);
    let demand = demand_from_mixture(categories, &estimate, total_volume);
    let scenario = FederationScenario::new(facilities.to_vec(), demand);
    let weights = scenario.shapley_shares();
    (estimate, SharingScheme::Fixed(weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::paper_facilities;

    fn categories() -> Vec<Category> {
        vec![
            Category {
                name: "bulk".into(),
                min_locations: 0,
                max_locations: 100,
                representative: ExperimentClass::simple("bulk", 0.0, 1.0),
            },
            Category {
                name: "diverse".into(),
                min_locations: 100,
                max_locations: 10_000,
                representative: ExperimentClass::simple("diverse", 700.0, 1.0),
            },
        ]
    }

    #[test]
    fn classification_buckets_and_leftovers() {
        let observed = [10, 50, 99, 100, 800, 20_000];
        let est = classify_requests(&observed, &categories());
        assert_eq!(est.counts, vec![3, 2]);
        assert_eq!(est.unclassified, 1);
        let f = est.fractions();
        assert!((f[0] - 0.6).abs() < 1e-12);
        assert!((f[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn demand_scales_to_volume() {
        let est = MixtureEstimate {
            counts: vec![30, 10],
            unclassified: 0,
        };
        let demand = demand_from_mixture(&categories(), &est, 60);
        assert_eq!(demand.components[0].volume, Volume::Count(45));
        assert_eq!(demand.components[1].volume, Volume::Count(15));
    }

    #[test]
    fn fitted_policy_tracks_the_observed_mixture() {
        // More diversity-hungry observations ⇒ fitted weights further from
        // proportional, favoring the diversity-rich facility.
        let facilities = paper_facilities([80, 50, 30]);
        let mostly_bulk: Vec<u64> = (0..40).map(|_| 10).chain((0..5).map(|_| 800)).collect();
        let mostly_diverse: Vec<u64> = (0..5).map(|_| 10).chain((0..40).map(|_| 800)).collect();

        let (_, bulk_policy) = fitted_policy(&facilities, &categories(), &mostly_bulk, 60);
        let (_, diverse_policy) = fitted_policy(&facilities, &categories(), &mostly_diverse, 60);
        let scenario = FederationScenario::new(
            facilities.clone(),
            Demand::one_experiment(ExperimentClass::simple("probe", 0.0, 1.0)),
        );
        let bulk_shares = bulk_policy.shares(&scenario);
        let diverse_shares = diverse_policy.shares(&scenario);
        assert!(
            diverse_shares[2] > bulk_shares[2],
            "diverse demand must raise facility 3's weight: {diverse_shares:?} vs {bulk_shares:?}"
        );
        assert!((bulk_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_observations_yield_zero_fractions() {
        let est = classify_requests(&[], &categories());
        assert_eq!(est.fractions(), vec![0.0, 0.0]);
    }
}
