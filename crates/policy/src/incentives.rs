//! Provision incentives (§4.4, Fig. 9): how a facility's payoff responds
//! to upgrading its contribution under different sharing schemes.

use crate::scheme::SharingScheme;
use fedval_core::{Demand, Facility, FederationScenario};

/// One point of an incentive curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncentivePoint {
    /// The contribution level swept (e.g. `L₁`).
    pub level: u32,
    /// The facility's monetary payoff `sᵢ·V(N)` at that level.
    pub payoff: f64,
}

/// Sweeps facility `target`'s contribution level and records its payoff
/// under `scheme`.
///
/// `make_facilities(level)` must return the full facility vector with the
/// target's contribution set to `level` — the Fig. 9 sweep passes the
/// paper's fixed `L₂ = 400, L₃ = 800` and varies `L₁`.
pub fn incentive_curve(
    make_facilities: &dyn Fn(u32) -> Vec<Facility>,
    demand: &Demand,
    scheme: &SharingScheme,
    target: usize,
    levels: &[u32],
) -> Vec<IncentivePoint> {
    levels
        .iter()
        .map(|&level| {
            let scenario = FederationScenario::new(make_facilities(level), demand.clone());
            let payoff = scheme.payoffs(&scenario)[target];
            IncentivePoint { level, payoff }
        })
        .collect()
}

/// The marginal payoff of each step of an incentive curve:
/// `(payoff[k+1] − payoff[k]) / (level[k+1] − level[k])`.
pub fn marginal_payoffs(curve: &[IncentivePoint]) -> Vec<f64> {
    curve
        .windows(2)
        .map(|w| (w[1].payoff - w[0].payoff) / f64::from(w[1].level - w[0].level).max(1.0))
        .collect()
}

/// Summary of how strongly a scheme rewards provision around thresholds:
/// the largest single-step marginal payoff in the curve. The paper notes
/// Shapley "creates powerful incentives for resource provision around the
/// threshold points" — this statistic quantifies that (and its potential
/// instability).
pub fn peak_marginal(curve: &[IncentivePoint]) -> f64 {
    marginal_payoffs(curve)
        .into_iter()
        .fold(0.0f64, |a, b| a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{paper_facilities_with_locations, ExperimentClass};

    fn fig9_facilities(l1: u32) -> Vec<Facility> {
        paper_facilities_with_locations([l1.max(1), 400, 800], [80, 60, 20])
    }

    fn capacity_demand(l: f64) -> Demand {
        Demand::capacity_filling(ExperimentClass::simple("e", l, 1.0))
    }

    #[test]
    fn proportional_curve_is_smooth_when_threshold_zero() {
        let demand = capacity_demand(0.0);
        let levels: Vec<u32> = (100..=1000).step_by(300).collect();
        let curve = incentive_curve(
            &fig9_facilities,
            &demand,
            &SharingScheme::Proportional,
            0,
            &levels,
        );
        // π₁ = 80·L₁ / (80·L₁ + 40000); payoff = π̂₁·V(N) and with l = 0,
        // V(N) = total slots, so payoff = 80·L₁ exactly.
        for p in &curve {
            assert!(
                (p.payoff - 80.0 * f64::from(p.level)).abs() < 1e-6,
                "L1 = {}, payoff = {}",
                p.level,
                p.payoff
            );
        }
    }

    #[test]
    fn shapley_rewards_crossing_the_threshold() {
        // With l = 800, facility 1 matters mostly via coalitions; payoffs
        // should be non-trivially larger once L₁ lets coalitions serve.
        let demand = capacity_demand(790.0);
        let levels = [100, 400, 800, 1000];
        let curve = incentive_curve(
            &fig9_facilities,
            &demand,
            &SharingScheme::Shapley,
            0,
            &levels,
        );
        assert!(
            curve.last().unwrap().payoff > curve.first().unwrap().payoff,
            "more locations must eventually pay off: {curve:?}"
        );
        assert!(peak_marginal(&curve) > 0.0);
    }

    #[test]
    fn marginal_payoffs_lengths() {
        let demand = capacity_demand(0.0);
        let levels = [100, 200, 300];
        let curve = incentive_curve(
            &fig9_facilities,
            &demand,
            &SharingScheme::Proportional,
            0,
            &levels,
        );
        assert_eq!(marginal_payoffs(&curve).len(), 2);
    }
}
