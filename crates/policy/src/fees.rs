//! Subscription-fee redistribution — the question PlanetLab actually
//! faces.
//!
//! §4: "sharing P efficiently is an issue that already arises in the
//! PlanetLab context, as subscription fees are paid by industrial users
//! of the system, such as Google and HP. The default policy at present is
//! for each top-level authority … to retain the totality of the fees that
//! it brings in." Customers pay the authority they subscribe through, but
//! consume the *whole* federation — so keep-what-you-collect rewards
//! sales channels, not contributions. This module pools fees and
//! redistributes them under any sharing rule, and quantifies how far the
//! status quo sits from each.

use crate::scheme::SharingScheme;
use fedval_core::FederationScenario;
use serde::{Deserialize, Serialize};

/// Fees collected during a period, per authority.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeePool {
    /// `collected[i]` = fees authority `i` billed its subscribers.
    pub collected: Vec<f64>,
}

impl FeePool {
    /// Creates a pool.
    ///
    /// # Panics
    /// Panics on negative or non-finite fees.
    pub fn new(collected: Vec<f64>) -> FeePool {
        assert!(collected.iter().all(|f| f.is_finite() && *f >= 0.0));
        FeePool { collected }
    }

    /// Total fees in the pool.
    pub fn total(&self) -> f64 {
        self.collected.iter().sum()
    }

    /// The status-quo "keep what you collect" distribution.
    pub fn keep_own(&self) -> Vec<f64> {
        self.collected.clone()
    }

    /// Pool everything and redistribute by `scheme` on the scenario's
    /// federation game.
    pub fn redistribute(&self, scenario: &FederationScenario, scheme: &SharingScheme) -> Vec<f64> {
        assert_eq!(self.collected.len(), scenario.facilities().len());
        let shares = scheme.shares(scenario);
        let total = self.total();
        shares.into_iter().map(|s| s * total).collect()
    }

    /// Per-authority transfer the redistribution implies relative to the
    /// status quo (positive = receives, negative = pays in).
    pub fn transfers(
        &self,
        scenario: &FederationScenario,
        scheme: &SharingScheme,
    ) -> Vec<f64> {
        self.redistribute(scenario, scheme)
            .iter()
            .zip(&self.collected)
            .map(|(r, c)| r - c)
            .collect()
    }

    /// L1 distance between the status quo and the scheme's distribution,
    /// normalized by the pool total (0 = status quo already implements the
    /// scheme; 2 = maximal disagreement).
    pub fn status_quo_distance(
        &self,
        scenario: &FederationScenario,
        scheme: &SharingScheme,
    ) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.transfers(scenario, scheme)
            .iter()
            .map(|t| t.abs())
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{paper_facilities, Demand, ExperimentClass};

    fn scenario() -> FederationScenario {
        FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0)),
        )
    }

    #[test]
    fn redistribution_conserves_the_pool() {
        // Google subscribes through PLC: PLC collects everything.
        let pool = FeePool::new(vec![1300.0, 0.0, 0.0]);
        for scheme in SharingScheme::all_builtin() {
            let dist = pool.redistribute(&scenario(), &scheme);
            let total: f64 = dist.iter().sum();
            assert!(
                (total - 1300.0).abs() < 1e-9,
                "{} leaks fees: {total}",
                scheme.name()
            );
            let transfers: f64 = pool.transfers(&scenario(), &scheme).iter().sum();
            assert!(transfers.abs() < 1e-9, "transfers must net to zero");
        }
    }

    #[test]
    fn shapley_redistribution_matches_contribution_not_sales() {
        // All fees collected by facility 1 (the sales channel), but
        // facility 3 holds the diversity: Shapley sends 21/26 of the pool
        // to facility 3.
        let pool = FeePool::new(vec![2600.0, 0.0, 0.0]);
        let dist = pool.redistribute(&scenario(), &SharingScheme::Shapley);
        assert!((dist[0] - 2600.0 / 26.0).abs() < 1e-9);
        assert!((dist[2] - 2600.0 * 21.0 / 26.0).abs() < 1e-9);
        let transfers = pool.transfers(&scenario(), &SharingScheme::Shapley);
        assert!(transfers[0] < 0.0, "the collector pays in");
        assert!(transfers[2] > 0.0, "the contributor receives");
    }

    #[test]
    fn status_quo_distance_detects_alignment() {
        // If fees already arrive in Shapley proportion, distance is zero.
        let s = scenario();
        let phi = s.shapley_shares();
        let aligned = FeePool::new(phi.iter().map(|p| p * 1000.0).collect());
        assert!(aligned.status_quo_distance(&s, &SharingScheme::Shapley) < 1e-9);
        // Worst case: everything collected by the smallest contributor.
        let skewed = FeePool::new(vec![1000.0, 0.0, 0.0]);
        assert!(skewed.status_quo_distance(&s, &SharingScheme::Shapley) > 1.5);
    }

    #[test]
    fn empty_pool_is_harmless() {
        let pool = FeePool::new(vec![0.0; 3]);
        assert_eq!(pool.total(), 0.0);
        assert_eq!(pool.status_quo_distance(&scenario(), &SharingScheme::Equal), 0.0);
    }
}
