#![deny(missing_docs)]

//! Federation policy design on top of the economic model: sharing-scheme
//! comparison, provision incentives (Fig. 9), best-response equilibria of
//! the provision game (§3.3), and organizer-facing reports.
//!
//! The paper's practical recommendation is to compute Shapley shares
//! off-line for the expected demand mixture and use them as policy weights;
//! this crate is that tooling.
//!
//! ```
//! use fedval_core::{paper_facilities, Demand, ExperimentClass, FederationScenario};
//! use fedval_policy::{policy_report, SharingScheme};
//!
//! let scenario = FederationScenario::new(
//!     paper_facilities([1, 1, 1]),
//!     Demand::one_experiment(ExperimentClass::simple("meas", 500.0, 1.0)),
//! );
//! let report = policy_report(&scenario);
//! println!("{}", report.render());
//! let phi = SharingScheme::Shapley.shares(&scenario);
//! assert!((phi[1] - 2.0 / 13.0).abs() < 1e-12);
//! ```

mod compare;
mod equilibrium;
mod fees;
mod hierarchy;
mod incentives;
mod mixture;
mod report;
mod scheme;
mod smoothing;

pub use compare::{assess_tau, compare_schemes, SchemeAssessment};
pub use equilibrium::{best_response_dynamics, Equilibrium};
pub use fees::FeePool;
pub use hierarchy::{hierarchical_shapley, HierarchicalShares};
pub use incentives::{incentive_curve, marginal_payoffs, peak_marginal, IncentivePoint};
pub use mixture::{
    classify_requests, demand_from_mixture, fitted_policy, Category, MixtureEstimate,
};
pub use report::{
    policy_report, policy_report_measured, try_policy_report, try_policy_report_measured,
    FormationSection, PolicyReport,
};
pub use scheme::SharingScheme;
pub use smoothing::{
    max_jump, smoothed_incentive_curve, smoothing_benefit, threshold_smoothed_shares,
};
