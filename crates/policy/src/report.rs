//! Human-readable policy reports for federation organizers.

use crate::compare::{compare_schemes, SchemeAssessment};
use crate::scheme::SharingScheme;
use fedval_coalition::GameDiagnostics;
use fedval_core::FederationScenario;
use std::fmt::Write as _;

/// A rendered policy report: scenario diagnostics plus a scheme table.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Grand-coalition value `V(N)`.
    pub grand_value: f64,
    /// Whether the core is non-empty (grand coalition stable at all).
    pub core_nonempty: bool,
    /// Structural game properties.
    pub superadditive: bool,
    /// Convexity (⇒ core non-empty, Shapley in core).
    pub convex: bool,
    /// Per-scheme assessments.
    pub assessments: Vec<SchemeAssessment>,
    /// Measurement provenance, when the scenario's game was measured
    /// empirically (fault injection, fallbacks, retries); `None` for
    /// closed-form games.
    pub measurement: Option<GameDiagnostics>,
}

/// Builds the report for all built-in schemes.
pub fn policy_report(scenario: &FederationScenario) -> PolicyReport {
    let _report_span = fedval_obs::span("policy.report.build");
    let (props, core_nonempty) = {
        let _span = fedval_obs::span("policy.report.properties");
        (scenario.properties(), scenario.core_nonempty())
    };
    let assessments = {
        let _span = fedval_obs::span("policy.report.schemes");
        compare_schemes(scenario, &SharingScheme::all_builtin())
    };
    PolicyReport {
        grand_value: scenario.grand_value(),
        core_nonempty,
        superadditive: props.superadditive,
        convex: props.convex,
        assessments,
        measurement: None,
    }
}

/// Builds the report for a scenario whose game was *measured* (e.g. by
/// `fedval-testbed`'s fault-injected empirical pipeline), attaching the
/// measurement diagnostics so the rendered report discloses how much of
/// the game was actually observed versus substituted by fallbacks.
pub fn policy_report_measured(
    scenario: &FederationScenario,
    diagnostics: GameDiagnostics,
) -> PolicyReport {
    let mut report = policy_report(scenario);
    report.measurement = Some(diagnostics);
    report
}

impl PolicyReport {
    /// The scheme the report recommends: the in-core scheme closest to
    /// contribution-proportionality, falling back to Shapley (the paper's
    /// default recommendation) when the core is empty or nothing lands in
    /// it.
    pub fn recommended(&self) -> &str {
        self.assessments
            .iter()
            .filter(|a| a.in_core == Some(true))
            .min_by(|a, b| {
                a.distance_from_proportional
                    .total_cmp(&b.distance_from_proportional)
            })
            .map(|a| a.scheme.as_str())
            .unwrap_or("shapley")
    }

    /// Renders a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "federation value V(N) = {:.2}", self.grand_value);
        let _ = writeln!(
            out,
            "game: superadditive={} convex={} core_nonempty={}",
            self.superadditive, self.convex, self.core_nonempty
        );
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12} {:<8} shares",
            "scheme", "max_excess", "dist_from_pi", "in_core"
        );
        for a in &self.assessments {
            let core = match a.in_core {
                Some(true) => "yes",
                Some(false) => "no",
                None => "n/a",
            };
            let shares = a
                .shares
                .iter()
                .map(|s| format!("{s:.3}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:<14} {:>10.2} {:>12.4} {:<8} [{shares}]",
                a.scheme, a.max_excess, a.distance_from_proportional, core
            );
        }
        if let Some(m) = &self.measurement {
            let _ = writeln!(out, "measurement: {}", m.summary());
            if m.fallbacks_used() > 0 {
                let _ = writeln!(
                    out,
                    "warning: {} coalition value(s) are conservative fallbacks, not measurements",
                    m.fallbacks_used()
                );
            }
        }
        let _ = writeln!(out, "recommended: {}", self.recommended());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{paper_facilities, Demand, ExperimentClass};

    fn scenario(l: f64) -> FederationScenario {
        FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", l, 1.0)),
        )
    }

    #[test]
    fn report_contains_all_schemes() {
        let r = policy_report(&scenario(500.0));
        assert_eq!(r.assessments.len(), 5);
        let text = r.render();
        for name in [
            "shapley",
            "proportional",
            "consumption",
            "nucleolus",
            "equal",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn recommendation_prefers_core_membership() {
        // l = 1250: only grand coalition works, everything proportional-ish
        // is out of core except symmetric allocations; equal split IS the
        // core here, and it's also closest-to-pi among in-core schemes.
        let r = policy_report(&scenario(1250.0));
        assert!(r.core_nonempty);
        let rec = r.recommended();
        let rec_entry = r.assessments.iter().find(|a| a.scheme == rec).unwrap();
        assert_eq!(rec_entry.in_core, Some(true));
    }

    #[test]
    fn measured_reports_disclose_fallbacks() {
        use fedval_coalition::{Coalition, CoalitionDiagnostics, ValueSource};
        let s = scenario(500.0);
        let mut records: Vec<CoalitionDiagnostics> = (0..8u64)
            .map(|m| CoalitionDiagnostics::clean(Coalition(m)))
            .collect();
        records[7].source = ValueSource::SubCoalitionFallback(Coalition(3));
        records[7].error = Some("simulation wedged".into());
        records[5].faults_injected = 3;
        let r = policy_report_measured(
            &s,
            GameDiagnostics {
                per_coalition: records,
            },
        );
        let text = r.render();
        assert!(text.contains("measurement:"), "{text}");
        assert!(text.contains("1 fallbacks"), "{text}");
        assert!(text.contains("warning:"), "{text}");
        // Closed-form reports stay silent about measurement.
        let clean = policy_report(&s);
        assert!(!clean.render().contains("measurement:"));
    }

    #[test]
    fn recommendation_falls_back_to_shapley() {
        // Concave threshold-free game: empty core ⇒ shapley fallback.
        let s = FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", 0.0, 0.5)),
        );
        if !s.core_nonempty() {
            let r = policy_report(&s);
            assert_eq!(r.recommended(), "shapley");
        }
    }
}
