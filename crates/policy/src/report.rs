//! Human-readable policy reports for federation organizers.

use crate::compare::{compare_schemes, SchemeAssessment};
use crate::scheme::SharingScheme;
use fedval_coalition::{
    ApproxShapley, CoalitionError, CoalitionalGame, GameDiagnostics, ShapleyEstimate,
    NUCLEOLUS_MAX_PLAYERS,
};
use fedval_core::FederationScenario;
use std::fmt::Write as _;

/// A rendered policy report: scenario diagnostics plus a scheme table.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Grand-coalition value `V(N)`.
    pub grand_value: f64,
    /// Whether the core is non-empty (grand coalition stable at all).
    /// Meaningless when [`structure_known`](PolicyReport::structure_known)
    /// is false.
    pub core_nonempty: bool,
    /// Structural game properties.
    pub superadditive: bool,
    /// Convexity (⇒ core non-empty, Shapley in core).
    pub convex: bool,
    /// Whether the structural fields above were actually computed. False
    /// for federations past the exact-enumeration caps, where the report
    /// is built from the sampled Shapley estimate instead.
    pub structure_known: bool,
    /// Per-scheme assessments.
    pub assessments: Vec<SchemeAssessment>,
    /// The sampled-Shapley certificate (per-player CI, budget, seed) when
    /// the Shapley column came from the estimator rather than exact
    /// enumeration; `None` for exact reports.
    pub approx: Option<ApproxShapley>,
    /// Measurement provenance, when the scenario's game was measured
    /// empirically (fault injection, fallbacks, retries); `None` for
    /// closed-form games.
    pub measurement: Option<GameDiagnostics>,
    /// Formation-dynamics summary (convergence, stability, payoff
    /// regret), when a `fedval-form` merge/split run accompanied the
    /// report; `None` for static grand-coalition reports.
    pub formation: Option<FormationSection>,
}

/// Summary of a dynamic coalition-formation run (`fedval-form`) attached
/// to a policy report: did the partition converge, is it merge/split
/// stable, and how far do realized payoffs sit from the Shapley promise.
#[derive(Debug, Clone, PartialEq)]
pub struct FormationSection {
    /// Rounds executed.
    pub rounds: usize,
    /// First quiescent round, if the dynamics converged.
    pub converged_round: Option<usize>,
    /// Total merge operations.
    pub merges: usize,
    /// Total split operations.
    pub splits: usize,
    /// No examined pair of coalitions gains by merging.
    pub merge_stable: bool,
    /// No examined bipartition of a coalition gains by splitting.
    pub split_stable: bool,
    /// Whether the stability probe covered the full candidate space.
    pub stability_exhaustive: bool,
    /// Final coalition count.
    pub coalitions: usize,
    /// Final member count.
    pub members: usize,
    /// Largest |promised − realized| across surviving authorities.
    pub max_abs_regret: f64,
    /// Mean |promised − realized| across surviving authorities.
    pub mean_abs_regret: f64,
    /// The run's combined trajectory+payoff fingerprint.
    pub fingerprint: u64,
}

/// Builds the report for all built-in schemes.
pub fn policy_report(scenario: &FederationScenario) -> PolicyReport {
    let _report_span = fedval_obs::span("policy.report.build");
    let (props, core_nonempty) = {
        let _span = fedval_obs::span("policy.report.properties");
        (scenario.properties(), scenario.core_nonempty())
    };
    let assessments = {
        let _span = fedval_obs::span("policy.report.schemes");
        compare_schemes(scenario, &SharingScheme::all_builtin())
    };
    PolicyReport {
        grand_value: scenario.grand_value(),
        core_nonempty,
        superadditive: props.superadditive,
        convex: props.convex,
        structure_known: true,
        assessments,
        approx: None,
        measurement: None,
        formation: None,
    }
}

/// Builds the report for a scenario whose game was *measured* (e.g. by
/// `fedval-testbed`'s fault-injected empirical pipeline), attaching the
/// measurement diagnostics so the rendered report discloses how much of
/// the game was actually observed versus substituted by fallbacks.
pub fn policy_report_measured(
    scenario: &FederationScenario,
    diagnostics: GameDiagnostics,
) -> PolicyReport {
    let mut report = policy_report(scenario);
    report.measurement = Some(diagnostics);
    report
}

/// [`policy_report`] behind the solver-selection layer: full exact reports
/// below the enumeration caps, a degraded sampled-Shapley report above
/// them (or when `--approx` forces sampling).
///
/// The degraded report keeps every column that does not require `2^n`
/// enumeration — Shapley (sampled, with its confidence-interval
/// certificate), proportional, consumption, and equal shares plus their
/// distance-from-π — and marks the rest unknown: `structure_known` is
/// false, `in_core` is `None`, `max_excess` is NaN, and the nucleolus row
/// is omitted (its LP is exponential in `n`).
///
/// # Errors
/// Propagates [`CoalitionError`]s from the estimator (malformed sampling
/// configuration, or more players than even the sampled path supports).
pub fn try_policy_report(scenario: &FederationScenario) -> Result<PolicyReport, CoalitionError> {
    let n = scenario.facilities().len();
    if !scenario.approx_config().force && n <= NUCLEOLUS_MAX_PLAYERS {
        return Ok(policy_report(scenario));
    }
    approx_report(scenario)
}

/// [`try_policy_report`] with measurement diagnostics attached, the
/// large-`n`-safe counterpart of [`policy_report_measured`].
///
/// # Errors
/// Same as [`try_policy_report`].
pub fn try_policy_report_measured(
    scenario: &FederationScenario,
    diagnostics: GameDiagnostics,
) -> Result<PolicyReport, CoalitionError> {
    let mut report = try_policy_report(scenario)?;
    report.measurement = Some(diagnostics);
    Ok(report)
}

/// The degraded (no-enumeration) report path.
fn approx_report(scenario: &FederationScenario) -> Result<PolicyReport, CoalitionError> {
    let _report_span = fedval_obs::span("policy.report.build_approx");
    let n = scenario.facilities().len();
    let (shapley_shares, approx, grand_value) = match scenario.shapley_estimate()? {
        ShapleyEstimate::Exact(phi) => {
            // Exact selection past the nucleolus cap (13..=16 players):
            // the table exists, only the enumeration-heavy columns drop.
            let grand = scenario.try_game()?.grand_value();
            let shares = if grand.abs() < 1e-12 {
                vec![0.0; phi.len()]
            } else {
                phi.iter().map(|v| v / grand).collect()
            };
            (shares, None, grand)
        }
        ShapleyEstimate::Approx(a) => (a.shares(), Some(a.clone()), a.grand_value),
    };
    let pi = scenario.proportional_shares();
    let dist = |shares: &[f64]| -> f64 {
        shares.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum()
    };
    let rows: [(&str, Vec<f64>); 4] = [
        ("shapley", shapley_shares),
        ("proportional", pi.clone()),
        ("consumption", scenario.consumption_shares()),
        ("equal", fedval_core::sharing::normalized(vec![1.0; n])),
    ];
    let assessments = rows
        .into_iter()
        .map(|(name, shares)| SchemeAssessment {
            scheme: name.to_string(),
            distance_from_proportional: dist(&shares),
            shares,
            in_core: None,
            max_excess: f64::NAN,
        })
        .collect();
    Ok(PolicyReport {
        grand_value,
        core_nonempty: false,
        superadditive: false,
        convex: false,
        structure_known: false,
        assessments,
        approx,
        measurement: None,
        formation: None,
    })
}

impl PolicyReport {
    /// Attaches a formation-dynamics summary (builder style).
    #[must_use]
    pub fn with_formation(mut self, section: FormationSection) -> PolicyReport {
        self.formation = Some(section);
        self
    }

    /// The scheme the report recommends: the in-core scheme closest to
    /// contribution-proportionality, falling back to Shapley (the paper's
    /// default recommendation) when the core is empty or nothing lands in
    /// it.
    pub fn recommended(&self) -> &str {
        self.assessments
            .iter()
            .filter(|a| a.in_core == Some(true))
            .min_by(|a, b| {
                a.distance_from_proportional
                    .total_cmp(&b.distance_from_proportional)
            })
            .map(|a| a.scheme.as_str())
            .unwrap_or("shapley")
    }

    /// Renders a fixed-width text table.
    ///
    /// Approx reports print the scheme rows with `n/a` stability columns,
    /// elide long share vectors after the first eight entries, and append
    /// the estimator's certificate line (method, budget, seed, CI).
    pub fn render(&self) -> String {
        const SHOWN_SHARES: usize = 8;
        let mut out = String::new();
        let _ = writeln!(out, "federation value V(N) = {:.2}", self.grand_value);
        if self.structure_known {
            let _ = writeln!(
                out,
                "game: superadditive={} convex={} core_nonempty={}",
                self.superadditive, self.convex, self.core_nonempty
            );
        } else {
            let n = self.assessments.first().map_or(0, |a| a.shares.len());
            let _ = writeln!(
                out,
                "game: structure not enumerated (n={n} players exceeds the exact caps)"
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12} {:<8} shares",
            "scheme", "max_excess", "dist_from_pi", "in_core"
        );
        for a in &self.assessments {
            let core = match a.in_core {
                Some(true) => "yes",
                Some(false) => "no",
                None => "n/a",
            };
            let excess = if a.max_excess.is_nan() {
                "n/a".to_string()
            } else {
                format!("{:.2}", a.max_excess)
            };
            let mut shares = a
                .shares
                .iter()
                .take(SHOWN_SHARES)
                .map(|s| format!("{s:.3}"))
                .collect::<Vec<_>>()
                .join(" ");
            if a.shares.len() > SHOWN_SHARES {
                let _ = write!(shares, " … +{} more", a.shares.len() - SHOWN_SHARES);
            }
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>12.4} {:<8} [{shares}]",
                a.scheme, excess, a.distance_from_proportional, core
            );
        }
        if let Some(a) = &self.approx {
            let max_ci = a.ci_shares().into_iter().fold(0.0f64, f64::max);
            let _ = writeln!(
                out,
                "shapley: sampled ({}, {} samples, seed {}); {:.0}% CI half-width ≤ {:.4} of V(N)",
                a.method.as_str(),
                a.samples,
                a.seed,
                a.confidence * 100.0,
                max_ci
            );
        }
        if let Some(f) = &self.formation {
            let converged = match f.converged_round {
                Some(k) => format!("round {k}/{}", f.rounds),
                None => format!("no ({} rounds)", f.rounds),
            };
            let _ = writeln!(
                out,
                "formation: converged={converged} merges={} splits={} \
merge_stable={} split_stable={} ({}) partition={}x{}",
                f.merges,
                f.splits,
                f.merge_stable,
                f.split_stable,
                if f.stability_exhaustive {
                    "exhaustive"
                } else {
                    "sampled"
                },
                f.coalitions,
                f.members,
            );
            let _ = writeln!(
                out,
                "formation: payoff regret max|r|={:.4} mean|r|={:.4} fingerprint={:016x}",
                f.max_abs_regret, f.mean_abs_regret, f.fingerprint
            );
        }
        if let Some(m) = &self.measurement {
            let _ = writeln!(out, "measurement: {}", m.summary());
            if m.fallbacks_used() > 0 {
                let _ = writeln!(
                    out,
                    "warning: {} coalition value(s) are conservative fallbacks, not measurements",
                    m.fallbacks_used()
                );
            }
        }
        let _ = writeln!(out, "recommended: {}", self.recommended());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{paper_facilities, Demand, ExperimentClass};

    fn scenario(l: f64) -> FederationScenario {
        FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", l, 1.0)),
        )
    }

    #[test]
    fn report_contains_all_schemes() {
        let r = policy_report(&scenario(500.0));
        assert_eq!(r.assessments.len(), 5);
        let text = r.render();
        for name in [
            "shapley",
            "proportional",
            "consumption",
            "nucleolus",
            "equal",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn recommendation_prefers_core_membership() {
        // l = 1250: only grand coalition works, everything proportional-ish
        // is out of core except symmetric allocations; equal split IS the
        // core here, and it's also closest-to-pi among in-core schemes.
        let r = policy_report(&scenario(1250.0));
        assert!(r.core_nonempty);
        let rec = r.recommended();
        let rec_entry = r.assessments.iter().find(|a| a.scheme == rec).unwrap();
        assert_eq!(rec_entry.in_core, Some(true));
    }

    #[test]
    fn measured_reports_disclose_fallbacks() {
        use fedval_coalition::{Coalition, CoalitionDiagnostics, ValueSource};
        let s = scenario(500.0);
        let mut records: Vec<CoalitionDiagnostics> = (0..8u64)
            .map(|m| CoalitionDiagnostics::clean(Coalition(m)))
            .collect();
        records[7].source = ValueSource::SubCoalitionFallback(Coalition(3));
        records[7].error = Some("simulation wedged".into());
        records[5].faults_injected = 3;
        let r = policy_report_measured(
            &s,
            GameDiagnostics {
                per_coalition: records,
            },
        );
        let text = r.render();
        assert!(text.contains("measurement:"), "{text}");
        assert!(text.contains("1 fallbacks"), "{text}");
        assert!(text.contains("warning:"), "{text}");
        // Closed-form reports stay silent about measurement.
        let clean = policy_report(&s);
        assert!(!clean.render().contains("measurement:"));
    }

    #[test]
    fn try_report_matches_exact_path_below_the_caps() {
        let s = scenario(500.0);
        let r = try_policy_report(&s).expect("small scenario");
        assert!(r.structure_known);
        assert!(r.approx.is_none());
        assert_eq!(r.assessments.len(), 5);
        assert_eq!(r.render(), policy_report(&s).render());
    }

    #[test]
    fn large_federation_reports_with_certificate() {
        use fedval_coalition::ApproxConfig;
        use fedval_core::Facility;
        // 40 facilities: far past every exact cap. Non-overlapping location
        // blocks, 4–8 locations each, threshold 50 ⇒ position-dependent
        // marginals.
        let facilities: Vec<Facility> = (0..40u32)
            .map(|i| Facility::uniform(format!("f{i}"), 16 * i, 4 + (i % 5), 1))
            .collect();
        let s = FederationScenario::new(
            facilities,
            Demand::one_experiment(ExperimentClass::simple("e", 50.0, 1.0)),
        )
        .with_approx(ApproxConfig {
            samples: 64,
            seed: 7,
            ..ApproxConfig::default()
        })
        .with_threads(4);
        let r = try_policy_report(&s).expect("sampled path");
        assert!(!r.structure_known);
        let a = r.approx.as_ref().expect("certificate attached");
        assert_eq!(a.samples, 64);
        assert_eq!(a.seed, 7);
        assert!(r.grand_value > 0.0);
        // Nucleolus is out of reach; the four enumeration-free schemes stay.
        assert_eq!(r.assessments.len(), 4);
        assert!(r.assessments.iter().all(|x| x.scheme != "nucleolus"));
        assert!(r.assessments.iter().all(|x| x.max_excess.is_nan()));
        assert!(r.assessments.iter().all(|x| x.in_core.is_none()));
        let phi: f64 = r.assessments[0].shares.iter().sum();
        assert!((phi - 1.0).abs() < 1e-9, "normalized shares sum to {phi}");
        assert_eq!(r.recommended(), "shapley");
        let text = r.render();
        assert!(text.contains("structure not enumerated"), "{text}");
        assert!(text.contains("sampled (permutation, 64 samples, seed 7)"), "{text}");
        assert!(text.contains("+32 more"), "{text}");
        assert!(text.contains("n/a"), "{text}");
        // Determinism: the whole report is a pure function of the config.
        let again = try_policy_report(&s).expect("sampled path");
        assert_eq!(again.render(), text);
    }

    #[test]
    fn force_flag_routes_small_scenarios_through_the_estimator() {
        use fedval_coalition::ApproxConfig;
        let s = scenario(500.0).with_approx(ApproxConfig {
            samples: 4096,
            seed: 11,
            force: true,
            ..ApproxConfig::default()
        });
        let r = try_policy_report(&s).expect("forced approx");
        assert!(!r.structure_known);
        let a = r.approx.as_ref().expect("certificate");
        // The CI must cover the exact normalized values (1/26, 2/13, 21/26).
        let exact = [1.0 / 26.0, 2.0 / 13.0, 21.0 / 26.0];
        let shares = &r.assessments[0].shares;
        let ci = a.ci_shares();
        for ((s_hat, e), half) in shares.iter().zip(exact).zip(&ci) {
            assert!(
                (s_hat - e).abs() <= half + 1e-9,
                "|{s_hat} - {e}| > {half}"
            );
        }
    }

    #[test]
    fn measured_variant_attaches_diagnostics_on_the_approx_path() {
        use fedval_coalition::{ApproxConfig, Coalition, CoalitionDiagnostics};
        let s = scenario(500.0).with_approx(ApproxConfig {
            force: true,
            ..ApproxConfig::default()
        });
        let diags = GameDiagnostics {
            per_coalition: (0..8u64)
                .map(|m| CoalitionDiagnostics::clean(Coalition(m)))
                .collect(),
        };
        let r = try_policy_report_measured(&s, diags).expect("forced approx");
        assert!(r.measurement.is_some());
        assert!(r.render().contains("measurement:"));
    }

    #[test]
    fn recommendation_falls_back_to_shapley() {
        // Concave threshold-free game: empty core ⇒ shapley fallback.
        let s = FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", 0.0, 0.5)),
        );
        if !s.core_nonempty() {
            let r = policy_report(&s);
            assert_eq!(r.recommended(), "shapley");
        }
    }
}
