//! Sharing schemes as first-class policy objects.

use fedval_core::FederationScenario;
use serde::{Deserialize, Serialize};

/// A profit/value sharing scheme — the `s = {s₁, …, s_N}` of §3.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SharingScheme {
    /// Normalized Shapley value ϕ̂ (eq. 5) — the paper's proposal.
    Shapley,
    /// Contribution-proportional π̂ (eq. 6).
    Proportional,
    /// Consumption-proportional ρ̂ (eq. 7).
    Consumption,
    /// Nucleolus-based shares (§3.2.3).
    Nucleolus,
    /// Equal split (the "equity approach").
    Equal,
    /// Externally fixed weights (e.g. ϕ̂ computed off-line on expected
    /// demand, as the paper recommends for practical policy).
    Fixed(Vec<f64>),
}

impl SharingScheme {
    /// Short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            SharingScheme::Shapley => "shapley",
            SharingScheme::Proportional => "proportional",
            SharingScheme::Consumption => "consumption",
            SharingScheme::Nucleolus => "nucleolus",
            SharingScheme::Equal => "equal",
            SharingScheme::Fixed(_) => "fixed",
        }
    }

    /// Normalized shares under this scheme for a scenario.
    ///
    /// # Panics
    /// Panics if `Fixed` weights have the wrong length.
    pub fn shares(&self, scenario: &FederationScenario) -> Vec<f64> {
        let n = scenario.facilities().len();
        match self {
            SharingScheme::Shapley => scenario.shapley_shares(),
            SharingScheme::Proportional => scenario.proportional_shares(),
            SharingScheme::Consumption => scenario.consumption_shares(),
            SharingScheme::Nucleolus => scenario.nucleolus_shares(),
            SharingScheme::Equal => fedval_core::sharing::normalized(vec![1.0; n]),
            SharingScheme::Fixed(w) => {
                assert_eq!(w.len(), n, "fixed weights length mismatch");
                fedval_core::sharing::normalized(w.clone())
            }
        }
    }

    /// Monetary payoffs `vᵢ = sᵢ·V(N)`.
    pub fn payoffs(&self, scenario: &FederationScenario) -> Vec<f64> {
        scenario.payoffs(&self.shares(scenario))
    }

    /// All built-in schemes, for sweep comparisons.
    pub fn all_builtin() -> Vec<SharingScheme> {
        vec![
            SharingScheme::Shapley,
            SharingScheme::Proportional,
            SharingScheme::Consumption,
            SharingScheme::Nucleolus,
            SharingScheme::Equal,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_core::{paper_facilities, Demand, ExperimentClass};

    fn scenario() -> FederationScenario {
        FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0)),
        )
    }

    #[test]
    fn every_builtin_scheme_sums_to_one() {
        let s = scenario();
        for scheme in SharingScheme::all_builtin() {
            let shares = scheme.shares(&s);
            let total: f64 = shares.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} sums to {total}",
                scheme.name()
            );
        }
    }

    #[test]
    fn shapley_and_proportional_match_paper() {
        let s = scenario();
        let phi = SharingScheme::Shapley.shares(&s);
        let pi = SharingScheme::Proportional.shares(&s);
        assert!((phi[1] - 2.0 / 13.0).abs() < 1e-12);
        assert!((pi[1] - 4.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_weights_are_normalized() {
        let s = scenario();
        let shares = SharingScheme::Fixed(vec![2.0, 2.0, 4.0]).shares(&s);
        assert!((shares[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn payoffs_scale_with_grand_value() {
        let s = scenario();
        let p = SharingScheme::Equal.payoffs(&s);
        assert!((p.iter().sum::<f64>() - 1300.0).abs() < 1e-9);
    }
}
