//! Adversarial-input properties for the wire protocol: the parser is
//! total — arbitrary byte garbage, truncated frames, and oversized
//! frames never panic, and every rejection is a typed
//! [`ProtocolError`] whose rendered response stays one clean frame.

use fedval_serve::protocol::{parse_request, render_err, ProtocolError, MAX_FRAME};
use proptest::prelude::*;

/// A syntactically valid request line to truncate and mutate.
fn valid_frames() -> Vec<&'static [u8]> {
    vec![
        b"{\"id\":1,\"kind\":\"health\"}".as_slice(),
        b"{\"id\":2,\"kind\":\"shapley\"}".as_slice(),
        b"{\"id\":3,\"kind\":\"coalition-value\",\"coalition\":[0,1,2]}".as_slice(),
        b"{\"id\":4,\"kind\":\"what-if-join\",\"locations\":200,\"capacity\":2}".as_slice(),
        b"{\"id\":5,\"kind\":\"what-if-leave\",\"player\":1}".as_slice(),
        b"{\"kind\":\"stats\"}".as_slice(),
    ]
}

/// Every error a rejection may carry; used to pin the typed-error
/// contract (no stringly-typed escapes).
fn known_code(err: &ProtocolError) -> bool {
    matches!(
        err.code(),
        "FRAME_TOO_LARGE" | "INVALID_UTF8" | "MALFORMED" | "MISSING_FIELD" | "BAD_FIELD"
            | "UNKNOWN_KIND"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..300)) {
        // Totality is the property: any outcome but a panic is fine,
        // and errors must carry a known machine-readable code.
        if let Err(err) = parse_request(&bytes) {
            prop_assert!(known_code(&err), "unknown error code {:?}", err.code());
        }
    }

    #[test]
    fn truncated_frames_never_panic(which in 0usize..6, cut in 0usize..64) {
        let frames = valid_frames();
        let frame = frames[which % frames.len()];
        let cut = cut.min(frame.len());
        let truncated = &frame[..cut];
        match parse_request(truncated) {
            // Only the empty prefix of nothing could parse; any other
            // prefix of a valid frame is an error, never a panic.
            Ok(_) => prop_assert!(cut == frame.len()),
            Err(err) => prop_assert!(known_code(&err)),
        }
    }

    #[test]
    fn mutated_frames_never_panic(
        which in 0usize..6,
        pos in 0usize..64,
        byte in 0u8..=255,
    ) {
        let frames = valid_frames();
        let mut frame = frames[which % frames.len()].to_vec();
        let pos = pos % frame.len();
        frame[pos] = byte;
        if let Err(err) = parse_request(&frame) {
            prop_assert!(known_code(&err));
        }
    }

    #[test]
    fn error_responses_are_single_clean_frames(
        bytes in prop::collection::vec(0u8..=255, 0..200),
        id in 0u64..1000,
    ) {
        if let Err(err) = parse_request(&bytes) {
            let line = render_err(Some(id), err.code(), &err.to_string());
            // The response must survive newline framing no matter what
            // bytes provoked it.
            prop_assert!(!line.contains('\n'), "embedded newline in {line:?}");
            let prefix = format!("{{\"id\":{id},\"ok\":false,");
            prop_assert!(line.starts_with(&prefix), "bad prefix: {}", line);
        }
    }
}

/// Oversized input is rejected (or at minimum handled) without panic —
/// the framing layer caps reads at [`MAX_FRAME`], but the parser must
/// also stay total if handed more.
#[test]
fn oversized_input_never_panics_the_parser() {
    let huge = vec![b'x'; MAX_FRAME * 2];
    assert!(parse_request(&huge).is_err());

    // A structurally valid but oversized request: the parser enforces
    // the frame bound itself, independently of the framing layer.
    let mut frame = b"{\"id\":1,\"kind\":\"".to_vec();
    frame.extend(std::iter::repeat(b'a').take(MAX_FRAME * 2));
    frame.extend_from_slice(b"\"}");
    let err = parse_request(&frame).expect_err("oversized");
    assert_eq!(err.code(), "FRAME_TOO_LARGE");
}
