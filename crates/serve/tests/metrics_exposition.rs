//! Loopback integration for the live-telemetry surfaces: the `metrics`
//! query (Prometheus-style exposition + ring buffer) and slow-request
//! exemplar tracing, checked end to end against a real server with a
//! recording trace sink.
//!
//! Runs as its own test binary so the process-global registry and sink
//! belong to this test alone.

use fedval_obs::{Record, RecordingSink};
use fedval_serve::state::ScenarioSpec;
use fedval_serve::{Server, ServerConfig, ServeState};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn roundtrip(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, request: &str) -> String {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    line.trim_end().to_string()
}

/// Pulls the JSON-escaped exposition text out of a metrics response and
/// un-escapes the newlines.
fn exposition_of(metrics_line: &str) -> String {
    metrics_line
        .split("\"exposition\":\"")
        .nth(1)
        .and_then(|rest| rest.split("\",\"ring\":").next())
        .expect("metrics payload carries an exposition")
        .replace("\\n", "\n")
}

#[test]
fn metrics_query_and_exemplar_trace_agree_on_the_trace_id() {
    let sink = RecordingSink::new();
    fedval_obs::install(Arc::new(sink.clone()));

    let state = ServeState::new(ScenarioSpec::paper_4_1(), 8);
    state.warm(1);
    let server = Server::start(
        state,
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            slow_trace: Duration::ZERO, // every compute request is an exemplar
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A slow (threshold zero) compute request must carry its trace id
    // in the response…
    let shapley = roundtrip(&mut reader, &mut stream, "{\"id\":1,\"kind\":\"shapley\"}");
    assert!(shapley.contains("\"ok\":true"), "{shapley}");
    let trace_id: u64 = shapley
        .split(",\"trace_id\":")
        .nth(1)
        .and_then(|rest| rest.trim_end_matches('}').parse().ok())
        .expect("slow response must carry a numeric trace_id");

    // …and the metrics query must return a well-formed exposition plus
    // the ring buffer.
    let metrics = roundtrip(&mut reader, &mut stream, "{\"id\":2,\"kind\":\"metrics\"}");
    assert!(
        metrics.starts_with("{\"id\":2,\"ok\":true,\"kind\":\"metrics\",\"uptime_s\":"),
        "{metrics}"
    );
    assert!(metrics.contains("\"ring\":["), "{metrics}");
    let exposition = exposition_of(&metrics);
    let mut req_ok = None;
    for line in exposition.lines() {
        if line.is_empty() || line.starts_with("# ") {
            continue;
        }
        let (name, value) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("sample line must be 'name value': {line:?}"));
        let bare = name.split('{').next().unwrap_or(name);
        assert!(
            bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "metric names must be sanitized: {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value must be numeric: {line:?}"
        );
        if name == "serve_req_ok" {
            req_ok = value.parse::<u64>().ok();
        }
    }
    assert!(
        req_ok.is_some_and(|v| v > 0),
        "exposition must report a nonzero serve_req_ok:\n{exposition}"
    );

    server.shutdown();
    fedval_obs::shutdown();

    // The trace sink saw the exemplar event for that same trace id…
    let records = sink.records();
    let exemplar_ids: Vec<String> = records
        .iter()
        .filter_map(|r| match r {
            Record::Event { name, fields } if name == "serve.trace.exemplar" => fields
                .iter()
                .find(|(k, _)| k == "trace_id")
                .map(|(_, v)| v.clone()),
            _ => None,
        })
        .collect();
    assert!(
        exemplar_ids.contains(&trace_id.to_string()),
        "exemplar events {exemplar_ids:?} must include response trace id {trace_id}"
    );
    // …and the replayed request span carries it in its detail.
    assert!(
        records.iter().any(|r| matches!(
            r,
            Record::SpanStart { name, detail: Some(d), .. }
                if name == "serve.request" && d.contains(&format!("trace_id={trace_id}"))
        )),
        "replayed serve.request span must carry trace_id={trace_id}"
    );
}
