//! End-to-end tests over a real loopback server: determinism across
//! connections, `BUSY` backpressure under saturation, and the
//! never-drop-without-a-response guarantee.

use fedval_serve::{ScenarioSpec, Server, ServerConfig, ServeState};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn connect(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (reader, stream)
}

fn ask(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, line: &str) -> String {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    response.trim_end().to_string()
}

#[test]
fn responses_are_byte_identical_across_connections() {
    let state = ServeState::new(ScenarioSpec::paper_4_1(), 8);
    state.warm(1);
    let server =
        Server::start(state, "127.0.0.1:0", ServerConfig::default()).expect("start server");

    let queries = [
        "{\"id\":7,\"kind\":\"shapley\"}",
        "{\"id\":7,\"kind\":\"nucleolus\"}",
        "{\"id\":7,\"kind\":\"coalition-value\",\"coalition\":[0,2]}",
        "{\"id\":7,\"kind\":\"what-if-join\",\"locations\":250,\"capacity\":1}",
        "{\"id\":7,\"kind\":\"what-if-leave\",\"player\":2}",
    ];
    // Same id on purpose: with the id pinned, the whole response line
    // must be byte-identical, across repeats and across connections.
    let (mut r1, mut s1) = connect(&server);
    let first: Vec<String> = queries.iter().map(|q| ask(&mut r1, &mut s1, q)).collect();
    let repeat: Vec<String> = queries.iter().map(|q| ask(&mut r1, &mut s1, q)).collect();
    assert_eq!(first, repeat, "same connection, same bytes");

    let (mut r2, mut s2) = connect(&server);
    let other: Vec<String> = queries.iter().map(|q| ask(&mut r2, &mut s2, q)).collect();
    assert_eq!(first, other, "different connection, same bytes");

    for line in &first {
        assert!(line.contains("\"ok\":true"), "unexpected error: {line}");
    }

    let report = server.shutdown();
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.abandoned, 0);
}

#[test]
fn saturation_yields_busy_and_every_request_gets_a_response() {
    // A deliberately slow scenario (11 players → each distinct what-if
    // join solves a 2^12-entry table) with the tightest possible
    // server: one worker, queue depth one. Flooding pipelined cache
    // misses must overflow the queue.
    let spec = ScenarioSpec {
        locations: vec![10; 11],
        capacities: vec![1; 11],
        threshold: 5.0,
        shape: 1.0,
        volume: Some(1),
    };
    let state = ServeState::new(spec, 16);
    let config = ServerConfig {
        threads: 1,
        queue_depth: 1,
        deadline: Duration::from_secs(120),
        ..ServerConfig::default()
    };
    let server = Server::start(state, "127.0.0.1:0", config).expect("start server");
    let (mut reader, mut stream) = connect(&server);

    // One pipelined burst of six distinct (uncached) what-ifs.
    let total = 6usize;
    let mut burst = String::new();
    for i in 0..total {
        burst.push_str(&format!(
            "{{\"id\":{i},\"kind\":\"what-if-join\",\"locations\":{},\"capacity\":1}}\n",
            20 + i
        ));
    }
    stream.write_all(burst.as_bytes()).expect("send burst");

    let mut ok = 0u64;
    let mut busy = 0u64;
    for _ in 0..total {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("recv");
        assert_ne!(n, 0, "connection dropped before every request was answered");
        if line.contains("\"ok\":true") {
            ok += 1;
        } else if line.contains("\"error\":\"BUSY\"") {
            busy += 1;
        } else {
            panic!("unexpected response under saturation: {}", line.trim_end());
        }
    }
    assert!(ok >= 1, "the in-flight request must complete");
    assert!(busy >= 1, "a full queue must refuse with BUSY, got {ok} ok");

    let report = server.shutdown();
    assert_eq!(report.busy, busy, "server-side BUSY tally must match");
    assert_eq!(report.abandoned, 0, "drain must leave no queued work behind");
}

#[test]
fn drain_answers_inflight_then_refuses_new_work() {
    let state = ServeState::new(ScenarioSpec::paper_4_1(), 8);
    state.warm(1);
    let server =
        Server::start(state, "127.0.0.1:0", ServerConfig::default()).expect("start server");
    let (mut reader, mut stream) = connect(&server);

    let bye = ask(&mut reader, &mut stream, "{\"id\":1,\"kind\":\"shutdown\"}");
    assert!(bye.contains("\"draining\":true"), "{bye}");

    // A fresh connection during/after drain is either refused outright
    // or answered with SHUTTING_DOWN — never silently hung.
    if let Ok(late) = TcpStream::connect(server.local_addr()) {
        late.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut w = late.try_clone().expect("clone");
        let _ = w.write_all(b"{\"id\":2,\"kind\":\"shapley\"}\n");
        let mut r = BufReader::new(late);
        let mut line = String::new();
        // EOF (0 bytes) and SHUTTING_DOWN are both clean refusals.
        if r.read_line(&mut line).unwrap_or(0) > 0 {
            assert!(line.contains("SHUTTING_DOWN"), "{line}");
        }
    }

    let report = server.wait();
    assert_eq!(report.abandoned, 0);
}
