//! Chaos robustness suite: a real loopback server under the seeded
//! fault injector must never panic, never leak a file descriptor,
//! never hang a worker, and keep serving byte-identical shapley
//! payloads on every surviving connection. The acceptance sweep runs
//! 24 distinct seeds; a proptest extends the claim to arbitrary seeds.

use fedval_serve::chaos::{self, ChaosConfig};
use fedval_serve::{ScenarioSpec, Server, ServerConfig, ServeState};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Socket tests in this binary run serially: fd accounting and
/// connection-cap assertions are cross-talk sensitive.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    match SERIAL.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A server with deliberately tight robustness deadlines so every
/// chaos defense actually fires inside a test-sized time budget.
fn tight_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        queue_depth: 64,
        deadline: Duration::from_secs(5),
        max_connections: 12,
        io_timeout: Duration::from_millis(120),
        frame_deadline: Duration::from_millis(400),
        idle_timeout: Duration::from_secs(5),
        chaos_panic: true,
        ..ServerConfig::default()
    }
}

fn start_server(config: ServerConfig) -> Server {
    let state = ServeState::new(ScenarioSpec::paper_4_1(), 8);
    state.warm(1);
    Server::start(state, "127.0.0.1:0", config).expect("bind loopback")
}

fn chaos_config(seed: u64, rounds: u32) -> ChaosConfig {
    ChaosConfig {
        seed,
        rounds,
        probe_every: 2,
        flood: 20,
        pipeline: 8,
        drip_delay: Duration::from_millis(2),
        hold: Duration::from_millis(320),
        client_timeout: Duration::from_secs(5),
        panic_injection: true,
        expect_stall_close: true,
    }
}

fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").map(|d| d.count()).unwrap_or(0)
}

fn connect(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .expect("write timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (reader, stream)
}

fn ask(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, line: &str) -> String {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    response.trim_end().to_string()
}

/// The acceptance sweep: 24 distinct seeds, each a full chaos campaign
/// against a fresh server. Every run must end with zero panics, zero
/// leaked fds, zero abandoned jobs, every worker drained, and the
/// determinism contract intact.
#[test]
fn chaos_campaign_survives_24_distinct_seeds() {
    let _guard = serial();
    let fds_before = open_fds();
    for seed in 0..24u64 {
        let server = start_server(tight_config());
        let addr = server.local_addr().to_string();
        let report = chaos::run(&addr, &chaos_config(seed, 5));
        assert!(
            report.passed(),
            "seed {seed}: probe_mismatches={} failures={:?}",
            report.probe_mismatches,
            report.failures
        );
        assert!(report.probes >= 3, "seed {seed}: probes must keep landing");
        assert_eq!(
            report.internal_answers,
            report.injected[7],
            "seed {seed}: every injected panic must come back as a typed INTERNAL"
        );

        // Worker supervision: restarts cover at least the injected panics.
        let restarts = server
            .stats()
            .worker_restarts
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            restarts >= report.injected[7],
            "seed {seed}: {restarts} restarts < {} injected panics",
            report.injected[7]
        );

        // Drain: wait() joins every worker and reader — a hung thread
        // fails the test by hanging it, an unserved job by abandoned.
        let drain = server.shutdown();
        assert_eq!(drain.abandoned, 0, "seed {seed}: drain left queued work");
        assert_eq!(drain.open_conns, 0, "seed {seed}: drain leaked a connection");
    }
    // fd hygiene: after every server drained, the process must be back
    // to its baseline descriptor count (kernel cleanup can lag a tick).
    let mut fds_after = open_fds();
    for _ in 0..40 {
        if fds_after <= fds_before + 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
        fds_after = open_fds();
    }
    assert!(
        fds_after <= fds_before + 2,
        "fd leak across chaos sweep: {fds_before} before, {fds_after} after"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seed whatsoever: a short campaign must uphold the same
    /// invariants (the 24-seed sweep pins depth; this pins generality).
    #[test]
    fn chaos_campaign_survives_arbitrary_seeds(seed in any::<u64>()) {
        let _guard = serial();
        let server = start_server(tight_config());
        let addr = server.local_addr().to_string();
        let report = chaos::run(&addr, &chaos_config(seed, 3));
        prop_assert!(
            report.passed(),
            "seed {}: probe_mismatches={} failures={:?}",
            seed,
            report.probe_mismatches,
            report.failures
        );
        let drain = server.shutdown();
        prop_assert_eq!(drain.abandoned, 0);
        prop_assert_eq!(drain.open_conns, 0);
    }
}

/// A worker panic is never a lost request: the client gets `INTERNAL`,
/// the next health probe reports `degraded`, the one after `ok`, and
/// the shapley bytes never change across the incident.
#[test]
fn injected_panic_yields_internal_then_health_degrades_and_recovers() {
    let _guard = serial();
    let server = start_server(tight_config());
    let (mut reader, mut stream) = connect(&server);

    let canonical = ask(&mut reader, &mut stream, "{\"id\":5,\"kind\":\"shapley\"}");
    assert!(canonical.contains("\"ok\":true"), "{canonical}");

    let internal = ask(&mut reader, &mut stream, "{\"id\":6,\"kind\":\"chaos-panic\"}");
    assert!(
        internal.contains("\"error\":\"INTERNAL\""),
        "panic must surface as a typed error, got: {internal}"
    );

    let degraded = ask(&mut reader, &mut stream, "{\"id\":7,\"kind\":\"health\"}");
    assert!(
        degraded.contains("\"status\":\"degraded\"") && degraded.contains("\"worker_restarts\":"),
        "first probe after a restart must degrade, got: {degraded}"
    );
    let recovered = ask(&mut reader, &mut stream, "{\"id\":8,\"kind\":\"health\"}");
    assert!(
        recovered.contains("\"status\":\"ok\""),
        "second probe must acknowledge and recover, got: {recovered}"
    );

    let again = ask(&mut reader, &mut stream, "{\"id\":5,\"kind\":\"shapley\"}");
    assert_eq!(canonical, again, "a worker panic must not perturb cached bytes");

    // Counters surface in the stats payload (the operator's view).
    let stats = ask(&mut reader, &mut stream, "{\"id\":9,\"kind\":\"stats\"}");
    assert!(
        chaos::json_u64_field(&stats, "worker_restarts").unwrap_or(0) >= 1,
        "{stats}"
    );
    assert!(
        chaos::json_u64_field(&stats, "internal_errors").unwrap_or(0) >= 1,
        "{stats}"
    );

    let drain = server.shutdown();
    assert_eq!(drain.abandoned, 0);
    assert!(drain.worker_restarts >= 1);
}

/// Without `--chaos-harness` the panic query is refused, not honoured.
#[test]
fn chaos_panic_is_refused_when_harness_mode_is_off() {
    let _guard = serial();
    let server = start_server(ServerConfig {
        chaos_panic: false,
        ..tight_config()
    });
    let (mut reader, mut stream) = connect(&server);
    let refused = ask(&mut reader, &mut stream, "{\"id\":1,\"kind\":\"chaos-panic\"}");
    assert!(refused.contains("\"error\":\"BAD_REQUEST\""), "{refused}");
    let drain = server.shutdown();
    assert_eq!(drain.worker_restarts, 0, "no panic may reach a worker");
}

/// Connections over the accept-time cap are shed with one BUSY line and
/// an immediate close — and the shed counter is visible in stats.
#[test]
fn connection_cap_sheds_with_busy() {
    let _guard = serial();
    let server = start_server(ServerConfig {
        max_connections: 2,
        ..tight_config()
    });
    let (mut r1, mut s1) = connect(&server);
    let ok = ask(&mut r1, &mut s1, "{\"id\":1,\"kind\":\"health\"}");
    assert!(ok.contains("\"kind\":\"health\""), "{ok}");
    // The stats payload sources shed counts from the process-global
    // metric registry, which earlier tests in this binary also fed;
    // assert on the delta across the shed, not the absolute value.
    let before = ask(&mut r1, &mut s1, "{\"id\":10,\"kind\":\"stats\"}");
    let shed_before = chaos::json_u64_field(&before, "shed").expect("shed in stats");
    let (_r2, _s2) = connect(&server);

    // Third connection: over the cap, must get BUSY then EOF without
    // sending a byte.
    let over = TcpStream::connect(server.local_addr()).expect("connect");
    over.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut response = String::new();
    BufReader::new(over)
        .read_to_string(&mut response)
        .expect("shed line then EOF");
    assert!(
        response.contains("\"error\":\"BUSY\"") && response.contains("connection limit"),
        "expected an accept-time shed, got: {response:?}"
    );

    let stats = ask(&mut r1, &mut s1, "{\"id\":2,\"kind\":\"stats\"}");
    let shed_after = chaos::json_u64_field(&stats, "shed").expect("shed in stats");
    assert_eq!(shed_after - shed_before, 1, "{stats}");
    assert_eq!(chaos::json_u64_field(&stats, "max_connections"), Some(2), "{stats}");

    let drain = server.shutdown();
    assert_eq!(drain.shed, 1);
    assert_eq!(drain.open_conns, 0);
}

/// A frame stalled mid-read (slowloris) is closed with `SLOW_CLIENT`
/// once it stops making byte progress; the reader thread is freed.
#[test]
fn stalled_mid_frame_connection_is_closed() {
    let _guard = serial();
    let server = start_server(tight_config());
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(b"{\"id\":1,\"kind\":\"shap")
        .expect("send partial frame");
    // Stop sending. After one full io_timeout window with no progress
    // the server must close with SLOW_CLIENT (or a bare EOF).
    let mut tail = String::new();
    BufReader::new(stream)
        .read_to_string(&mut tail)
        .expect("server must close the stalled connection");
    assert!(
        tail.is_empty() || tail.contains("SLOW_CLIENT"),
        "unexpected close payload: {tail:?}"
    );

    // The slow-close is counted where operators can see it.
    let (mut reader, mut probe) = connect(&server);
    let stats = ask(&mut reader, &mut probe, "{\"id\":2,\"kind\":\"stats\"}");
    assert!(
        chaos::json_u64_field(&stats, "slow_closed").unwrap_or(0) >= 1,
        "{stats}"
    );

    let drain = server.shutdown();
    assert_eq!(drain.open_conns, 0);
}

/// A slow-but-live client (drip inside the frame deadline) must still
/// be served: timeouts punish stalls, not slowness.
#[test]
fn slow_drip_inside_the_deadline_is_served() {
    let _guard = serial();
    let server = start_server(tight_config());
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .expect("write timeout");
    let mut writer = stream.try_clone().expect("clone");
    for byte in b"{\"id\":3,\"kind\":\"health\"}\n" {
        writer
            .write_all(std::slice::from_ref(byte))
            .expect("drip byte");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("recv");
    assert!(line.contains("\"kind\":\"health\""), "{line}");
    server.shutdown();
}
