//! fedchaos: seeded, deterministic chaos injection for the serving
//! stack.
//!
//! A chaos run sits on the client side of a live `fedval-serve`
//! loopback socket and, driven entirely by one [`ChaosRng`] seed,
//! interleaves hostile connections (slow-drip writes, mid-frame
//! truncations, abrupt resets, byte mangling, stalled reads, connect
//! floods, deliberate worker panics) with *well-behaved probe
//! connections* that assert the service contract still holds:
//!
//! * the server answers probes with **byte-identical** `shapley`
//!   payloads (the determinism contract, checked from outside);
//! * every fault either gets a typed error response or a clean close —
//!   never a hang, never a panic;
//! * `health` keeps answering, reporting `degraded` after injected
//!   worker panics and recovering to `ok`.
//!
//! The same seed replays the same fault sequence in the same order, so
//! a failing seed from CI reproduces locally with one flag. The module
//! is used three ways: from the `fedchaos` binary (against a daemon),
//! from the `chaos_robustness` integration suite (against an in-process
//! [`Server`](crate::Server)), and as a library for future harnesses.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// xorshift64* — tiny, seeded, deterministic; no external RNG dep.
/// Shared by the chaos injector, `fedload`'s query stream, retry
/// jitter, and the open-loop arrival process so every stochastic choice
/// in the serving toolchain replays from one seed.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator; a zero seed is bumped to 1 (xorshift's one
    /// forbidden state).
    #[must_use]
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng(seed.max(1))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 mantissa bits of the draw, scaled into the unit interval.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The faults the injector knows how to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A valid frame written one byte at a time with a pause between
    /// bytes (slowloris). Slow but live: the server must serve it as
    /// long as it finishes inside the frame deadline.
    SlowDrip,
    /// Half a frame, then silence for `hold`. The server must close the
    /// connection (SLOW_CLIENT or EOF) instead of pinning the reader.
    SlowStall,
    /// Half a frame, then FIN. The truncated tail must get a typed
    /// error response, then a clean close.
    Truncate,
    /// A valid request whose response is never read; the socket is
    /// dropped with the response still in flight (RST on loopback).
    Reset,
    /// A valid frame with one byte corrupted: a typed parse error must
    /// come back and the connection must survive.
    Mangle,
    /// A pipelined burst whose responses are read only after a pause —
    /// exercises the server's write path against a lazy reader.
    StallRead,
    /// A burst of simultaneous connections; those over the server's
    /// connection cap must be shed with one `BUSY` line each.
    ConnectFlood,
    /// A `chaos-panic` query (server started with `--chaos-harness`):
    /// the worker must panic, recover, and answer `INTERNAL`.
    PanicInjection,
}

/// Tunables for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; the entire fault sequence derives from it.
    pub seed: u64,
    /// Fault rounds to run.
    pub rounds: u32,
    /// A well-behaved probe connection runs before round 0 and after
    /// every `probe_every` rounds (0 disables intermediate probes).
    pub probe_every: u32,
    /// Connections opened by one `ConnectFlood` round.
    pub flood: usize,
    /// Requests pipelined by one `StallRead` round.
    pub pipeline: usize,
    /// Pause between dripped bytes in a `SlowDrip` round.
    pub drip_delay: Duration,
    /// Silence window for `SlowStall` / read stall for `StallRead`.
    pub hold: Duration,
    /// Read/write timeout on the injector's own sockets — the harness
    /// must never hang even when the server misbehaves.
    pub client_timeout: Duration,
    /// Inject `chaos-panic` rounds (requires a `--chaos-harness`
    /// server; against a stock server the round expects BAD_REQUEST).
    pub panic_injection: bool,
    /// Whether `SlowStall` rounds wait for and require the server's
    /// close (true when the server runs with tight `io_timeout` /
    /// `frame_deadline`; false lets the round drop the socket itself
    /// after `hold`, for servers with production-long deadlines).
    pub expect_stall_close: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            rounds: 12,
            probe_every: 2,
            flood: 12,
            pipeline: 16,
            drip_delay: Duration::from_millis(3),
            hold: Duration::from_millis(300),
            client_timeout: Duration::from_secs(5),
            panic_injection: false,
            expect_stall_close: false,
        }
    }
}

/// What one chaos run observed. `failures` holds human-readable
/// invariant violations; an empty list (and zero probe mismatches)
/// means the server survived.
#[derive(Debug, Default, Clone)]
pub struct ChaosReport {
    /// Rounds executed per fault, in [`FaultKind`] declaration order:
    /// slow-drip, slow-stall, truncate, reset, mangle, stall-read,
    /// connect-flood, panic-injection.
    pub injected: [u64; 8],
    /// Well-behaved probe connections completed.
    pub probes: u64,
    /// Probe `shapley` responses that differed from the canonical bytes.
    pub probe_mismatches: u64,
    /// `INTERNAL` responses received for injected panics.
    pub internal_answers: u64,
    /// `BUSY`-at-accept shed lines observed during floods.
    pub shed_observed: u64,
    /// Valid (`ok` or typed-error) responses received across all fault
    /// connections.
    pub answered: u64,
    /// Invariant violations, empty on a clean run.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.probe_mismatches == 0
    }

    /// Renders the report as one JSON object (stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let names = [
            "slow_drip",
            "slow_stall",
            "truncate",
            "reset",
            "mangle",
            "stall_read",
            "connect_flood",
            "panic_injection",
        ];
        let injected: Vec<String> = names
            .iter()
            .zip(self.injected.iter())
            .map(|(n, c)| format!("\"{n}\":{c}"))
            .collect();
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            "{{\"passed\":{},\"injected\":{{{}}},\"probes\":{},\"probe_mismatches\":{},\"internal_answers\":{},\"shed_observed\":{},\"answered\":{},\"failures\":[{}]}}",
            self.passed(),
            injected.join(","),
            self.probes,
            self.probe_mismatches,
            self.internal_answers,
            self.shed_observed,
            self.answered,
            failures.join(",")
        )
    }
}

fn fault_index(kind: FaultKind) -> usize {
    match kind {
        FaultKind::SlowDrip => 0,
        FaultKind::SlowStall => 1,
        FaultKind::Truncate => 2,
        FaultKind::Reset => 3,
        FaultKind::Mangle => 4,
        FaultKind::StallRead => 5,
        FaultKind::ConnectFlood => 6,
        FaultKind::PanicInjection => 7,
    }
}

/// Opens one injector socket with both deadlines armed.
fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Sends `line` + newline and reads one response line.
fn roundtrip(stream: &mut TcpStream, line: &str) -> Result<String, String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    read_response(stream)
}

/// Reads one newline-terminated line from the socket (own tiny loop so
/// the caller keeps the raw `TcpStream`).
fn read_response(stream: &mut TcpStream) -> Result<String, String> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err("server closed before a full line".to_string()),
            Ok(_) => {
                if byte[0] == b'\n' {
                    return String::from_utf8(out).map_err(|e| format!("non-utf8 response: {e}"));
                }
                out.push(byte[0]);
                if out.len() > 1 << 20 {
                    return Err("unterminated response beyond 1 MiB".to_string());
                }
            }
            Err(e) => return Err(format!("recv: {e}")),
        }
    }
}

/// Extracts a `"name":123` unsigned field from a single-line JSON
/// payload (the server's own renderer emits no whitespace, so a plain
/// scan suffices). Returns `None` when absent or malformed.
#[must_use]
pub fn json_u64_field(line: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Fetches the server's `stats` payload over a fresh connection.
///
/// # Errors
/// Connection, send, or receive failures, rendered as strings.
pub fn fetch_stats(addr: &str, timeout: Duration) -> Result<String, String> {
    let mut stream = connect(addr, timeout)?;
    roundtrip(&mut stream, "{\"id\":0,\"kind\":\"stats\"}")
}

/// A well-behaved probe: health must answer, shapley must be
/// byte-identical to (or establish) the canonical response body.
fn probe(addr: &str, config: &ChaosConfig, canonical: &mut Option<String>, report: &mut ChaosReport) {
    // Retries absorb the small deregistration lag after fault rounds
    // (a dropped fault socket frees its connection-cap slot only once
    // the server reaps the reader), so probes never flake on BUSY.
    let mut last_err = String::new();
    for _ in 0..40 {
        match probe_once(addr, config, canonical, report) {
            Ok(()) => return,
            Err(e) if e.contains("BUSY") || e.contains("connect") => {
                last_err = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                report.failures.push(format!("probe: {e}"));
                return;
            }
        }
    }
    report.failures.push(format!("probe never got through: {last_err}"));
}

fn probe_once(
    addr: &str,
    config: &ChaosConfig,
    canonical: &mut Option<String>,
    report: &mut ChaosReport,
) -> Result<(), String> {
    let mut stream = connect(addr, config.client_timeout)?;
    let health = roundtrip(&mut stream, "{\"id\":1,\"kind\":\"health\"}")?;
    if health.contains("\"error\":\"BUSY\"") {
        return Err(format!("BUSY: {health}"));
    }
    if !health.contains("\"kind\":\"health\"") {
        return Err(format!("unexpected health response: {health}"));
    }
    let shapley = roundtrip(&mut stream, "{\"id\":1,\"kind\":\"shapley\"}")?;
    if shapley.contains("\"error\":\"BUSY\"") {
        return Err(format!("BUSY: {shapley}"));
    }
    if !shapley.contains("\"ok\":true") {
        return Err(format!("probe shapley failed: {shapley}"));
    }
    match canonical {
        None => *canonical = Some(shapley),
        Some(want) => {
            if *want != shapley {
                report.probe_mismatches += 1;
            }
        }
    }
    report.probes += 1;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Whether a response line is a well-formed answer (ok or typed error).
fn is_valid_response(line: &str) -> bool {
    line.starts_with("{\"id\":")
        && (line.contains("\"ok\":true") || line.contains("\"ok\":false"))
}

fn inject_slow_drip(addr: &str, config: &ChaosConfig, rng: &mut ChaosRng, report: &mut ChaosReport) {
    let mut stream = match connect(addr, config.client_timeout) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("slow-drip: {e}"));
            return;
        }
    };
    let id = 100 + rng.below(100);
    let frame = format!("{{\"id\":{id},\"kind\":\"shapley\"}}\n");
    for byte in frame.as_bytes() {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            report.failures.push("slow-drip: server closed a live (dripping) frame".to_string());
            return;
        }
        std::thread::sleep(config.drip_delay);
    }
    match read_response(&mut stream) {
        Ok(line) if is_valid_response(&line) => report.answered += 1,
        Ok(line) => report.failures.push(format!("slow-drip: invalid response: {line}")),
        Err(e) => report.failures.push(format!("slow-drip: no response to a completed frame: {e}")),
    }
}

fn inject_slow_stall(addr: &str, config: &ChaosConfig, rng: &mut ChaosRng, report: &mut ChaosReport) {
    let mut stream = match connect(addr, config.client_timeout) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("slow-stall: {e}"));
            return;
        }
    };
    let id = rng.below(1000);
    let partial = format!("{{\"id\":{id},\"kind\":\"shap");
    if stream.write_all(partial.as_bytes()).is_err() {
        return; // already closed: acceptable under load
    }
    std::thread::sleep(config.hold);
    if !config.expect_stall_close {
        return; // long-deadline server: just abandon the socket
    }
    // The server must have closed (or be about to close) this
    // connection: either a SLOW_CLIENT line then EOF, or a bare EOF.
    let mut tail = Vec::new();
    match stream.read_to_end(&mut tail) {
        Ok(_) => {
            let text = String::from_utf8_lossy(&tail);
            if !(tail.is_empty() || text.contains("SLOW_CLIENT")) {
                report
                    .failures
                    .push(format!("slow-stall: unexpected close payload: {text}"));
            }
        }
        Err(e) => report.failures.push(format!(
            "slow-stall: server kept a stalled frame open past hold+timeout: {e}"
        )),
    }
}

fn inject_truncate(addr: &str, config: &ChaosConfig, rng: &mut ChaosRng, report: &mut ChaosReport) {
    let mut stream = match connect(addr, config.client_timeout) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("truncate: {e}"));
            return;
        }
    };
    let id = rng.below(1000);
    let frame = format!("{{\"id\":{id},\"kind\":\"shapley\"}}");
    let cut = 1 + (rng.below(frame.len() as u64 - 1) as usize);
    if stream.write_all(&frame.as_bytes()[..cut]).is_err() {
        return;
    }
    let _ = stream.shutdown(Shutdown::Write); // FIN mid-frame
    match read_response(&mut stream) {
        Ok(line) if line.contains("\"ok\":false") => report.answered += 1,
        Ok(line) => report
            .failures
            .push(format!("truncate: expected a typed error, got: {line}")),
        Err(e) => report
            .failures
            .push(format!("truncate: no error response for a truncated frame: {e}")),
    }
}

fn inject_reset(addr: &str, config: &ChaosConfig, rng: &mut ChaosRng, report: &mut ChaosReport) {
    let mut stream = match connect(addr, config.client_timeout) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("reset: {e}"));
            return;
        }
    };
    let id = rng.below(1000);
    let _ = stream.write_all(format!("{{\"id\":{id},\"kind\":\"shapley\"}}\n").as_bytes());
    // Drop with the response unread: on loopback the pending receive
    // data turns the close into an RST, so the server's write path sees
    // a hard connection failure (counted in `write_failed`).
    drop(stream);
}

fn inject_mangle(addr: &str, config: &ChaosConfig, rng: &mut ChaosRng, report: &mut ChaosReport) {
    let mut stream = match connect(addr, config.client_timeout) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("mangle: {e}"));
            return;
        }
    };
    let id = rng.below(1000);
    let mut frame = format!("{{\"id\":{id},\"kind\":\"shapley\"}}").into_bytes();
    // Corrupt one byte strictly inside the frame (never the newline).
    let at = 1 + (rng.below(frame.len() as u64 - 2) as usize);
    frame[at] = b'#';
    frame.push(b'\n');
    if stream.write_all(&frame).is_err() {
        return;
    }
    match read_response(&mut stream) {
        Ok(line) if line.contains("\"ok\":false") => report.answered += 1,
        // A lucky mangle can still parse (e.g. inside the id digits):
        // an ok response is then legitimate.
        Ok(line) if line.contains("\"ok\":true") => report.answered += 1,
        Ok(line) => report.failures.push(format!("mangle: invalid response: {line}")),
        Err(e) => report
            .failures
            .push(format!("mangle: no response to a mangled frame: {e}")),
    }
}

fn inject_stall_read(addr: &str, config: &ChaosConfig, rng: &mut ChaosRng, report: &mut ChaosReport) {
    let mut stream = match connect(addr, config.client_timeout) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("stall-read: {e}"));
            return;
        }
    };
    let base = rng.below(10_000);
    let mut burst = String::new();
    for i in 0..config.pipeline {
        burst.push_str(&format!("{{\"id\":{},\"kind\":\"shapley\"}}\n", base + i as u64));
    }
    if stream.write_all(burst.as_bytes()).is_err() {
        return;
    }
    // Refuse to read while the server answers the whole burst.
    std::thread::sleep(config.hold);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..config.pipeline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // server gave up on the lazy reader: acceptable
            Ok(_) if is_valid_response(line.trim_end()) => report.answered += 1,
            Ok(_) => {
                report
                    .failures
                    .push(format!("stall-read: invalid response: {}", line.trim_end()));
                return;
            }
            Err(_) => return, // timeout draining the tail: acceptable
        }
    }
}

fn inject_connect_flood(addr: &str, config: &ChaosConfig, report: &mut ChaosReport) {
    let mut held: Vec<TcpStream> = Vec::new();
    for _ in 0..config.flood {
        match connect(addr, config.client_timeout) {
            Ok(s) => held.push(s),
            Err(_) => break, // backlog exhausted: the flood did its job
        }
    }
    // Each connection either serves a health probe or was shed with one
    // BUSY line at accept time; both are clean outcomes. Hangs are not.
    for mut stream in held {
        match roundtrip(&mut stream, "{\"id\":2,\"kind\":\"health\"}") {
            Ok(line) if line.contains("\"error\":\"BUSY\"") => report.shed_observed += 1,
            Ok(line) if line.contains("\"kind\":\"health\"") => report.answered += 1,
            Ok(line) => report.failures.push(format!("flood: invalid response: {line}")),
            // A shed socket may already carry the BUSY line + FIN; a
            // failed send/recv after shed is a clean refusal too.
            Err(_) => report.shed_observed += 1,
        }
    }
}

fn inject_panic(addr: &str, config: &ChaosConfig, rng: &mut ChaosRng, report: &mut ChaosReport) {
    let mut stream = match connect(addr, config.client_timeout) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(format!("panic-injection: {e}"));
            return;
        }
    };
    let id = rng.below(1000);
    match roundtrip(&mut stream, &format!("{{\"id\":{id},\"kind\":\"chaos-panic\"}}")) {
        Ok(line) if line.contains("\"error\":\"INTERNAL\"") => {
            report.internal_answers += 1;
            report.answered += 1;
        }
        Ok(line) if line.contains("\"error\":\"BAD_REQUEST\"") => {
            // Server without --chaos-harness: refusal is the contract.
            report.answered += 1;
        }
        Ok(line) => report
            .failures
            .push(format!("panic-injection: unexpected response: {line}")),
        Err(e) => report
            .failures
            .push(format!("panic-injection: worker panic lost the request: {e}")),
    }
}

/// Runs one full seeded chaos campaign against `addr` and reports what
/// it observed. Never panics and never hangs (every injector socket
/// carries both deadlines).
#[must_use]
pub fn run(addr: &str, config: &ChaosConfig) -> ChaosReport {
    let mut rng = ChaosRng::new(config.seed);
    let mut report = ChaosReport::default();
    let mut canonical: Option<String> = None;

    // Establish the canonical shapley bytes before any fault lands.
    probe(addr, config, &mut canonical, &mut report);

    let mut menu = vec![
        FaultKind::SlowDrip,
        FaultKind::SlowStall,
        FaultKind::Truncate,
        FaultKind::Reset,
        FaultKind::Mangle,
        FaultKind::StallRead,
        FaultKind::ConnectFlood,
    ];
    if config.panic_injection {
        menu.push(FaultKind::PanicInjection);
    }

    for round in 0..config.rounds {
        let kind = menu[rng.below(menu.len() as u64) as usize];
        report.injected[fault_index(kind)] += 1;
        match kind {
            FaultKind::SlowDrip => inject_slow_drip(addr, config, &mut rng, &mut report),
            FaultKind::SlowStall => inject_slow_stall(addr, config, &mut rng, &mut report),
            FaultKind::Truncate => inject_truncate(addr, config, &mut rng, &mut report),
            FaultKind::Reset => inject_reset(addr, config, &mut rng, &mut report),
            FaultKind::Mangle => inject_mangle(addr, config, &mut rng, &mut report),
            FaultKind::StallRead => inject_stall_read(addr, config, &mut rng, &mut report),
            FaultKind::ConnectFlood => inject_connect_flood(addr, config, &mut report),
            FaultKind::PanicInjection => inject_panic(addr, config, &mut rng, &mut report),
        }
        if config.probe_every > 0 && (round + 1) % config.probe_every == 0 {
            probe(addr, config, &mut canonical, &mut report);
        }
    }

    // Final probe: the server must still be serving canonical bytes
    // after the full campaign.
    probe(addr, config, &mut canonical, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        let mut c = ChaosRng::new(8);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
        // Zero seed is legal (bumped internally).
        assert_ne!(ChaosRng::new(0).next_u64(), 0);
    }

    #[test]
    fn unit_draws_stay_in_the_unit_interval() {
        let mut rng = ChaosRng::new(99);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
        assert!(ChaosRng::new(5).below(0) == 0);
    }

    #[test]
    fn json_u64_field_scans_flat_payloads() {
        let line = "{\"id\":0,\"ok\":true,\"kind\":\"stats\",\"shed\":3,\"worker_restarts\":2}";
        assert_eq!(json_u64_field(line, "shed"), Some(3));
        assert_eq!(json_u64_field(line, "worker_restarts"), Some(2));
        assert_eq!(json_u64_field(line, "absent"), None);
        assert_eq!(json_u64_field("\"x\":abc", "x"), None);
    }

    #[test]
    fn report_json_is_stable_and_escapes_failures() {
        let mut r = ChaosReport::default();
        assert!(r.passed());
        r.injected[0] = 2;
        r.failures.push("bad \"quote\"".to_string());
        let json = r.to_json();
        assert!(json.contains("\"passed\":false"));
        assert!(json.contains("\"slow_drip\":2"));
        assert!(json.contains("bad \\\"quote\\\""));
    }
}
