//! `fedval-serve` — the online policy-query daemon.
//!
//! Loads a federation scenario, optionally pre-warms every cache layer
//! (all `2^n` coalition values plus the ϕ̂ and nucleolus share
//! payloads), then serves newline-framed queries over TCP until a
//! `shutdown` query arrives:
//!
//! ```text
//! fedval-serve --addr 127.0.0.1:7411 --warm
//! fedval-serve --addr 127.0.0.1:0 --threads 2 --queue-depth 256 \
//!              --deadline-ms 500 --locations 100,400,800 --threshold 500
//! ```
//!
//! The daemon prints `listening on ADDR` once it is ready (with the
//! real port when `:0` was requested — scripts parse this line), and a
//! drain summary when it exits. Exit code 0 means a clean drain.

use fedval_coalition::{ApproxConfig, ApproxMethod, MAX_SAMPLED_PLAYERS};
use fedval_serve::state::ScenarioSpec;
use fedval_serve::{Server, ServerConfig, ServeState};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug)]
struct Options {
    addr: String,
    threads: usize,
    queue_depth: usize,
    deadline_ms: u64,
    max_connections: usize,
    io_timeout_ms: u64,
    frame_deadline_ms: u64,
    idle_timeout_ms: u64,
    chaos_harness: bool,
    warm: bool,
    whatif_cache: usize,
    slow_trace_ms: u64,
    spec: ScenarioSpec,
    approx: ApproxConfig,
    trace: Option<String>,
}

fn usage() -> &'static str {
    "usage: fedval-serve [options]\n\
     \n\
     server options:\n\
       --addr ADDR              bind address            (default 127.0.0.1:7411;\n\
                                use port 0 for an ephemeral port)\n\
       --threads N              worker threads          (default: available\n\
                                hardware parallelism)\n\
       --queue-depth N          bounded request queue; full => BUSY\n\
                                (default 1024)\n\
       --deadline-ms MS         per-request queue deadline (default 2000)\n\
       --max-connections N      accept-time connection cap; over it new\n\
                                connections are shed with BUSY (default 256)\n\
       --io-timeout-ms MS       per-socket read AND write timeout (default 10000)\n\
       --frame-deadline-ms MS   max wall time for one frame, first byte to\n\
                                newline — slowloris defense (default 10000)\n\
       --idle-timeout-ms MS     close connections idle between frames this\n\
                                long (default 60000)\n\
       --chaos-harness          honour the chaos-panic query (fedchaos runs;\n\
                                never enable in production)\n\
       --warm                   pre-warm all 2^n coalition values and the\n\
                                shapley/nucleolus payloads before listening\n\
       --whatif-cache N         bounded LRU of derived what-if scenarios\n\
                                (default 64)\n\
       --slow-trace-ms MS       compute requests executing at least this long\n\
                                dump their span tree to the trace sink and\n\
                                carry a trace_id in the response (default 250;\n\
                                0 traces every request)\n\
       --trace PATH             write a JSONL observability trace\n\
     \n\
     scenario options (defaults reproduce the paper's §4.1 example):\n\
       --locations L1,L2,...    locations per facility  (default 100,400,800)\n\
       --capacities R1,R2,...   capacity per location   (default 1,1,...)\n\
       --threshold l            diversity threshold     (default 500)\n\
       --shape d                utility exponent        (default 1)\n\
       --volume K               experiments; 'fill' for capacity-filling\n\
       --synthetic N[:SEED]     serve the seeded large-n synthetic federation\n\
                                (fedval-testbed generator; overrides the\n\
                                scenario flags above; default seed 42)\n\
     \n\
     sampled-Shapley options (past 16 facilities shapley and what-if\n\
     queries answer from the seeded estimator with confidence intervals):\n\
       --approx                 force the sampled estimator even below the\n\
                                exact cap\n\
       --approx-samples N       sampling budget          (default 256)\n\
       --approx-seed S          RNG seed; same seed, same bytes (default 42)\n\
       --approx-method M        'permutation' or 'stratified'\n\
                                (default permutation)\n\
       --confidence C           CI confidence level in (0,1) (default 0.95)\n"
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7411".to_string(),
        threads: fedval_serve::server::available_threads(),
        queue_depth: 1024,
        deadline_ms: 2_000,
        max_connections: 256,
        io_timeout_ms: 10_000,
        frame_deadline_ms: 10_000,
        idle_timeout_ms: 60_000,
        chaos_harness: false,
        warm: false,
        whatif_cache: 64,
        slow_trace_ms: 250,
        spec: ScenarioSpec::paper_4_1(),
        approx: ApproxConfig::default(),
        trace: None,
    };
    opts.spec.capacities = Vec::new(); // re-defaulted below to match --locations
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--warm" {
            opts.warm = true;
            continue;
        }
        if flag == "--chaos-harness" {
            opts.chaos_harness = true;
            continue;
        }
        if flag == "--approx" {
            opts.approx.force = true;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            return Err(usage().to_string());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => opts.addr = value.clone(),
            "--threads" => {
                let n: usize = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = n;
            }
            "--queue-depth" => {
                let n: usize = value.parse().map_err(|e| format!("--queue-depth: {e}"))?;
                if n == 0 {
                    return Err("--queue-depth must be at least 1".to_string());
                }
                opts.queue_depth = n;
            }
            "--deadline-ms" => {
                opts.deadline_ms = value.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--max-connections" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
                if n == 0 {
                    return Err("--max-connections must be at least 1".to_string());
                }
                opts.max_connections = n;
            }
            "--io-timeout-ms" => {
                let ms: u64 = value.parse().map_err(|e| format!("--io-timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--io-timeout-ms must be at least 1".to_string());
                }
                opts.io_timeout_ms = ms;
            }
            "--frame-deadline-ms" => {
                opts.frame_deadline_ms = value
                    .parse()
                    .map_err(|e| format!("--frame-deadline-ms: {e}"))?;
            }
            "--idle-timeout-ms" => {
                opts.idle_timeout_ms = value
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
            }
            "--whatif-cache" => {
                opts.whatif_cache = value.parse().map_err(|e| format!("--whatif-cache: {e}"))?;
            }
            "--slow-trace-ms" => {
                opts.slow_trace_ms = value
                    .parse()
                    .map_err(|e| format!("--slow-trace-ms: {e}"))?;
            }
            "--locations" => {
                opts.spec.locations = value
                    .split(',')
                    .map(|v| v.trim().parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--locations: {e}"))?;
            }
            "--capacities" => {
                opts.spec.capacities = value
                    .split(',')
                    .map(|v| v.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--capacities: {e}"))?;
            }
            "--threshold" => {
                opts.spec.threshold =
                    value.parse().map_err(|e| format!("--threshold: {e}"))?;
            }
            "--shape" => {
                opts.spec.shape = value.parse().map_err(|e| format!("--shape: {e}"))?;
            }
            "--volume" => {
                opts.spec.volume = if value == "fill" {
                    None
                } else {
                    Some(value.parse().map_err(|e| format!("--volume: {e}"))?)
                };
            }
            "--synthetic" => {
                let (n, seed) = match value.split_once(':') {
                    Some((n, seed)) => (
                        n.parse::<usize>().map_err(|e| format!("--synthetic: {e}"))?,
                        seed.parse::<u64>().map_err(|e| format!("--synthetic: {e}"))?,
                    ),
                    None => (
                        value.parse::<usize>().map_err(|e| format!("--synthetic: {e}"))?,
                        42,
                    ),
                };
                if n == 0 || n > MAX_SAMPLED_PLAYERS {
                    return Err(format!(
                        "--synthetic: need between 1 and {MAX_SAMPLED_PLAYERS} authorities"
                    ));
                }
                let (draws, threshold) = fedval_testbed::synthetic_profile(n, seed);
                opts.spec.locations = draws.iter().map(|&(l, _)| l).collect();
                opts.spec.capacities = draws.iter().map(|&(_, r)| r).collect();
                opts.spec.threshold = threshold;
                opts.spec.shape = 1.0;
                opts.spec.volume = Some(1);
            }
            "--approx-samples" => {
                opts.approx.samples = value
                    .parse()
                    .map_err(|e| format!("--approx-samples: {e}"))?;
                if opts.approx.samples == 0 {
                    return Err("--approx-samples must be at least 1".to_string());
                }
            }
            "--approx-seed" => {
                opts.approx.seed = value.parse().map_err(|e| format!("--approx-seed: {e}"))?;
            }
            "--approx-method" => {
                opts.approx.method = ApproxMethod::parse(value).ok_or_else(|| {
                    format!("--approx-method: '{value}' is not 'permutation' or 'stratified'")
                })?;
            }
            "--confidence" => {
                opts.approx.confidence =
                    value.parse().map_err(|e| format!("--confidence: {e}"))?;
                if !(opts.approx.confidence > 0.0 && opts.approx.confidence < 1.0) {
                    return Err("--confidence must be strictly between 0 and 1".to_string());
                }
            }
            "--trace" => opts.trace = Some(value.clone()),
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    if opts.spec.locations.is_empty() || opts.spec.locations.len() > MAX_SAMPLED_PLAYERS {
        return Err(format!(
            "need between 1 and {MAX_SAMPLED_PLAYERS} facilities"
        ));
    }
    if opts.spec.capacities.is_empty() {
        opts.spec.capacities = vec![1; opts.spec.locations.len()];
    }
    if opts.spec.capacities.len() != opts.spec.locations.len() {
        return Err("--capacities must match --locations in length".to_string());
    }
    Ok(opts)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args)?;

    if let Some(path) = &opts.trace {
        let sink = fedval_obs::FileSink::create(path)
            .map_err(|e| format!("--trace {path}: {e}"))?;
        fedval_obs::install(std::sync::Arc::new(sink));
    }

    let approx = ApproxConfig {
        threads: opts.threads,
        ..opts.approx
    };
    let state = ServeState::new(opts.spec.clone(), opts.whatif_cache).with_approx(approx);
    if opts.warm {
        let report = state.warm(opts.threads);
        println!(
            "warmed {} coalition values (n={}), shapley={}, nucleolus={}",
            report.coalitions,
            opts.spec.n(),
            if report.shapley_ok { "ok" } else { "FAILED" },
            if report.nucleolus_ok { "ok" } else { "FAILED" },
        );
    }

    let config = ServerConfig {
        threads: opts.threads,
        queue_depth: opts.queue_depth,
        deadline: Duration::from_millis(opts.deadline_ms),
        max_connections: opts.max_connections,
        io_timeout: Duration::from_millis(opts.io_timeout_ms),
        frame_deadline: Duration::from_millis(opts.frame_deadline_ms),
        idle_timeout: Duration::from_millis(opts.idle_timeout_ms),
        chaos_panic: opts.chaos_harness,
        slow_trace: Duration::from_millis(opts.slow_trace_ms),
    };
    let server = Server::start(state, &opts.addr, config)
        .map_err(|e| format!("bind {}: {e}", opts.addr))?;

    // Scripts (ci.sh, fedload wrappers) parse this exact line for the
    // resolved ephemeral port; flush so they see it before any queries.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    let report = server.wait();
    println!(
        "drained: accepted={} answered={} busy={} deadline_expired={} protocol_errors={} shed={} worker_restarts={} abandoned={} open_conns={}",
        report.accepted,
        report.answered,
        report.busy,
        report.deadline_expired,
        report.protocol_errors,
        report.shed,
        report.worker_restarts,
        report.abandoned,
        report.open_conns,
    );
    if opts.trace.is_some() {
        fedval_obs::shutdown();
    }
    if report.abandoned != 0 {
        return Err(format!("drain abandoned {} queued jobs", report.abandoned));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_serve_the_worked_example() {
        let opts = parse(&args(&[])).unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7411");
        assert_eq!(opts.spec, ScenarioSpec::paper_4_1());
        assert_eq!(opts.queue_depth, 1024);
        assert_eq!(opts.deadline_ms, 2_000);
        assert!(!opts.warm);
        assert!(opts.threads >= 1, "threads default to hardware parallelism");
    }

    #[test]
    fn parses_server_flags() {
        let opts = parse(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "3",
            "--queue-depth",
            "9",
            "--deadline-ms",
            "250",
            "--warm",
            "--whatif-cache",
            "5",
        ]))
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:0");
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.queue_depth, 9);
        assert_eq!(opts.deadline_ms, 250);
        assert!(opts.warm);
        assert_eq!(opts.whatif_cache, 5);
    }

    #[test]
    fn parses_slow_trace_threshold() {
        assert_eq!(parse(&args(&[])).unwrap().slow_trace_ms, 250);
        let opts = parse(&args(&["--slow-trace-ms", "0"])).unwrap();
        assert_eq!(opts.slow_trace_ms, 0, "0 traces every request");
    }

    #[test]
    fn parses_scenario_flags() {
        let opts = parse(&args(&[
            "--locations",
            "10,20",
            "--capacities",
            "2,3",
            "--threshold",
            "15",
            "--shape",
            "0.5",
            "--volume",
            "fill",
        ]))
        .unwrap();
        assert_eq!(opts.spec.locations, vec![10, 20]);
        assert_eq!(opts.spec.capacities, vec![2, 3]);
        assert_eq!(opts.spec.threshold, 15.0);
        assert_eq!(opts.spec.volume, None);
    }

    #[test]
    fn parses_robustness_flags() {
        let opts = parse(&args(&[
            "--max-connections",
            "24",
            "--io-timeout-ms",
            "500",
            "--frame-deadline-ms",
            "1500",
            "--idle-timeout-ms",
            "4000",
            "--chaos-harness",
        ]))
        .unwrap();
        assert_eq!(opts.max_connections, 24);
        assert_eq!(opts.io_timeout_ms, 500);
        assert_eq!(opts.frame_deadline_ms, 1500);
        assert_eq!(opts.idle_timeout_ms, 4000);
        assert!(opts.chaos_harness);
        // Chaos mode is opt-in.
        assert!(!parse(&args(&[])).unwrap().chaos_harness);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args(&["--threads", "0"])).is_err());
        assert!(parse(&args(&["--queue-depth", "0"])).is_err());
        assert!(parse(&args(&["--max-connections", "0"])).is_err());
        assert!(parse(&args(&["--io-timeout-ms", "0"])).is_err());
        assert!(parse(&args(&["--locations", "1,x"])).is_err());
        assert!(parse(&args(&["--capacities", "1,2"])).is_err());
        assert!(parse(&args(&["--frobnicate", "1"])).is_err());
        assert!(parse(&args(&["--addr"])).is_err());
        assert!(parse(&args(&["--approx-samples", "0"])).is_err());
        assert!(parse(&args(&["--approx-method", "magic"])).is_err());
        assert!(parse(&args(&["--confidence", "1.5"])).is_err());
        assert!(parse(&args(&["--confidence", "0"])).is_err());
        assert!(parse(&args(&["--synthetic", "0"])).is_err());
        assert!(parse(&args(&["--synthetic", "513"])).is_err());
        assert!(parse(&args(&["--synthetic", "8:x"])).is_err());
    }

    #[test]
    fn parses_approx_flags() {
        let opts = parse(&args(&[
            "--approx",
            "--approx-samples",
            "128",
            "--approx-seed",
            "9",
            "--approx-method",
            "stratified",
            "--confidence",
            "0.99",
        ]))
        .unwrap();
        assert!(opts.approx.force);
        assert_eq!(opts.approx.samples, 128);
        assert_eq!(opts.approx.seed, 9);
        assert_eq!(opts.approx.method, ApproxMethod::Stratified);
        assert!((opts.approx.confidence - 0.99).abs() < 1e-12);
        // Approx is opt-in; defaults match the library's.
        let plain = parse(&args(&[])).unwrap();
        assert!(!plain.approx.force);
        assert_eq!(plain.approx.samples, 256);
    }

    #[test]
    fn synthetic_builds_the_seeded_large_federation() {
        let opts = parse(&args(&["--synthetic", "200:7"])).unwrap();
        assert_eq!(opts.spec.n(), 200);
        assert_eq!(opts.spec.volume, Some(1));
        // Deterministic: the same n:seed yields the same spec.
        let again = parse(&args(&["--synthetic", "200:7"])).unwrap();
        assert_eq!(opts.spec, again.spec);
        // A different seed reshapes it; the default seed is 42.
        let other = parse(&args(&["--synthetic", "200:8"])).unwrap();
        assert_ne!(opts.spec, other.spec);
        let default_seed = parse(&args(&["--synthetic", "200"])).unwrap();
        let explicit = parse(&args(&["--synthetic", "200:42"])).unwrap();
        assert_eq!(default_seed.spec, explicit.spec);
        // Large plain --locations lists are accepted now too.
        let many: Vec<&str> = vec!["4"; 100];
        assert!(parse(&args(&["--locations", &many.join(",")])).is_ok());
    }
}
