//! `fedchaos` — seeded chaos campaigns against a live `fedval-serve`.
//!
//! Runs the [`fedval_serve::chaos`] fault injector (slowloris drips,
//! mid-frame truncations, resets, byte mangling, stalled reads,
//! connect floods, optional deliberate worker panics) against `--addr`
//! and exits nonzero unless every survival invariant held: probes keep
//! answering byte-identical `shapley` payloads, every completed frame
//! gets a valid response, stalls are closed, floods are shed.
//!
//! ```text
//! fedval-serve --addr 127.0.0.1:0 --warm --chaos-harness \
//!              --max-connections 24 --io-timeout-ms 500 &
//! fedchaos --addr 127.0.0.1:PORT --seed 7 --rounds 16 --panic-injection \
//!          --expect-stall-close --stats
//! ```
//!
//! `--seeds N` sweeps N consecutive seeds starting at `--seed` in one
//! invocation (the CI chaos stage and the acceptance bar's ≥ 20-seed
//! sweep); the run stops at the first failing seed so the failure is
//! attributable and reproducible with `--seed <that seed>`.

use fedval_serve::chaos::{self, ChaosConfig};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug)]
struct Options {
    addr: String,
    config: ChaosConfig,
    seeds: u64,
    stats: bool,
    metrics: Option<String>,
    shutdown: bool,
}

fn usage() -> &'static str {
    "usage: fedchaos --addr HOST:PORT [options]\n\
     \n\
     options:\n\
       --addr HOST:PORT        server to attack (required)\n\
       --seed S                master seed (default 42)\n\
       --seeds N               sweep N consecutive seeds from --seed (default 1)\n\
       --rounds N              fault rounds per seed (default 12)\n\
       --probe-every N         well-behaved probe cadence (default 2; 0 = off)\n\
       --flood N               connections per connect-flood round (default 12)\n\
       --pipeline N            requests per stalled-read round (default 16)\n\
       --drip-delay-ms MS      pause between dripped bytes (default 3)\n\
       --hold-ms MS            stall/hold window (default 300)\n\
       --client-timeout-ms MS  harness socket deadlines (default 5000)\n\
       --panic-injection       include chaos-panic rounds (server must run\n\
                               with --chaos-harness)\n\
       --expect-stall-close    require the server to close stalled frames\n\
                               (use with tight --io-timeout-ms servers)\n\
       --stats                 print the server's stats payload after the run\n\
       --metrics PATH          dump the harness's merged metric registry\n\
                               (MetricsSnapshot JSON) at exit\n\
       --shutdown              send a shutdown query when the campaign ends\n"
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        config: ChaosConfig::default(),
        seeds: 1,
        stats: false,
        metrics: None,
        shutdown: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--panic-injection" => {
                opts.config.panic_injection = true;
                continue;
            }
            "--expect-stall-close" => {
                opts.config.expect_stall_close = true;
                continue;
            }
            "--stats" => {
                opts.stats = true;
                continue;
            }
            "--shutdown" => {
                opts.shutdown = true;
                continue;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            _ => {}
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => opts.addr = value.clone(),
            "--seed" => {
                opts.config.seed = value.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--seeds" => {
                let n: u64 = value.parse().map_err(|e| format!("--seeds: {e}"))?;
                if n == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
                opts.seeds = n;
            }
            "--rounds" => {
                opts.config.rounds = value.parse().map_err(|e| format!("--rounds: {e}"))?;
            }
            "--probe-every" => {
                opts.config.probe_every =
                    value.parse().map_err(|e| format!("--probe-every: {e}"))?;
            }
            "--flood" => {
                opts.config.flood = value.parse().map_err(|e| format!("--flood: {e}"))?;
            }
            "--pipeline" => {
                opts.config.pipeline = value.parse().map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--drip-delay-ms" => {
                let ms: u64 = value.parse().map_err(|e| format!("--drip-delay-ms: {e}"))?;
                opts.config.drip_delay = Duration::from_millis(ms);
            }
            "--hold-ms" => {
                let ms: u64 = value.parse().map_err(|e| format!("--hold-ms: {e}"))?;
                opts.config.hold = Duration::from_millis(ms);
            }
            "--metrics" => opts.metrics = Some(value.clone()),
            "--client-timeout-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("--client-timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--client-timeout-ms must be at least 1".to_string());
                }
                opts.config.client_timeout = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    if opts.addr.is_empty() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

fn send_shutdown(addr: &str, timeout: Duration) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(b"{\"id\":0,\"kind\":\"shutdown\"}\n")
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut line = String::new();
    let _ = BufReader::new(stream).read_line(&mut line);
    if line.contains("\"draining\":true") {
        Ok(())
    } else {
        Err(format!("unexpected shutdown response: {}", line.trim_end()))
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args)?;
    if opts.metrics.is_some() {
        // Enable the sharded registry (NullSink) so the campaign's
        // client-side telemetry accumulates for the exit dump.
        fedval_obs::ensure_enabled();
    }

    let mut failed = false;
    for offset in 0..opts.seeds {
        let config = ChaosConfig {
            seed: opts.config.seed.wrapping_add(offset),
            ..opts.config.clone()
        };
        let report = chaos::run(&opts.addr, &config);
        fedval_obs::counter_add("chaos.seeds", 1);
        fedval_obs::counter_add("chaos.probe_mismatches", report.probe_mismatches);
        fedval_obs::counter_add("chaos.invariant_failures", report.failures.len() as u64);
        println!("{{\"seed\":{},\"report\":{}}}", config.seed, report.to_json());
        if !report.passed() {
            eprintln!(
                "seed {} FAILED: {} probe mismatches, {} invariant violations:",
                config.seed,
                report.probe_mismatches,
                report.failures.len()
            );
            for failure in &report.failures {
                eprintln!("  - {failure}");
            }
            failed = true;
            break;
        }
    }

    if opts.stats {
        let stats = chaos::fetch_stats(&opts.addr, opts.config.client_timeout)?;
        println!("{stats}");
    }
    if let Some(path) = &opts.metrics {
        // Written even for failed campaigns: the dump is the evidence.
        let fold = fedval_obs::metrics_fold();
        let snapshot = fedval_obs::MetricsSnapshot::from_parts(&fold, &[]);
        std::fs::write(path, format!("{}\n", snapshot.to_json()))
            .map_err(|e| format!("--metrics {path}: {e}"))?;
    }
    if opts.shutdown {
        send_shutdown(&opts.addr, opts.config.client_timeout)?;
    }
    if failed {
        return Err("chaos campaign failed; rerun with the printed seed to reproduce".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let opts = parse(&args(&[
            "--addr",
            "127.0.0.1:9",
            "--seed",
            "7",
            "--seeds",
            "24",
            "--rounds",
            "6",
            "--probe-every",
            "3",
            "--flood",
            "20",
            "--pipeline",
            "8",
            "--drip-delay-ms",
            "2",
            "--hold-ms",
            "250",
            "--client-timeout-ms",
            "900",
            "--metrics",
            "chaos-metrics.json",
            "--panic-injection",
            "--expect-stall-close",
            "--stats",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:9");
        assert_eq!(opts.config.seed, 7);
        assert_eq!(opts.seeds, 24);
        assert_eq!(opts.config.rounds, 6);
        assert_eq!(opts.config.probe_every, 3);
        assert_eq!(opts.config.flood, 20);
        assert_eq!(opts.config.pipeline, 8);
        assert_eq!(opts.config.drip_delay, Duration::from_millis(2));
        assert_eq!(opts.config.hold, Duration::from_millis(250));
        assert_eq!(opts.config.client_timeout, Duration::from_millis(900));
        assert!(opts.config.panic_injection);
        assert!(opts.config.expect_stall_close);
        assert!(opts.stats);
        assert_eq!(opts.metrics.as_deref(), Some("chaos-metrics.json"));
        assert!(opts.shutdown);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args(&[])).is_err(), "--addr is required");
        assert!(parse(&args(&["--addr", "x", "--seeds", "0"])).is_err());
        assert!(parse(&args(&["--addr", "x", "--client-timeout-ms", "0"])).is_err());
        assert!(parse(&args(&["--addr", "x", "--frobnicate", "1"])).is_err());
        assert!(parse(&args(&["--addr"])).is_err());
    }
}
