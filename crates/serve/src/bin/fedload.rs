//! `fedload` — a seeded, deterministic load generator for
//! `fedval-serve`, with closed-loop and open-loop modes.
//!
//! **Closed loop** (default): `--connections` TCP connections each
//! drive `--requests` queries back-to-back — the next request is sent
//! only after the previous response arrives. Self-pacing: the offered
//! load collapses to whatever the server sustains, which measures
//! capacity but hides overload behavior.
//!
//! **Open loop** (`--open-loop --rate R`): requests are issued on a
//! seeded Poisson arrival process at `R` requests/second *regardless of
//! response progress*, the way independent federation operators
//! actually arrive. Latency is measured from the **scheduled** arrival
//! time, not the actual send, so queueing delay under saturation is
//! charged to the server (no coordinated omission). Running at ~1.2×
//! the closed-loop saturation rate is how BENCH_serve.json records tail
//! latency under overload.
//!
//! **Retry** (`--retry N`): retryable failures — `BUSY`, `DEADLINE`,
//! and transport errors (reset/EOF, which trigger a reconnect) — are
//! retried up to N times with capped exponential backoff plus seeded
//! jitter; protocol errors and mismatches stay fatal. This is the
//! client half of the serving stack's overload contract: the server
//! sheds with typed errors, the client backs off deterministically.
//!
//! The query stream, arrival process, and retry jitter all derive from
//! one [`ChaosRng`] seed, so two runs with the same seed issue the same
//! requests at the same (relative) times. Every response is validated;
//! the first `shapley` body is memoized and every later one must be
//! **byte-identical** — the server's determinism contract, checked from
//! outside the process.
//!
//! ```text
//! fedload --addr 127.0.0.1:7411 --connections 4 --requests 5000 \
//!         --kind shapley --seed 42 --retry 3 --out BENCH_serve.json
//! fedload --addr 127.0.0.1:7411 --open-loop --rate 54000 --requests 20000
//! ```

use fedval_obs::Histogram;
use fedval_serve::chaos::ChaosRng;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Options {
    addr: String,
    connections: usize,
    requests: usize,
    kind: String,
    seed: u64,
    out: Option<String>,
    metrics: Option<String>,
    scrape: Option<String>,
    shutdown: bool,
    retry: u32,
    open_loop: bool,
    rate: f64,
}

fn usage() -> &'static str {
    "usage: fedload --addr HOST:PORT [options]\n\
     \n\
     options:\n\
       --addr HOST:PORT      server to drive (required)\n\
       --connections N       concurrent connections (default 2)\n\
       --requests N          requests per connection          (default 1000)\n\
       --kind K              shapley|nucleolus|coalition-value|what-if|mixed\n\
                             (default shapley)\n\
       --seed S              seed for queries/arrivals/jitter (default 42)\n\
       --retry N             retry BUSY/DEADLINE/transport failures up to N\n\
                             times with capped exponential backoff + seeded\n\
                             jitter (closed loop only; default 0 = fail fast)\n\
       --open-loop           Poisson arrivals instead of closed-loop pacing\n\
       --rate R              offered load in req/s across all connections\n\
                             (open loop; default 1000)\n\
       --out PATH            write the JSON report here (e.g. BENCH_serve.json)\n\
       --metrics PATH        dump the client's merged metric registry\n\
                             (MetricsSnapshot JSON) at exit\n\
       --scrape PATH         after the run, issue one `metrics` query and\n\
                             write the raw response line here (CI scrapes it)\n\
       --shutdown            send a shutdown query when the run completes\n"
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        connections: 2,
        requests: 1000,
        kind: "shapley".to_string(),
        seed: 42,
        out: None,
        metrics: None,
        scrape: None,
        shutdown: false,
        retry: 0,
        open_loop: false,
        rate: 1000.0,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--shutdown" {
            opts.shutdown = true;
            continue;
        }
        if flag == "--open-loop" {
            opts.open_loop = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => opts.addr = value.clone(),
            "--connections" => {
                let n: usize = value.parse().map_err(|e| format!("--connections: {e}"))?;
                if n == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
                opts.connections = n;
            }
            "--requests" => {
                opts.requests = value.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--seed" => {
                opts.seed = value.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--retry" => {
                opts.retry = value.parse().map_err(|e| format!("--retry: {e}"))?;
            }
            "--rate" => {
                let r: f64 = value.parse().map_err(|e| format!("--rate: {e}"))?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--rate must be positive".to_string());
                }
                opts.rate = r;
            }
            "--kind" => {
                if !matches!(
                    value.as_str(),
                    "shapley" | "nucleolus" | "coalition-value" | "what-if" | "mixed"
                ) {
                    return Err(format!("--kind: unknown kind '{value}'\n\n{}", usage()));
                }
                opts.kind = value.clone();
            }
            "--out" => opts.out = Some(value.clone()),
            "--metrics" => opts.metrics = Some(value.clone()),
            "--scrape" => opts.scrape = Some(value.clone()),
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    if opts.addr.is_empty() {
        return Err(usage().to_string());
    }
    if opts.open_loop && opts.retry > 0 {
        return Err("--retry is a closed-loop mode (open loop never re-offers load)".to_string());
    }
    Ok(opts)
}

/// Renders the `i`-th request line for this connection's stream.
fn request_line(kind: &str, id: u64, rng: &mut ChaosRng) -> String {
    let concrete = match kind {
        "mixed" => match rng.next_u64() % 4 {
            0 => "shapley",
            1 => "nucleolus",
            2 => "coalition-value",
            _ => "what-if",
        },
        k => k,
    };
    match concrete {
        "coalition-value" => {
            // Non-empty subsets of the 3-player worked example.
            let mask = 1 + (rng.next_u64() % 7);
            let members: Vec<String> = (0..3)
                .filter(|p| mask & (1 << p) != 0)
                .map(|p: u64| p.to_string())
                .collect();
            format!(
                "{{\"id\":{id},\"kind\":\"coalition-value\",\"coalition\":[{}]}}",
                members.join(",")
            )
        }
        "what-if" => {
            // A small rotating pool so the bounded LRU sees hits.
            if rng.next_u64() % 2 == 0 {
                let locations = 100 * (1 + rng.next_u64() % 8);
                format!(
                    "{{\"id\":{id},\"kind\":\"what-if-join\",\"locations\":{locations},\"capacity\":1}}"
                )
            } else {
                let player = rng.next_u64() % 3;
                format!("{{\"id\":{id},\"kind\":\"what-if-leave\",\"player\":{player}}}")
            }
        }
        other => format!("{{\"id\":{id},\"kind\":\"{other}\"}}"),
    }
}

/// Capped exponential backoff with seeded jitter: attempt 1 waits
/// ~4-8ms, doubling to a 200ms ceiling, with the upper half drawn from
/// the run's RNG so synchronized clients desynchronize deterministically.
fn backoff(attempt: u32, rng: &mut ChaosRng) -> Duration {
    let ceiling: u64 = 200;
    let base = 4u64.saturating_mul(1 << attempt.min(16).saturating_sub(1)).min(ceiling);
    Duration::from_millis(base / 2 + rng.below(base / 2 + 1))
}

/// Tally from one connection's loop.
#[derive(Debug, Default)]
struct ConnReport {
    ok: u64,
    busy: u64,
    deadline: u64,
    protocol_errors: u64,
    mismatches: u64,
    retries: u64,
    recovered: u64,
    exhausted: u64,
    lost: u64,
    histogram: Histogram,
}

/// Strips the `{"id":N,` prefix and any `,"trace_id":N` exemplar tag
/// so determinism is compared on the response *body* (ids differ
/// across connections by construction; trace ids are intentionally
/// per-request metadata the server appends to slow responses).
fn body_of(line: &str) -> &str {
    let body = match line.find(",\"ok\":") {
        Some(pos) => &line[pos..],
        None => line,
    };
    match body.find(",\"trace_id\":") {
        Some(pos) => &body[..pos],
        None => body.strip_suffix('}').unwrap_or(body),
    }
}

/// What one response line means to the load loop.
enum Outcome {
    Ok,
    Busy,
    Deadline,
    Fatal,
}

fn classify(trimmed: &str) -> Outcome {
    if trimmed.contains("\"ok\":true") {
        Outcome::Ok
    } else if trimmed.contains("\"error\":\"BUSY\"") {
        Outcome::Busy
    } else if trimmed.contains("\"error\":\"DEADLINE\"") {
        Outcome::Deadline
    } else {
        // Any other failure (protocol error, SOLVE_FAILED, …) is a
        // correctness problem for this deterministic workload.
        Outcome::Fatal
    }
}

fn connect_to(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    Ok((BufReader::new(stream), writer))
}

/// Checks a successful shapley body against the run-wide canonical
/// bytes, establishing them on first sight.
fn check_canonical(
    request: &str,
    trimmed: &str,
    canonical_shapley: &Arc<OnceLock<String>>,
    report: &mut ConnReport,
) {
    if request.contains("\"kind\":\"shapley\"") || trimmed.contains("\"kind\":\"shapley\"") {
        let body = body_of(trimmed).to_string();
        let canonical = canonical_shapley.get_or_init(|| body.clone());
        if *canonical != body {
            report.mismatches += 1;
        }
    }
}

fn drive_connection(
    opts: &Options,
    conn_index: usize,
    canonical_shapley: &Arc<OnceLock<String>>,
) -> Result<ConnReport, String> {
    let (mut reader, mut writer) = connect_to(&opts.addr)?;
    let mut rng = ChaosRng::new(
        opts.seed
            .wrapping_add(conn_index as u64)
            .wrapping_mul(0x9E37_79B9),
    );
    let mut report = ConnReport::default();
    let mut line = String::new();
    for i in 0..opts.requests {
        let id = (conn_index * opts.requests + i) as u64;
        let request = request_line(&opts.kind, id, &mut rng);
        let started = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let sent = writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.write_all(b"\n"));
            let received = match sent {
                Err(e) => Err(format!("send: {e}")),
                Ok(()) => {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Err(e) => Err(format!("recv: {e}")),
                        Ok(0) => Err("server closed the connection mid-run".to_string()),
                        Ok(_) => Ok(()),
                    }
                }
            };
            if let Err(transport) = received {
                // Reset/EOF: retryable via a fresh connection.
                if attempt >= opts.retry {
                    return Err(transport);
                }
                attempt += 1;
                report.retries += 1;
                std::thread::sleep(backoff(attempt, &mut rng));
                let (r, w) = connect_to(&opts.addr)?;
                reader = r;
                writer = w;
                continue;
            }
            let trimmed = line.trim_end();
            let expected_id = format!("{{\"id\":{id},");
            if !trimmed.starts_with(&expected_id) {
                report.mismatches += 1;
                break;
            }
            match classify(trimmed) {
                Outcome::Ok => {
                    report.ok += 1;
                    if attempt > 0 {
                        report.recovered += 1;
                    }
                    check_canonical(&request, trimmed, canonical_shapley, &mut report);
                    break;
                }
                Outcome::Busy | Outcome::Deadline => {
                    if attempt < opts.retry {
                        attempt += 1;
                        report.retries += 1;
                        std::thread::sleep(backoff(attempt, &mut rng));
                        continue;
                    }
                    if opts.retry > 0 {
                        report.exhausted += 1;
                    }
                    if matches!(classify(trimmed), Outcome::Busy) {
                        report.busy += 1;
                    } else {
                        report.deadline += 1;
                    }
                    break;
                }
                Outcome::Fatal => {
                    report.protocol_errors += 1;
                    break;
                }
            }
        }
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report.histogram.observe(elapsed_ns);
        // Also lands in this thread's metric shard for `--metrics`.
        fedval_obs::observe_ns("load.request_ns", elapsed_ns);
    }
    Ok(report)
}

/// Extracts the numeric id from a `{"id":N,...` response line.
fn id_of(trimmed: &str) -> Option<u64> {
    let rest = trimmed.strip_prefix("{\"id\":")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn drive_open_loop(
    opts: &Options,
    conn_index: usize,
    canonical_shapley: &Arc<OnceLock<String>>,
) -> Result<ConnReport, String> {
    let (reader, mut writer) = connect_to(&opts.addr)?;
    let mut rng = ChaosRng::new(
        opts.seed
            .wrapping_add(conn_index as u64)
            .wrapping_mul(0x9E37_79B9),
    );
    // Scheduled (ideal) send instants by id, shared with the reader so
    // latency is charged from the arrival process, not the actual send.
    let pending: Arc<Mutex<BTreeMap<u64, Instant>>> = Arc::new(Mutex::new(BTreeMap::new()));

    let reader_pending = Arc::clone(&pending);
    let reader_canonical = Arc::clone(canonical_shapley);
    let collector = std::thread::spawn(move || {
        let mut reader = reader;
        let mut report = ConnReport::default();
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let trimmed = line.trim_end();
            let scheduled = id_of(trimmed).and_then(|id| {
                reader_pending.lock().ok().and_then(|mut p| p.remove(&id))
            });
            let Some(scheduled) = scheduled else {
                report.mismatches += 1;
                continue;
            };
            let elapsed_ns =
                u64::try_from(scheduled.elapsed().as_nanos()).unwrap_or(u64::MAX);
            report.histogram.observe(elapsed_ns);
            fedval_obs::observe_ns("load.request_ns", elapsed_ns);
            match classify(trimmed) {
                Outcome::Ok => {
                    report.ok += 1;
                    check_canonical("", trimmed, &reader_canonical, &mut report);
                }
                Outcome::Busy => report.busy += 1,
                Outcome::Deadline => report.deadline += 1,
                Outcome::Fatal => report.protocol_errors += 1,
            }
        }
        report
    });

    let per_conn_rate = opts.rate / opts.connections as f64;
    let start = Instant::now();
    let mut offset = Duration::ZERO;
    let mut send_failure: Option<String> = None;
    for i in 0..opts.requests {
        // Exponential inter-arrival: -ln(1-u)/λ seconds.
        let u = rng.unit();
        offset += Duration::from_secs_f64((-(1.0 - u).ln()) / per_conn_rate);
        let scheduled = start + offset;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let id = (conn_index * opts.requests + i) as u64;
        let request = request_line(&opts.kind, id, &mut rng);
        if let Ok(mut p) = pending.lock() {
            p.insert(id, scheduled);
        }
        if let Err(e) = writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
        {
            send_failure = Some(format!("send: {e}"));
            if let Ok(mut p) = pending.lock() {
                p.remove(&id);
            }
            break;
        }
    }
    // Drain: give the server a grace window to answer the tail, then
    // close the read half so the collector unblocks.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < drain_deadline {
        let outstanding = pending.lock().map(|p| p.len()).unwrap_or(0);
        if outstanding == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = writer.shutdown(Shutdown::Both);
    let mut report = collector.join().unwrap_or_default();
    report.lost += pending.lock().map(|p| p.len() as u64).unwrap_or(0);
    if let Some(failure) = send_failure {
        return Err(failure);
    }
    Ok(report)
}

/// Issues one `metrics` query and writes the raw response line to
/// `path` — the CI smoke stage greps it for a well-formed exposition.
fn scrape_metrics(addr: &str, path: &str) -> Result<(), String> {
    let (mut reader, mut writer) = connect_to(addr)?;
    writer
        .write_all(b"{\"id\":0,\"kind\":\"metrics\"}\n")
        .map_err(|e| format!("send metrics: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("recv metrics: {e}"))?;
    if !line.contains("\"ok\":true") || !line.contains("\"kind\":\"metrics\"") {
        return Err(format!("unexpected metrics response: {}", line.trim_end()));
    }
    std::fs::write(path, &line).map_err(|e| format!("--scrape {path}: {e}"))
}

fn send_shutdown(addr: &str) -> Result<(), String> {
    let (mut reader, mut writer) = connect_to(addr)?;
    writer
        .write_all(b"{\"id\":0,\"kind\":\"shutdown\"}\n")
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    if line.contains("\"draining\":true") {
        Ok(())
    } else {
        Err(format!("unexpected shutdown response: {}", line.trim_end()))
    }
}

fn render_report(opts: &Options, total: &ConnReport, wall: Duration) -> String {
    let h = &total.histogram;
    let issued = total.ok + total.busy + total.deadline + total.protocol_errors + total.mismatches;
    let secs = wall.as_secs_f64();
    let rps = if secs > 0.0 { issued as f64 / secs } else { 0.0 };
    let mode = if opts.open_loop { "open-loop" } else { "closed-loop" };
    format!(
        "{{\n  \"kind\": \"{}\",\n  \"mode\": \"{}\",\n  \"offered_rps\": {},\n  \"connections\": {},\n  \"requests_per_connection\": {},\n  \"seed\": {},\n  \"issued\": {},\n  \"ok\": {},\n  \"busy\": {},\n  \"deadline\": {},\n  \"protocol_errors\": {},\n  \"mismatches\": {},\n  \"lost\": {},\n  \"retry\": {{\n    \"max\": {},\n    \"attempts\": {},\n    \"recovered\": {},\n    \"exhausted\": {}\n  }},\n  \"wall_s\": {},\n  \"throughput_rps\": {},\n  \"latency_ns\": {{\n    \"mean\": {},\n    \"p50\": {},\n    \"p95\": {},\n    \"p99\": {},\n    \"max\": {}\n  }}\n}}",
        opts.kind,
        mode,
        if opts.open_loop {
            fedval_obs::json_f64(opts.rate)
        } else {
            "null".to_string()
        },
        opts.connections,
        opts.requests,
        opts.seed,
        issued,
        total.ok,
        total.busy,
        total.deadline,
        total.protocol_errors,
        total.mismatches,
        total.lost,
        opts.retry,
        total.retries,
        total.recovered,
        total.exhausted,
        fedval_obs::json_f64(secs),
        fedval_obs::json_f64(rps),
        h.mean_ns(),
        h.p50_ns(),
        h.p95_ns(),
        h.p99_ns(),
        h.max_ns,
    )
}

fn merge(total: &mut ConnReport, part: &ConnReport) {
    total.ok += part.ok;
    total.busy += part.busy;
    total.deadline += part.deadline;
    total.protocol_errors += part.protocol_errors;
    total.mismatches += part.mismatches;
    total.retries += part.retries;
    total.recovered += part.recovered;
    total.exhausted += part.exhausted;
    total.lost += part.lost;
    for (i, &n) in part.histogram.buckets.iter().enumerate() {
        total.histogram.buckets[i] += n;
    }
    if part.histogram.count > 0 {
        if total.histogram.count == 0 || part.histogram.min_ns < total.histogram.min_ns {
            total.histogram.min_ns = part.histogram.min_ns;
        }
        if part.histogram.max_ns > total.histogram.max_ns {
            total.histogram.max_ns = part.histogram.max_ns;
        }
        total.histogram.count += part.histogram.count;
        total.histogram.sum_ns = total.histogram.sum_ns.saturating_add(part.histogram.sum_ns);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args)?;
    if opts.metrics.is_some() {
        // Enable the sharded registry (NullSink) so per-connection
        // threads accumulate latency shards for the exit dump.
        fedval_obs::ensure_enabled();
    }

    let canonical_shapley: Arc<OnceLock<String>> = Arc::new(OnceLock::new());
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let mut handles = Vec::new();
    for conn_index in 0..opts.connections {
        let opts = opts.clone();
        let canonical = Arc::clone(&canonical_shapley);
        let failures = Arc::clone(&failures);
        handles.push(std::thread::spawn(move || {
            let outcome = if opts.open_loop {
                drive_open_loop(&opts, conn_index, &canonical)
            } else {
                drive_connection(&opts, conn_index, &canonical)
            };
            match outcome {
                Ok(report) => Some(report),
                Err(message) => {
                    if let Ok(mut sink) = failures.lock() {
                        sink.push(format!("connection {conn_index}: {message}"));
                    }
                    None
                }
            }
        }));
    }
    let mut total = ConnReport::default();
    for handle in handles {
        if let Ok(Some(part)) = handle.join() {
            merge(&mut total, &part);
        }
    }
    let wall = started.elapsed();

    if let Some(path) = &opts.scrape {
        scrape_metrics(&opts.addr, path)?;
    }
    if opts.shutdown {
        send_shutdown(&opts.addr)?;
    }

    let report = render_report(&opts, &total, wall);
    println!("{report}");
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("--out {path}: {e}"))?;
    }
    if let Some(path) = &opts.metrics {
        // Fold the run-wide tallies in as counters, then dump the
        // merged registry (written even when the run then fails, so a
        // red run still leaves its telemetry behind).
        fedval_obs::counter_add("load.req.ok", total.ok);
        fedval_obs::counter_add("load.req.busy", total.busy);
        fedval_obs::counter_add("load.req.deadline", total.deadline);
        fedval_obs::counter_add("load.req.fatal", total.protocol_errors + total.mismatches);
        fedval_obs::counter_add("load.req.lost", total.lost);
        fedval_obs::counter_add("load.retries", total.retries);
        let fold = fedval_obs::metrics_fold();
        let snapshot = fedval_obs::MetricsSnapshot::from_parts(&fold, &[]);
        std::fs::write(path, format!("{}\n", snapshot.to_json()))
            .map_err(|e| format!("--metrics {path}: {e}"))?;
    }

    let failures = failures.lock().map(|f| f.clone()).unwrap_or_default();
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    if total.protocol_errors > 0 || total.mismatches > 0 || total.lost > 0 {
        return Err(format!(
            "correctness failures: {} protocol errors, {} mismatches, {} lost",
            total.protocol_errors, total.mismatches, total.lost
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let opts = parse(&args(&[
            "--addr",
            "127.0.0.1:9",
            "--connections",
            "4",
            "--requests",
            "10",
            "--kind",
            "mixed",
            "--seed",
            "7",
            "--retry",
            "3",
            "--out",
            "report.json",
            "--metrics",
            "metrics.json",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:9");
        assert_eq!(opts.connections, 4);
        assert_eq!(opts.requests, 10);
        assert_eq!(opts.kind, "mixed");
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.retry, 3);
        assert_eq!(opts.out.as_deref(), Some("report.json"));
        assert_eq!(opts.metrics.as_deref(), Some("metrics.json"));
        assert!(opts.shutdown);
        assert!(!opts.open_loop);
    }

    #[test]
    fn parses_open_loop_flags() {
        let opts = parse(&args(&["--addr", "x", "--open-loop", "--rate", "2500"])).unwrap();
        assert!(opts.open_loop);
        assert!((opts.rate - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args(&[])).is_err(), "--addr is required");
        assert!(parse(&args(&["--addr", "x", "--connections", "0"])).is_err());
        assert!(parse(&args(&["--addr", "x", "--kind", "venetian"])).is_err());
        assert!(parse(&args(&["--addr", "x", "--rate", "0"])).is_err());
        assert!(parse(&args(&["--addr", "x", "--rate", "-3"])).is_err());
        assert!(
            parse(&args(&["--addr", "x", "--open-loop", "--retry", "2"])).is_err(),
            "retry is closed-loop only"
        );
        assert!(parse(&args(&["--addr"])).is_err());
    }

    #[test]
    fn request_stream_is_deterministic_per_seed() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for id in 0..50 {
            assert_eq!(
                request_line("mixed", id, &mut a),
                request_line("mixed", id, &mut b)
            );
        }
        let mut c = ChaosRng::new(43);
        let stream_a: Vec<String> = (0..50)
            .map(|id| request_line("mixed", id, &mut ChaosRng::new(42 + id)))
            .collect();
        let stream_c: Vec<String> = (0..50).map(|id| request_line("mixed", id, &mut c)).collect();
        assert_ne!(stream_a, stream_c, "different seeds, different streams");
    }

    #[test]
    fn body_of_strips_the_id() {
        let a = "{\"id\":1,\"ok\":true,\"kind\":\"shapley\"}";
        let b = "{\"id\":9,\"ok\":true,\"kind\":\"shapley\"}";
        assert_eq!(body_of(a), body_of(b));
        assert_eq!(body_of("garbage"), "garbage");
    }

    #[test]
    fn body_of_strips_trace_ids() {
        // A slow-request exemplar tag must not trip the byte-identity
        // check: same body, different trace ids, one untagged.
        let slow_a = "{\"id\":1,\"ok\":true,\"kind\":\"shapley\",\"trace_id\":7}";
        let slow_b = "{\"id\":2,\"ok\":true,\"kind\":\"shapley\",\"trace_id\":9}";
        let fast = "{\"id\":3,\"ok\":true,\"kind\":\"shapley\"}";
        assert_eq!(body_of(slow_a), body_of(slow_b));
        assert_eq!(body_of(slow_a), body_of(fast));
    }

    #[test]
    fn id_of_parses_response_prefixes() {
        assert_eq!(id_of("{\"id\":42,\"ok\":true}"), Some(42));
        assert_eq!(id_of("{\"id\":null,\"ok\":false}"), None);
        assert_eq!(id_of("garbage"), None);
    }

    #[test]
    fn backoff_is_capped_and_seeded() {
        let mut rng = ChaosRng::new(9);
        for attempt in 1..12 {
            let d = backoff(attempt, &mut rng);
            assert!(d <= Duration::from_millis(200), "attempt {attempt}: {d:?}");
            assert!(d >= Duration::from_millis(2), "attempt {attempt}: {d:?}");
        }
        // Same seed, same jitter sequence.
        let mut a = ChaosRng::new(5);
        let mut b = ChaosRng::new(5);
        let seq_a: Vec<Duration> = (1..6).map(|i| backoff(i, &mut a)).collect();
        let seq_b: Vec<Duration> = (1..6).map(|i| backoff(i, &mut b)).collect();
        assert_eq!(seq_a, seq_b);
    }
}
