//! `fedload` — a seeded, deterministic closed-loop load generator for
//! `fedval-serve`.
//!
//! Opens `--connections` TCP connections, each driving `--requests`
//! queries back-to-back (closed loop: the next request is sent only
//! after the previous response arrives). The query stream is drawn from
//! a seeded xorshift generator, so two runs with the same seed issue
//! the same requests in the same order. Every response is validated:
//!
//! * it must parse as a response to the id we sent;
//! * `ok:false` with `BUSY`/`DEADLINE` is counted (expected under
//!   saturation) but protocol errors are fatal to the run's exit code;
//! * the first `shapley` response body is memoized and every later
//!   `shapley` response must be **byte-identical** — the server's
//!   determinism contract, checked from outside the process.
//!
//! Latencies feed a [`fedval_obs::Histogram`]; the run report quotes
//! p50/p95/p99 through the histogram's documented nearest-rank
//! interpolation and lands in `--out` as JSON (BENCH_serve.json in CI).
//!
//! ```text
//! fedload --addr 127.0.0.1:7411 --connections 4 --requests 5000 \
//!         --kind shapley --seed 42 --out BENCH_serve.json --shutdown
//! ```

use fedval_obs::Histogram;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Options {
    addr: String,
    connections: usize,
    requests: usize,
    kind: String,
    seed: u64,
    out: Option<String>,
    shutdown: bool,
}

fn usage() -> &'static str {
    "usage: fedload --addr HOST:PORT [options]\n\
     \n\
     options:\n\
       --addr HOST:PORT      server to drive (required)\n\
       --connections N       concurrent closed-loop connections (default 2)\n\
       --requests N          requests per connection          (default 1000)\n\
       --kind K              shapley|nucleolus|coalition-value|what-if|mixed\n\
                             (default shapley)\n\
       --seed S              xorshift seed for the query stream (default 42)\n\
       --out PATH            write the JSON report here (e.g. BENCH_serve.json)\n\
       --shutdown            send a shutdown query when the run completes\n"
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        connections: 2,
        requests: 1000,
        kind: "shapley".to_string(),
        seed: 42,
        out: None,
        shutdown: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--shutdown" {
            opts.shutdown = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => opts.addr = value.clone(),
            "--connections" => {
                let n: usize = value.parse().map_err(|e| format!("--connections: {e}"))?;
                if n == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
                opts.connections = n;
            }
            "--requests" => {
                opts.requests = value.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--seed" => {
                opts.seed = value.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--kind" => {
                if !matches!(
                    value.as_str(),
                    "shapley" | "nucleolus" | "coalition-value" | "what-if" | "mixed"
                ) {
                    return Err(format!("--kind: unknown kind '{value}'\n\n{}", usage()));
                }
                opts.kind = value.clone();
            }
            "--out" => opts.out = Some(value.clone()),
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    if opts.addr.is_empty() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

/// xorshift64* — tiny, seeded, deterministic; no external RNG dep.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Renders the `i`-th request line for this connection's stream.
fn request_line(kind: &str, id: u64, rng: &mut XorShift) -> String {
    let concrete = match kind {
        "mixed" => match rng.next() % 4 {
            0 => "shapley",
            1 => "nucleolus",
            2 => "coalition-value",
            _ => "what-if",
        },
        k => k,
    };
    match concrete {
        "coalition-value" => {
            // Non-empty subsets of the 3-player worked example.
            let mask = 1 + (rng.next() % 7);
            let members: Vec<String> = (0..3)
                .filter(|p| mask & (1 << p) != 0)
                .map(|p: u64| p.to_string())
                .collect();
            format!(
                "{{\"id\":{id},\"kind\":\"coalition-value\",\"coalition\":[{}]}}",
                members.join(",")
            )
        }
        "what-if" => {
            // A small rotating pool so the bounded LRU sees hits.
            if rng.next() % 2 == 0 {
                let locations = 100 * (1 + rng.next() % 8);
                format!(
                    "{{\"id\":{id},\"kind\":\"what-if-join\",\"locations\":{locations},\"capacity\":1}}"
                )
            } else {
                let player = rng.next() % 3;
                format!("{{\"id\":{id},\"kind\":\"what-if-leave\",\"player\":{player}}}")
            }
        }
        other => format!("{{\"id\":{id},\"kind\":\"{other}\"}}"),
    }
}

/// Tally from one connection's closed loop.
#[derive(Debug, Default)]
struct ConnReport {
    ok: u64,
    busy: u64,
    deadline: u64,
    protocol_errors: u64,
    mismatches: u64,
    histogram: Histogram,
}

/// Strips the `{"id":N,` prefix so determinism is compared on the
/// response *body* (ids differ across connections by construction).
fn body_of(line: &str) -> &str {
    match line.find(",\"ok\":") {
        Some(pos) => &line[pos..],
        None => line,
    }
}

fn drive_connection(
    opts: &Options,
    conn_index: usize,
    canonical_shapley: &Arc<OnceLock<String>>,
) -> Result<ConnReport, String> {
    let stream = TcpStream::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);

    let mut rng = XorShift::new(opts.seed.wrapping_add(conn_index as u64).wrapping_mul(0x9E37_79B9));
    let mut report = ConnReport::default();
    let mut line = String::new();
    for i in 0..opts.requests {
        let id = (conn_index * opts.requests + i) as u64;
        let request = request_line(&opts.kind, id, &mut rng);
        let started = Instant::now();
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-run".to_string());
        }
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report.histogram.observe(elapsed_ns);
        let trimmed = line.trim_end();

        let expected_id = format!("{{\"id\":{id},");
        if !trimmed.starts_with(&expected_id) {
            report.mismatches += 1;
            continue;
        }
        if trimmed.contains("\"ok\":true") {
            report.ok += 1;
            if request.contains("\"kind\":\"shapley\"") {
                let body = body_of(trimmed).to_string();
                let canonical = canonical_shapley.get_or_init(|| body.clone());
                if *canonical != body {
                    report.mismatches += 1;
                }
            }
        } else if trimmed.contains("\"error\":\"BUSY\"") {
            report.busy += 1;
        } else if trimmed.contains("\"error\":\"DEADLINE\"") {
            report.deadline += 1;
        } else {
            // Any other failure (protocol error, SOLVE_FAILED, …) is a
            // correctness problem for this deterministic workload.
            report.protocol_errors += 1;
        }
    }
    Ok(report)
}

fn send_shutdown(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(b"{\"id\":0,\"kind\":\"shutdown\"}\n")
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    if line.contains("\"draining\":true") {
        Ok(())
    } else {
        Err(format!("unexpected shutdown response: {}", line.trim_end()))
    }
}

fn render_report(opts: &Options, total: &ConnReport, wall: Duration) -> String {
    let h = &total.histogram;
    let issued = total.ok + total.busy + total.deadline + total.protocol_errors + total.mismatches;
    let secs = wall.as_secs_f64();
    let rps = if secs > 0.0 { issued as f64 / secs } else { 0.0 };
    format!(
        "{{\n  \"kind\": \"{}\",\n  \"connections\": {},\n  \"requests_per_connection\": {},\n  \"seed\": {},\n  \"issued\": {},\n  \"ok\": {},\n  \"busy\": {},\n  \"deadline\": {},\n  \"protocol_errors\": {},\n  \"mismatches\": {},\n  \"wall_s\": {},\n  \"throughput_rps\": {},\n  \"latency_ns\": {{\n    \"mean\": {},\n    \"p50\": {},\n    \"p95\": {},\n    \"p99\": {},\n    \"max\": {}\n  }}\n}}",
        opts.kind,
        opts.connections,
        opts.requests,
        opts.seed,
        issued,
        total.ok,
        total.busy,
        total.deadline,
        total.protocol_errors,
        total.mismatches,
        fedval_obs::json_f64(secs),
        fedval_obs::json_f64(rps),
        h.mean_ns(),
        h.p50_ns(),
        h.p95_ns(),
        h.p99_ns(),
        h.max_ns,
    )
}

fn merge(total: &mut ConnReport, part: &ConnReport) {
    total.ok += part.ok;
    total.busy += part.busy;
    total.deadline += part.deadline;
    total.protocol_errors += part.protocol_errors;
    total.mismatches += part.mismatches;
    for (i, &n) in part.histogram.buckets.iter().enumerate() {
        total.histogram.buckets[i] += n;
    }
    if part.histogram.count > 0 {
        if total.histogram.count == 0 || part.histogram.min_ns < total.histogram.min_ns {
            total.histogram.min_ns = part.histogram.min_ns;
        }
        if part.histogram.max_ns > total.histogram.max_ns {
            total.histogram.max_ns = part.histogram.max_ns;
        }
        total.histogram.count += part.histogram.count;
        total.histogram.sum_ns = total.histogram.sum_ns.saturating_add(part.histogram.sum_ns);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args)?;

    let canonical_shapley: Arc<OnceLock<String>> = Arc::new(OnceLock::new());
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let mut handles = Vec::new();
    for conn_index in 0..opts.connections {
        let opts = opts.clone();
        let canonical = Arc::clone(&canonical_shapley);
        let failures = Arc::clone(&failures);
        handles.push(std::thread::spawn(move || {
            match drive_connection(&opts, conn_index, &canonical) {
                Ok(report) => Some(report),
                Err(message) => {
                    if let Ok(mut sink) = failures.lock() {
                        sink.push(format!("connection {conn_index}: {message}"));
                    }
                    None
                }
            }
        }));
    }
    let mut total = ConnReport::default();
    for handle in handles {
        if let Ok(Some(part)) = handle.join() {
            merge(&mut total, &part);
        }
    }
    let wall = started.elapsed();

    if opts.shutdown {
        send_shutdown(&opts.addr)?;
    }

    let report = render_report(&opts, &total, wall);
    println!("{report}");
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("--out {path}: {e}"))?;
    }

    let failures = failures.lock().map(|f| f.clone()).unwrap_or_default();
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    if total.protocol_errors > 0 || total.mismatches > 0 {
        return Err(format!(
            "correctness failures: {} protocol errors, {} mismatches",
            total.protocol_errors, total.mismatches
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let opts = parse(&args(&[
            "--addr",
            "127.0.0.1:9",
            "--connections",
            "4",
            "--requests",
            "10",
            "--kind",
            "mixed",
            "--seed",
            "7",
            "--out",
            "report.json",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:9");
        assert_eq!(opts.connections, 4);
        assert_eq!(opts.requests, 10);
        assert_eq!(opts.kind, "mixed");
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.out.as_deref(), Some("report.json"));
        assert!(opts.shutdown);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args(&[])).is_err(), "--addr is required");
        assert!(parse(&args(&["--addr", "x", "--connections", "0"])).is_err());
        assert!(parse(&args(&["--addr", "x", "--kind", "venetian"])).is_err());
        assert!(parse(&args(&["--addr"])).is_err());
    }

    #[test]
    fn request_stream_is_deterministic_per_seed() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for id in 0..50 {
            assert_eq!(
                request_line("mixed", id, &mut a),
                request_line("mixed", id, &mut b)
            );
        }
        let mut c = XorShift::new(43);
        let stream_a: Vec<String> = (0..50)
            .map(|id| request_line("mixed", id, &mut XorShift::new(42 + id)))
            .collect();
        let stream_c: Vec<String> = (0..50).map(|id| request_line("mixed", id, &mut c)).collect();
        assert_ne!(stream_a, stream_c, "different seeds, different streams");
    }

    #[test]
    fn body_of_strips_the_id() {
        let a = "{\"id\":1,\"ok\":true,\"kind\":\"shapley\"}";
        let b = "{\"id\":9,\"ok\":true,\"kind\":\"shapley\"}";
        assert_eq!(body_of(a), body_of(b));
        assert_eq!(body_of("garbage"), "garbage");
    }
}
