//! Live telemetry surfaces: the per-second time-series ring buffer and
//! the rendering of the `metrics` query payload.
//!
//! A background sampler thread (owned by the server) appends one
//! [`RingSample`] per second: request rate and latency percentiles are
//! **deltas** between consecutive merged folds of the sharded metric
//! registry ([`fedval_obs::metrics_fold`] + [`Histogram::delta`]), so
//! each sample describes *that* second, not the process lifetime. The
//! ring is bounded ([`MetricsRing::new`]) — a week-long server holds the
//! last couple of minutes, which is what a dashboard polling the
//! `metrics` query actually wants.
//!
//! [`Histogram::delta`]: fedval_obs::Histogram::delta

use fedval_obs::{escape_json, json_f64, Histogram, MetricsFold};
use std::collections::VecDeque;

/// One per-second observation of the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSample {
    /// Seconds since server start at sample time.
    pub t_s: u64,
    /// Requests answered during the window (ok + error), per second.
    pub req_rate: f64,
    /// p50 of `serve.request_ns` within the window, ns (0 when idle).
    pub p50_ns: u64,
    /// p95 of `serve.request_ns` within the window, ns.
    pub p95_ns: u64,
    /// p99 of `serve.request_ns` within the window, ns.
    pub p99_ns: u64,
    /// Compute-queue depth at sample time.
    pub queue_depth: u64,
    /// Cumulative what-if cache hit ratio (0.0 before any what-if).
    pub cache_hit_ratio: f64,
}

impl RingSample {
    /// Renders the sample as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{},\"req_rate\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"queue_depth\":{},\"cache_hit_ratio\":{}}}",
            self.t_s,
            json_f64(self.req_rate),
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.queue_depth,
            json_f64(self.cache_hit_ratio),
        )
    }
}

/// Bounded ring of [`RingSample`]s plus the previous fold's cumulative
/// state, so each push computes window deltas.
#[derive(Debug)]
pub struct MetricsRing {
    capacity: usize,
    samples: VecDeque<RingSample>,
    prev_answered: u64,
    prev_request_hist: Histogram,
}

impl MetricsRing {
    /// An empty ring holding at most `capacity` samples (floor 1).
    pub fn new(capacity: usize) -> MetricsRing {
        MetricsRing {
            capacity: capacity.max(1),
            samples: VecDeque::new(),
            prev_answered: 0,
            prev_request_hist: Histogram::new(),
        }
    }

    /// Folds one per-second observation into the ring: `fold` is the
    /// freshly merged registry, `elapsed_s` the seconds since the
    /// previous push (floor 1 — the sampler ticks at ~1 Hz but a loaded
    /// scheduler can stretch the interval), `queue_depth` the compute
    /// queue's length right now.
    pub fn push(&mut self, fold: &MetricsFold, t_s: u64, elapsed_s: f64, queue_depth: u64) {
        let answered = fold.counter("serve.req.ok") + fold.counter("serve.req.error");
        let hist = fold
            .histogram("serve.request_ns")
            .cloned()
            .unwrap_or_default();
        let window = hist.delta(&self.prev_request_hist);
        let interval = if elapsed_s > 0.0 { elapsed_s } else { 1.0 };
        let sample = RingSample {
            t_s,
            req_rate: answered.saturating_sub(self.prev_answered) as f64 / interval,
            p50_ns: window.p50_ns(),
            p95_ns: window.p95_ns(),
            p99_ns: window.percentile_ns(99.0),
            queue_depth,
            cache_hit_ratio: fold.cache_ratio("serve.whatif").unwrap_or(0.0),
        };
        self.prev_answered = answered;
        self.prev_request_hist = hist;
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Samples currently held, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &RingSample> {
        self.samples.iter()
    }

    /// Renders the ring as a JSON array, oldest first.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self.samples.iter().map(RingSample::to_json).collect();
        format!("[{}]", entries.join(","))
    }
}

/// Renders the `metrics` query payload: uptime, the Prometheus-style
/// exposition of `fold` (JSON-escaped — newlines become `\n`), and the
/// ring buffer.
pub fn render_metrics_payload(fold: &MetricsFold, uptime_s: u64, ring: &MetricsRing) -> String {
    format!(
        "\"kind\":\"metrics\",\"uptime_s\":{uptime_s},\"exposition\":\"{}\",\"ring\":{}",
        escape_json(&fold.to_prometheus()),
        ring.to_json(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_with(ok: u64, lat_ns: &[u64]) -> MetricsFold {
        let mut fold = MetricsFold::default();
        fold.counters.insert("serve.req.ok".to_string(), ok);
        let mut h = Histogram::new();
        for &v in lat_ns {
            h.observe(v);
        }
        fold.histograms.insert("serve.request_ns".to_string(), h);
        fold
    }

    #[test]
    fn ring_reports_window_deltas_not_lifetime_totals() {
        let mut ring = MetricsRing::new(8);
        ring.push(&fold_with(10, &[1_000; 10]), 1, 1.0, 0);
        // Second window: 30 more requests, all ~1ms — the percentiles
        // must reflect the 1ms window, not the mixed lifetime.
        let mut second = fold_with(40, &[1_000; 10]);
        if let Some(h) = second.histograms.get_mut("serve.request_ns") {
            for _ in 0..30 {
                h.observe(1_000_000);
            }
        }
        ring.push(&second, 2, 1.0, 3);
        let last = ring.samples().last().expect("two samples pushed");
        assert_eq!(last.req_rate, 30.0);
        assert_eq!(last.queue_depth, 3);
        assert!(
            last.p50_ns > 100_000,
            "window p50 must see only the 1ms requests, got {}",
            last.p50_ns
        );
    }

    #[test]
    fn ring_is_bounded() {
        let mut ring = MetricsRing::new(3);
        for t in 0..10 {
            ring.push(&fold_with(t, &[]), t, 1.0, 0);
        }
        let ts: Vec<u64> = ring.samples().map(|s| s.t_s).collect();
        assert_eq!(ts, vec![7, 8, 9], "oldest samples must be evicted");
    }

    #[test]
    fn payload_embeds_escaped_exposition_and_ring() {
        let mut ring = MetricsRing::new(2);
        ring.push(&fold_with(5, &[2_000]), 1, 1.0, 1);
        let payload = render_metrics_payload(&fold_with(5, &[2_000]), 42, &ring);
        assert!(payload.starts_with("\"kind\":\"metrics\",\"uptime_s\":42,"));
        assert!(payload.contains("serve_req_ok 5\\n"), "{payload}");
        assert!(payload.contains("\"ring\":[{\"t_s\":1,"), "{payload}");
        assert!(!payload.contains('\n'), "payload must stay one line");
    }
}
