//! fedval-serve: an online policy-query server over the federation
//! valuation pipeline.
//!
//! The batch tools (`fedval`, `repro`, `bench_pipeline`) re-solve the
//! coalitional game from scratch on every invocation. An operator
//! steering admission control in a running federation asks the *same*
//! scenario hundreds of times per second — "what is coalition {1,2}
//! worth?", "what is provider 3's Shapley share?", "what happens if a
//! fourth provider joins?". This crate keeps one
//! [`FederationScenario`-derived game][crate::state::ScenarioGame]
//! resident behind the single-flight
//! [`CachedGame`](fedval_coalition::CachedGame), pre-warms every
//! coalition value plus the ϕ̂ and nucleolus share tables at startup,
//! and answers queries over a newline-framed JSON-ish TCP protocol —
//! std-only, no external dependencies.
//!
//! Layout:
//!
//! * [`protocol`] — wire framing, request parsing (total and
//!   panic-free over arbitrary bytes), response rendering.
//! * [`state`] — scenario specification, warm caches, query
//!   execution, the bounded what-if LRU.
//! * [`lru`] — the deterministic bounded LRU map backing what-ifs.
//! * [`metrics`] — the per-second time-series ring buffer and the
//!   `metrics` query payload (JSON-escaped Prometheus-style exposition
//!   of the merged sharded registry plus the ring).
//! * [`server`] — acceptor / reader / worker threads, the bounded
//!   queue with `BUSY` backpressure, per-connection read/write
//!   deadlines with byte-progress tracking, worker supervision
//!   (`catch_unwind` + deterministic respawn), accept-time connection
//!   cap, graceful drain.
//! * [`chaos`] — seeded deterministic fault injection (slowloris,
//!   truncation, resets, mangling, stalled reads, connect floods,
//!   deliberate worker panics) used by the `fedchaos` harness and the
//!   chaos robustness suite.
//!
//! Three binaries ship with the crate: `fedval-serve` (the daemon),
//! `fedload` (a seeded load generator — closed-loop or open-loop
//! Poisson arrivals — that doubles as the correctness smoke-test
//! driver in CI), and `fedchaos` (the chaos campaign runner).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod lru;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod state;

pub use chaos::{ChaosConfig, ChaosReport, ChaosRng, FaultKind};
pub use metrics::{MetricsRing, RingSample};
pub use protocol::{parse_request, ProtocolError, QueryKind, Request, MAX_FRAME};
pub use server::{DrainReport, Server, ServerConfig, ServerStats};
pub use state::{ScenarioSpec, ServeState};
