//! Wire protocol: newline-framed JSON-subset requests and responses.
//!
//! One request per line, one response per line, both at most
//! [`MAX_FRAME`] bytes. The payload grammar is a strict subset of JSON —
//! a single flat object whose values are unsigned integers, floats,
//! strings, or arrays of unsigned integers:
//!
//! ```text
//! {"id":7,"kind":"shapley"}
//! {"id":8,"kind":"coalition-value","coalition":[0,2]}
//! {"id":9,"kind":"what-if-join","locations":200,"capacity":1}
//! {"id":10,"kind":"what-if-leave","player":1}
//! {"kind":"health"}
//! ```
//!
//! Responses echo the request `id` (when one was sent) and carry either
//! an `"ok":true` payload or an `"ok":false` machine-readable error
//! code:
//!
//! ```text
//! {"id":7,"ok":true,"kind":"shapley","n":3,"grand_value":1300,"shares":[...]}
//! {"id":11,"ok":false,"error":"BUSY","detail":"queue full (depth 128)"}
//! ```
//!
//! The parser is hand-rolled (no serde on the request path), total, and
//! panic-free: arbitrary byte garbage, truncated frames, and oversized
//! frames always yield a typed [`ProtocolError`] — never an unwind.
//! Every error carries a stable uppercase `code()` that the server
//! echoes on the wire, so clients can switch on it without string
//! matching free-form detail text.

use std::fmt;

/// Hard upper bound on a single request or response frame, bytes
/// (newline excluded). Frames that exceed this are rejected with
/// [`ProtocolError::FrameTooLarge`] and the connection is closed —
/// there is no reliable way to resynchronize mid-frame.
pub const MAX_FRAME: usize = 16 * 1024;

/// A typed protocol-level failure. Conversion to the wire code is
/// total: see [`ProtocolError::code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame exceeded [`MAX_FRAME`] bytes before a newline arrived.
    FrameTooLarge {
        /// Bytes seen before giving up.
        len: usize,
    },
    /// The frame is not valid UTF-8.
    InvalidUtf8,
    /// The frame is not a well-formed request object.
    Malformed {
        /// Human-readable description of the first syntax problem.
        detail: String,
    },
    /// A required field is absent.
    MissingField {
        /// Field name.
        field: &'static str,
    },
    /// A field is present but has the wrong type or an invalid value.
    BadField {
        /// Field name.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The `kind` field names no known query.
    UnknownKind {
        /// The offending kind string.
        kind: String,
    },
}

impl ProtocolError {
    /// Stable machine-readable error code, echoed on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::FrameTooLarge { .. } => "FRAME_TOO_LARGE",
            ProtocolError::InvalidUtf8 => "INVALID_UTF8",
            ProtocolError::Malformed { .. } => "MALFORMED",
            ProtocolError::MissingField { .. } => "MISSING_FIELD",
            ProtocolError::BadField { .. } => "BAD_FIELD",
            ProtocolError::UnknownKind { .. } => "UNKNOWN_KIND",
        }
    }

    /// Whether the connection can keep framing after this error.
    /// Oversized frames poison the stream (the remainder of the frame
    /// is unread garbage), so they force a close; everything else is
    /// frame-delimited and recoverable.
    pub fn is_fatal(&self) -> bool {
        matches!(self, ProtocolError::FrameTooLarge { .. })
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::FrameTooLarge { len } => {
                write!(f, "frame exceeds {MAX_FRAME} bytes (got at least {len})")
            }
            ProtocolError::InvalidUtf8 => write!(f, "frame is not valid UTF-8"),
            ProtocolError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            ProtocolError::MissingField { field } => write!(f, "missing field '{field}'"),
            ProtocolError::BadField { field, detail } => {
                write!(f, "bad field '{field}': {detail}")
            }
            ProtocolError::UnknownKind { kind } => write!(f, "unknown query kind '{kind}'"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The query kinds the server answers.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// `V(S)` for an explicit coalition (player ids).
    CoalitionValue {
        /// Member player ids, as sent (deduplicated, order-preserving
        /// semantics are the bitset's — duplicates are idempotent).
        coalition: Vec<usize>,
    },
    /// Normalized Shapley shares ϕ̂ of the base scenario.
    Shapley,
    /// Normalized nucleolus shares of the base scenario.
    Nucleolus,
    /// Re-solve with one facility added (the paper's "what does my
    /// share become if authority X joins?" policy query).
    WhatIfJoin {
        /// Location count of the joining facility.
        locations: u32,
        /// Per-location capacity of the joining facility.
        capacity: u64,
    },
    /// Re-solve with one member removed.
    WhatIfLeave {
        /// Player id of the departing facility.
        player: usize,
    },
    /// Liveness probe; answered inline, never queued.
    Health,
    /// Server statistics; answered inline, never queued.
    Stats,
    /// Live telemetry: Prometheus-style text exposition of the merged
    /// metric registry plus the per-second time-series ring buffer.
    /// Answered inline, never queued — observability must survive a
    /// saturated compute queue.
    Metrics,
    /// Initiate graceful drain: stop accepting, answer everything
    /// already queued, then exit.
    Shutdown,
    /// Deliberately panic inside a worker thread. Only honoured when the
    /// server was started with [`chaos_panic`] enabled (the `fedchaos`
    /// harness); otherwise answered `BAD_REQUEST` inline. Exists so the
    /// worker-supervision path (catch_unwind → typed `INTERNAL` response
    /// → deterministic respawn) is exercisable from outside the process.
    ///
    /// [`chaos_panic`]: crate::server::ServerConfig::chaos_panic
    ChaosPanic,
}

impl QueryKind {
    /// The wire name of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::CoalitionValue { .. } => "coalition-value",
            QueryKind::Shapley => "shapley",
            QueryKind::Nucleolus => "nucleolus",
            QueryKind::WhatIfJoin { .. } => "what-if-join",
            QueryKind::WhatIfLeave { .. } => "what-if-leave",
            QueryKind::Health => "health",
            QueryKind::Stats => "stats",
            QueryKind::Metrics => "metrics",
            QueryKind::Shutdown => "shutdown",
            QueryKind::ChaosPanic => "chaos-panic",
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// What to compute.
    pub kind: QueryKind,
}

/// A JSON-subset value: the only shapes requests may carry.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<u64>),
}

/// Parses one frame (without its trailing newline) into a [`Request`].
///
/// # Errors
/// Every way a frame can be wrong maps to one [`ProtocolError`]
/// variant; see the enum. This function never panics on any input.
pub fn parse_request(frame: &[u8]) -> Result<Request, ProtocolError> {
    if frame.len() > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge { len: frame.len() });
    }
    let text = std::str::from_utf8(frame).map_err(|_| ProtocolError::InvalidUtf8)?;
    let fields = parse_object(text)?;

    let mut id = None;
    if let Some(v) = lookup(&fields, "id") {
        match v {
            Value::UInt(n) => id = Some(*n),
            other => {
                return Err(ProtocolError::BadField {
                    field: "id",
                    detail: format!("expected an unsigned integer, got {}", type_name(other)),
                })
            }
        }
    }

    let kind_name = match lookup(&fields, "kind") {
        Some(Value::Str(s)) => s.as_str(),
        Some(other) => {
            return Err(ProtocolError::BadField {
                field: "kind",
                detail: format!("expected a string, got {}", type_name(other)),
            })
        }
        None => return Err(ProtocolError::MissingField { field: "kind" }),
    };

    let kind = match kind_name {
        "coalition-value" => QueryKind::CoalitionValue {
            coalition: take_player_array(&fields, "coalition")?,
        },
        "shapley" => QueryKind::Shapley,
        "nucleolus" => QueryKind::Nucleolus,
        "what-if-join" => {
            let locations = take_uint(&fields, "locations")?;
            let locations = u32::try_from(locations).map_err(|_| ProtocolError::BadField {
                field: "locations",
                detail: format!("{locations} exceeds u32"),
            })?;
            if locations == 0 {
                return Err(ProtocolError::BadField {
                    field: "locations",
                    detail: "a joining facility needs at least one location".to_string(),
                });
            }
            let capacity = match lookup(&fields, "capacity") {
                None => 1,
                Some(_) => take_uint(&fields, "capacity")?,
            };
            if capacity == 0 {
                return Err(ProtocolError::BadField {
                    field: "capacity",
                    detail: "capacity must be at least 1".to_string(),
                });
            }
            QueryKind::WhatIfJoin {
                locations,
                capacity,
            }
        }
        "what-if-leave" => {
            let player = take_uint(&fields, "player")?;
            let player = usize::try_from(player).map_err(|_| ProtocolError::BadField {
                field: "player",
                detail: format!("{player} exceeds usize"),
            })?;
            QueryKind::WhatIfLeave { player }
        }
        "health" => QueryKind::Health,
        "stats" => QueryKind::Stats,
        "metrics" => QueryKind::Metrics,
        "shutdown" => QueryKind::Shutdown,
        "chaos-panic" => QueryKind::ChaosPanic,
        other => {
            return Err(ProtocolError::UnknownKind {
                kind: other.to_string(),
            })
        }
    };
    Ok(Request { id, kind })
}

fn lookup<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::UInt(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
    }
}

fn take_uint(fields: &[(String, Value)], field: &'static str) -> Result<u64, ProtocolError> {
    match lookup(fields, field) {
        Some(Value::UInt(n)) => Ok(*n),
        Some(other) => Err(ProtocolError::BadField {
            field,
            detail: format!("expected an unsigned integer, got {}", type_name(other)),
        }),
        None => Err(ProtocolError::MissingField { field }),
    }
}

fn take_player_array(
    fields: &[(String, Value)],
    field: &'static str,
) -> Result<Vec<usize>, ProtocolError> {
    match lookup(fields, field) {
        Some(Value::Arr(ids)) => ids
            .iter()
            .map(|&n| {
                usize::try_from(n).map_err(|_| ProtocolError::BadField {
                    field,
                    detail: format!("player id {n} exceeds usize"),
                })
            })
            .collect(),
        Some(other) => Err(ProtocolError::BadField {
            field,
            detail: format!("expected an array of player ids, got {}", type_name(other)),
        }),
        None => Err(ProtocolError::MissingField { field }),
    }
}

/// Recursive-descent parser for the single flat object a frame holds.
fn parse_object(text: &str) -> Result<Vec<(String, Value)>, ProtocolError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect_byte(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect_byte(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                Some(c) => return Err(p.unexpected(c, "',' or '}'")),
                None => return Err(p.truncated("',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ProtocolError::Malformed {
            detail: format!("trailing bytes after object at offset {}", p.pos),
        });
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn unexpected(&self, got: u8, wanted: &str) -> ProtocolError {
        ProtocolError::Malformed {
            detail: format!(
                "expected {wanted} at offset {}, got {:?}",
                self.pos.saturating_sub(1),
                char::from(got)
            ),
        }
    }

    fn truncated(&self, wanted: &str) -> ProtocolError {
        ProtocolError::Malformed {
            detail: format!("truncated frame: expected {wanted} at offset {}", self.pos),
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), ProtocolError> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.unexpected(b, &format!("'{}'", char::from(want)))),
            None => Err(self.truncated(&format!("'{}'", char::from(want)))),
        }
    }

    /// A double-quoted string. Escapes supported: `\"`, `\\`, `\n`,
    /// `\t`, `\r` — enough for field names and kind values; anything
    /// fancier is Malformed by design (requests never need it).
    fn parse_string(&mut self) -> Result<String, ProtocolError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(c) => return Err(self.unexpected(c, "a supported escape")),
                    None => return Err(self.truncated("an escape character")),
                },
                Some(c) if c < 0x20 => {
                    return Err(ProtocolError::Malformed {
                        detail: format!("raw control byte 0x{c:02x} inside string"),
                    })
                }
                Some(c) => {
                    // Multi-byte UTF-8 sequences pass through byte-wise:
                    // the frame was validated as UTF-8 up front, so
                    // accumulating raw bytes of a char is safe only via
                    // the original str. Track them through char
                    // boundaries instead.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(ProtocolError::InvalidUtf8),
                    }
                    let _ = c;
                }
                None => return Err(self.truncated("a closing quote")),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ProtocolError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_uint_array(),
            Some(b'0'..=b'9') => self.parse_number(),
            Some(b'-') => Err(ProtocolError::Malformed {
                detail: "negative numbers are not valid in requests".to_string(),
            }),
            Some(b'{') => Err(ProtocolError::Malformed {
                detail: "nested objects are not valid in requests".to_string(),
            }),
            Some(c) => Err(ProtocolError::Malformed {
                detail: format!("expected a value at offset {}, got {:?}", self.pos, char::from(c)),
            }),
            None => Err(self.truncated("a value")),
        }
    }

    fn parse_uint_array(&mut self) -> Result<Value, ProtocolError> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            match self.parse_number()? {
                Value::UInt(n) => out.push(n),
                _ => {
                    return Err(ProtocolError::Malformed {
                        detail: "arrays may only hold unsigned integers".to_string(),
                    })
                }
            }
            // Defensive cap: no federation exceeds the sampled-path
            // player bound, so any longer array is garbage regardless
            // of frame size.
            if out.len() > fedval_coalition::MAX_SAMPLED_PLAYERS {
                return Err(ProtocolError::Malformed {
                    detail: format!(
                        "array longer than {} entries",
                        fedval_coalition::MAX_SAMPLED_PLAYERS
                    ),
                });
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(out)),
                Some(c) => return Err(self.unexpected(c, "',' or ']'")),
                None => return Err(self.truncated("',' or ']'")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ProtocolError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return match self.peek() {
                Some(c) => Err(self.unexpected(c, "a digit")),
                None => Err(self.truncated("a digit")),
            };
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(ProtocolError::Malformed {
                    detail: "digits required after decimal point".to_string(),
                });
            }
        }
        // Safe: the scanned range is ASCII digits and '.' only.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ProtocolError::InvalidUtf8)?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| ProtocolError::Malformed {
                    detail: format!("bad float literal '{text}': {e}"),
                })
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| ProtocolError::Malformed {
                    detail: format!("integer literal '{text}' out of range: {e}"),
                })
        }
    }
}

/// A query failed *after* parsing (bad player id, solver failure,
/// server saturation, …). Distinct from [`ProtocolError`]: the frame
/// itself was fine, so the connection always survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Stable uppercase wire code (`BUSY`, `DEADLINE`, `BAD_REQUEST`,
    /// `SOLVE_FAILED`, `SHUTTING_DOWN`, `INTERNAL`, `SLOW_CLIENT`).
    pub code: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl QueryError {
    /// Convenience constructor.
    pub fn new(code: &'static str, detail: impl Into<String>) -> QueryError {
        QueryError {
            code,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for QueryError {}

/// Renders a success response line (no trailing newline). `payload` is
/// the pre-rendered kind-specific body, e.g.
/// `"kind":"shapley","n":3,...` — identical queries reuse the identical
/// payload string, which is what makes responses byte-identical.
pub fn render_ok(id: Option<u64>, payload: &str) -> String {
    match id {
        Some(id) => format!("{{\"id\":{id},\"ok\":true,{payload}}}"),
        None => format!("{{\"ok\":true,{payload}}}"),
    }
}

/// Renders an error response line (no trailing newline).
pub fn render_err(id: Option<u64>, code: &str, detail: &str) -> String {
    let detail = fedval_obs::escape_json(detail);
    match id {
        Some(id) => format!("{{\"id\":{id},\"ok\":false,\"error\":\"{code}\",\"detail\":\"{detail}\"}}"),
        None => format!("{{\"ok\":false,\"error\":\"{code}\",\"detail\":\"{detail}\"}}"),
    }
}

/// Renders a `[x1,x2,…]` JSON array of floats via the deterministic
/// [`fedval_obs::json_f64`] shortest-representation formatter.
pub fn render_f64_array(values: &[f64]) -> String {
    let parts: Vec<String> = values.iter().map(|&v| fedval_obs::json_f64(v)).collect();
    format!("[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_requests() {
        let r = parse_request(b"{\"kind\":\"health\"}").unwrap();
        assert_eq!(r, Request { id: None, kind: QueryKind::Health });

        let r = parse_request(b"{\"id\":7,\"kind\":\"shapley\"}").unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.kind, QueryKind::Shapley);

        let r = parse_request(b"{\"id\":8,\"kind\":\"coalition-value\",\"coalition\":[0,2]}")
            .unwrap();
        assert_eq!(
            r.kind,
            QueryKind::CoalitionValue {
                coalition: vec![0, 2]
            }
        );

        let r = parse_request(b"{\"kind\":\"what-if-join\",\"locations\":200,\"capacity\":3}")
            .unwrap();
        assert_eq!(
            r.kind,
            QueryKind::WhatIfJoin {
                locations: 200,
                capacity: 3
            }
        );

        let r = parse_request(b"{\"kind\":\"what-if-leave\",\"player\":1}").unwrap();
        assert_eq!(r.kind, QueryKind::WhatIfLeave { player: 1 });

        let r = parse_request(b"{\"id\":3,\"kind\":\"chaos-panic\"}").unwrap();
        assert_eq!(r.kind, QueryKind::ChaosPanic);
    }

    #[test]
    fn capacity_defaults_to_one() {
        let r = parse_request(b"{\"kind\":\"what-if-join\",\"locations\":50}").unwrap();
        assert_eq!(
            r.kind,
            QueryKind::WhatIfJoin {
                locations: 50,
                capacity: 1
            }
        );
    }

    #[test]
    fn whitespace_is_tolerated() {
        let r = parse_request(b"{ \"id\" : 3 , \"kind\" : \"stats\" }\r").unwrap();
        assert_eq!(r.id, Some(3));
        assert_eq!(r.kind, QueryKind::Stats);
    }

    #[test]
    fn missing_and_unknown_kinds_are_typed() {
        assert_eq!(
            parse_request(b"{\"id\":1}"),
            Err(ProtocolError::MissingField { field: "kind" })
        );
        assert!(matches!(
            parse_request(b"{\"kind\":\"frobnicate\"}"),
            Err(ProtocolError::UnknownKind { .. })
        ));
    }

    #[test]
    fn bad_field_types_are_typed() {
        assert!(matches!(
            parse_request(b"{\"id\":\"seven\",\"kind\":\"shapley\"}"),
            Err(ProtocolError::BadField { field: "id", .. })
        ));
        assert!(matches!(
            parse_request(b"{\"kind\":\"coalition-value\",\"coalition\":3}"),
            Err(ProtocolError::BadField { field: "coalition", .. })
        ));
        assert!(matches!(
            parse_request(b"{\"kind\":\"coalition-value\"}"),
            Err(ProtocolError::MissingField { field: "coalition" })
        ));
        assert!(matches!(
            parse_request(b"{\"kind\":\"what-if-join\",\"locations\":0}"),
            Err(ProtocolError::BadField { field: "locations", .. })
        ));
        assert!(matches!(
            parse_request(b"{\"kind\":\"what-if-join\",\"locations\":1,\"capacity\":0}"),
            Err(ProtocolError::BadField { field: "capacity", .. })
        ));
    }

    #[test]
    fn garbage_yields_malformed_not_panic() {
        for frame in [
            &b""[..],
            b"{",
            b"}",
            b"{}",
            b"[]",
            b"{\"kind\"",
            b"{\"kind\":}",
            b"{\"kind\":\"shapley\"",
            b"{\"kind\":\"shapley\"}extra",
            b"{\"kind\":\"shapley\",}",
            b"{kind:\"shapley\"}",
            b"{\"a\":-1,\"kind\":\"shapley\"}",
            b"{\"a\":{},\"kind\":\"shapley\"}",
            b"{\"a\":1.,\"kind\":\"shapley\"}",
            b"{\"a\":99999999999999999999999999,\"kind\":\"shapley\"}",
            b"\x00\x01\x02",
        ] {
            let out = parse_request(frame);
            assert!(out.is_err(), "frame {frame:?} must be rejected, got {out:?}");
        }
        // `{}` specifically is a MissingField, not Malformed.
        assert_eq!(
            parse_request(b"{}"),
            Err(ProtocolError::MissingField { field: "kind" })
        );
    }

    #[test]
    fn invalid_utf8_is_typed() {
        assert_eq!(parse_request(b"{\"kind\":\"\xff\"}"), Err(ProtocolError::InvalidUtf8));
    }

    #[test]
    fn oversized_frames_are_fatal_others_are_not() {
        let big = vec![b'x'; MAX_FRAME + 1];
        let err = parse_request(&big).unwrap_err();
        assert_eq!(err.code(), "FRAME_TOO_LARGE");
        assert!(err.is_fatal());
        assert!(!ProtocolError::InvalidUtf8.is_fatal());
    }

    #[test]
    fn long_arrays_are_capped() {
        let over = fedval_coalition::MAX_SAMPLED_PLAYERS + 16;
        let ids: Vec<String> = (0..over).map(|i| i.to_string()).collect();
        let frame = format!("{{\"kind\":\"coalition-value\",\"coalition\":[{}]}}", ids.join(","));
        assert!(matches!(
            parse_request(frame.as_bytes()),
            Err(ProtocolError::Malformed { .. })
        ));
        // Arrays sized for wide (sampled-path) federations parse fine.
        let ids: Vec<String> = (0..80).map(|i| i.to_string()).collect();
        let frame = format!("{{\"kind\":\"coalition-value\",\"coalition\":[{}]}}", ids.join(","));
        assert!(parse_request(frame.as_bytes()).is_ok());
    }

    #[test]
    fn unicode_strings_survive() {
        let r = parse_request("{\"kind\":\"health\",\"note\":\"ϕ̂ unicode\"}".as_bytes());
        assert!(r.is_ok(), "unknown extra fields are ignored: {r:?}");
    }

    #[test]
    fn response_rendering_is_stable() {
        assert_eq!(render_ok(Some(3), "\"kind\":\"health\",\"status\":\"ok\""),
            "{\"id\":3,\"ok\":true,\"kind\":\"health\",\"status\":\"ok\"}");
        assert_eq!(render_ok(None, "\"a\":1"), "{\"ok\":true,\"a\":1}");
        assert_eq!(
            render_err(Some(4), "BUSY", "queue full"),
            "{\"id\":4,\"ok\":false,\"error\":\"BUSY\",\"detail\":\"queue full\"}"
        );
        assert_eq!(
            render_err(None, "MALFORMED", "ctrl \n char"),
            "{\"ok\":false,\"error\":\"MALFORMED\",\"detail\":\"ctrl \\n char\"}"
        );
        assert_eq!(render_f64_array(&[0.5, 1.0 / 3.0]), "[0.5,0.3333333333333333]");
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(
            ProtocolError::Malformed { detail: String::new() }.code(),
            "MALFORMED"
        );
        assert_eq!(ProtocolError::MissingField { field: "x" }.code(), "MISSING_FIELD");
        assert_eq!(
            ProtocolError::UnknownKind { kind: "x".into() }.code(),
            "UNKNOWN_KIND"
        );
    }
}
