//! Warm query state: the scenario, its single-flight coalition cache,
//! pre-rendered share payloads, and the bounded what-if LRU.
//!
//! The serving model is the paper's policy loop (§4.3): the expensive
//! coalitional solve happens once (at warm-up or on first demand), and
//! every subsequent query is a lookup against immutable pre-rendered
//! bytes. Three cache layers, coarsest first:
//!
//! 1. **Payload cache** — `shapley` / `nucleolus` responses for the
//!    base scenario are rendered exactly once (`OnceLock`) and reused
//!    byte-for-byte. This is what makes identical queries return
//!    byte-identical responses.
//! 2. **Coalition cache** — `coalition-value` queries go through one
//!    shared [`CachedGame`]: single-flight across worker threads, warm
//!    across requests. `--warm` pre-populates all `2^n` entries.
//! 3. **What-if LRU** — derived scenarios (`what-if-join` /
//!    `what-if-leave`) are re-solved once and the rendered payload kept
//!    in a bounded [`Lru`]; the bound caps both memory and the blast
//!    radius of adversarial query streams.

use crate::lru::Lru;
use crate::protocol::{render_f64_array, QueryError, QueryKind};
use fedval_coalition::approx::WideGame;
use fedval_coalition::{
    nucleolus, try_approx_shapley_wide, ApproxConfig, ApproxShapley, CachedGame, Coalition,
    CoalitionalGame, TableGame, EXACT_SHAPLEY_MAX_PLAYERS, MAX_PLAYERS as BITSET_MAX_PLAYERS,
    MAX_SAMPLED_PLAYERS, NUCLEOLUS_MAX_PLAYERS,
};
use fedval_core::sharing::shapley_hat_of;
use fedval_core::{Demand, ExperimentClass, Facility, FederationGame, Volume};
use fedval_obs::OrderedMutex;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Everything needed to (re)build a federation scenario. Kept separate
/// from the built artifacts so what-if queries can derive modified
/// copies cheaply.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Locations per facility.
    pub locations: Vec<u32>,
    /// Per-location capacity per facility.
    pub capacities: Vec<u64>,
    /// Diversity threshold ℓ of the single experiment class.
    pub threshold: f64,
    /// Utility exponent d.
    pub shape: f64,
    /// Number of experiments; `None` = capacity-filling demand.
    pub volume: Option<u64>,
}

impl ScenarioSpec {
    /// The paper's §4.1 worked example: L = (100, 400, 800), R = 1,
    /// ℓ = 500, d = 1, one experiment.
    pub fn paper_4_1() -> ScenarioSpec {
        ScenarioSpec {
            locations: vec![100, 400, 800],
            capacities: vec![1, 1, 1],
            threshold: 500.0,
            shape: 1.0,
            volume: Some(1),
        }
    }

    /// Player count.
    pub fn n(&self) -> usize {
        self.locations.len()
    }

    /// Builds the facility list (disjoint location ranges, player
    /// order = spec order).
    pub fn facilities(&self) -> Vec<Facility> {
        let mut start = 0u32;
        self.locations
            .iter()
            .zip(&self.capacities)
            .enumerate()
            .map(|(i, (&l, &r))| {
                let f = Facility::uniform(format!("facility-{}", i + 1), start, l, r);
                start = start.saturating_add(l);
                f
            })
            .collect()
    }

    /// Builds the demand profile.
    pub fn demand(&self) -> Demand {
        let class = ExperimentClass::simple("serve", self.threshold, self.shape);
        match self.volume {
            Some(1) => Demand::one_experiment(class),
            Some(k) => Demand::single(class, Volume::Count(k)),
            None => Demand::capacity_filling(class),
        }
    }

    /// The spec with one facility appended (what-if-join).
    ///
    /// Joins past the exact-enumeration caps are fine — the solve falls
    /// through to the sampled Shapley estimator — so the only bound is
    /// the estimator's own [`MAX_SAMPLED_PLAYERS`].
    ///
    /// # Errors
    /// `BAD_REQUEST` when the result would exceed the sampled-path
    /// player bound.
    pub fn join(&self, locations: u32, capacity: u64) -> Result<ScenarioSpec, QueryError> {
        if self.n() + 1 > MAX_SAMPLED_PLAYERS {
            return Err(QueryError::new(
                "BAD_REQUEST",
                format!(
                    "cannot join: {MAX_SAMPLED_PLAYERS} players is the sampled-Shapley limit"
                ),
            ));
        }
        let mut spec = self.clone();
        spec.locations.push(locations);
        spec.capacities.push(capacity);
        Ok(spec)
    }

    /// The spec with player `player` removed (what-if-leave).
    ///
    /// # Errors
    /// `BAD_REQUEST` when `player` is out of range or the departure
    /// would leave an empty federation.
    pub fn leave(&self, player: usize) -> Result<ScenarioSpec, QueryError> {
        if player >= self.n() {
            return Err(QueryError::new(
                "BAD_REQUEST",
                format!("player {player} out of range (n={})", self.n()),
            ));
        }
        if self.n() == 1 {
            return Err(QueryError::new(
                "BAD_REQUEST",
                "cannot leave: the federation would be empty",
            ));
        }
        let mut spec = self.clone();
        spec.locations.remove(player);
        spec.capacities.remove(player);
        Ok(spec)
    }
}

/// An owned [`CoalitionalGame`] over a spec's facilities and demand —
/// the borrow-free form [`CachedGame`] needs to live inside shared
/// server state.
pub struct ScenarioGame {
    facilities: Vec<Facility>,
    demand: Demand,
}

impl ScenarioGame {
    /// Builds the owned game for a spec.
    pub fn new(spec: &ScenarioSpec) -> ScenarioGame {
        ScenarioGame {
            facilities: spec.facilities(),
            demand: spec.demand(),
        }
    }
}

impl CoalitionalGame for ScenarioGame {
    fn n_players(&self) -> usize {
        self.facilities.len()
    }

    fn value(&self, coalition: Coalition) -> f64 {
        FederationGame::new(&self.facilities, &self.demand).value(coalition)
    }
}

impl WideGame for ScenarioGame {
    fn n_players(&self) -> usize {
        self.facilities.len()
    }

    /// `V(S)` over member slices — what the sampled Shapley estimator
    /// and the wide `coalition-value` path consume past 64 players.
    fn value_members(&self, members: &[usize]) -> f64 {
        FederationGame::new(&self.facilities, &self.demand).value_members(members)
    }
}

/// Outcome of warming the state (reported by the daemon at startup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmReport {
    /// Coalition values now memoized (2^n).
    pub coalitions: usize,
    /// Whether the ϕ̂ payload rendered cleanly.
    pub shapley_ok: bool,
    /// Whether the nucleolus payload rendered cleanly.
    pub nucleolus_ok: bool,
}

/// Shared, thread-safe query state. One instance serves every worker.
pub struct ServeState {
    spec: ScenarioSpec,
    cached: CachedGame<ScenarioGame>,
    /// Sampled-Shapley parameters: budget, seed, confidence, method,
    /// threads, and the `--approx` force flag. Per-seed deterministic,
    /// so the pre-rendered payloads stay byte-identical.
    approx: ApproxConfig,
    shapley: OnceLock<Result<String, QueryError>>,
    nucleolus: OnceLock<Result<String, QueryError>>,
    /// Derived-scenario LRU behind an [`OrderedMutex`] so debug builds
    /// validate its acquisition order against every other named lock
    /// (DESIGN.md §12). Poison recovery lives inside the wrapper.
    whatif: OrderedMutex<Lru<WhatIfKey, Result<String, QueryError>>>,
}

/// Cache key for one derived scenario.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum WhatIfKey {
    Join { locations: u32, capacity: u64 },
    Leave { player: usize },
}

impl ServeState {
    /// Creates cold state for a spec; `whatif_capacity` bounds the
    /// derived-scenario LRU.
    pub fn new(spec: ScenarioSpec, whatif_capacity: usize) -> ServeState {
        let cached = CachedGame::new(ScenarioGame::new(&spec));
        ServeState {
            spec,
            cached,
            approx: ApproxConfig::default(),
            shapley: OnceLock::new(),
            nucleolus: OnceLock::new(),
            whatif: OrderedMutex::new("serve.whatif", Lru::new(whatif_capacity)),
        }
    }

    /// Sets the sampled-Shapley parameters (builder style). Must be set
    /// before the first query: the payload caches render exactly once.
    pub fn with_approx(mut self, approx: ApproxConfig) -> ServeState {
        self.approx = approx;
        self
    }

    /// The sampled-Shapley parameters in effect.
    pub fn approx_config(&self) -> &ApproxConfig {
        &self.approx
    }

    /// True when share queries are answered by the sampled estimator:
    /// the resident scenario is past [`EXACT_SHAPLEY_MAX_PLAYERS`], or
    /// the operator forced sampling with `--approx`. Mirrors the
    /// dispatch guard in [`ServeState::execute`]; `stats` uses it so
    /// the advertised method can never drift from the answering path.
    pub fn approx_active(&self) -> bool {
        self.approx.force || self.n() > EXACT_SHAPLEY_MAX_PLAYERS
    }

    /// The scenario spec being served.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Player count of the base scenario.
    pub fn n(&self) -> usize {
        self.spec.n()
    }

    /// Coalition values currently memoized in the single-flight cache.
    pub fn coalitions_cached(&self) -> usize {
        self.cached.cached_len()
    }

    /// Pre-warms every cache layer: all `2^n` coalition values, the ϕ̂
    /// payload, and the nucleolus payload. `threads` shards the
    /// coalition sweep.
    ///
    /// Past [`EXACT_SHAPLEY_MAX_PLAYERS`] the `2^n` coalition sweep is
    /// skipped (it would never finish); only the payloads are rendered,
    /// which on that path means one sampled-estimator run.
    pub fn warm(&self, threads: usize) -> WarmReport {
        let _span = fedval_obs::span_with("serve.state.warm", || {
            format!("n={} threads={threads}", self.n())
        });
        let coalitions = if self.n() <= EXACT_SHAPLEY_MAX_PLAYERS {
            self.cached.prewarm(threads)
        } else {
            fedval_obs::counter_add("serve.warm.prewarm_skipped", 1);
            0
        };
        let shapley_ok = self.shapley_payload().is_ok();
        let nucleolus_ok = self.nucleolus_payload().is_ok();
        WarmReport {
            coalitions,
            shapley_ok,
            nucleolus_ok,
        }
    }

    /// Executes one compute-kind query, returning the rendered payload
    /// (the `"kind":…` body of the response line).
    ///
    /// # Errors
    /// `BAD_REQUEST` for out-of-range players, `SOLVE_FAILED` when the
    /// characteristic-function table cannot be materialized.
    pub fn execute(&self, kind: &QueryKind) -> Result<String, QueryError> {
        match kind {
            QueryKind::CoalitionValue { coalition } => self.coalition_value(coalition),
            QueryKind::Shapley => self.shapley_payload().clone(),
            QueryKind::Nucleolus => self.nucleolus_payload().clone(),
            QueryKind::WhatIfJoin {
                locations,
                capacity,
            } => self.what_if(WhatIfKey::Join {
                locations: *locations,
                capacity: *capacity,
            }),
            QueryKind::WhatIfLeave { player } => {
                self.what_if(WhatIfKey::Leave { player: *player })
            }
            QueryKind::ChaosPanic => {
                // Deliberate fault injection: the server only routes
                // this kind here when started with `--chaos-harness`,
                // and the worker's catch_unwind turns the panic into a
                // typed INTERNAL response. This is how the fedchaos
                // suite proves worker supervision end to end.
                fedval_obs::counter_add("serve.chaos.panic_injected", 1);
                // lint: allow(no-panic-path) — chaos harness: this panic is the fault being injected
                panic!("chaos-panic: deliberate injected worker panic");
            }
            // Health / stats / shutdown are answered by the server
            // inline and never reach the compute path.
            other => Err(QueryError::new(
                "BAD_REQUEST",
                format!("'{}' is not a compute query", other.name()),
            )),
        }
    }

    fn coalition_value(&self, players: &[usize]) -> Result<String, QueryError> {
        let n = self.n();
        for &p in players {
            if p >= n {
                return Err(QueryError::new(
                    "BAD_REQUEST",
                    format!("player {p} out of range (n={n})"),
                ));
            }
        }
        if n > BITSET_MAX_PLAYERS {
            // Wide federations have no bitset form: canonicalize the
            // member list and evaluate through the wide game, uncached
            // (these are rare, explicitly-targeted probes).
            let mut members = players.to_vec();
            members.sort_unstable();
            members.dedup();
            fedval_obs::counter_add("serve.coalition.wide_evals", 1);
            let value = ScenarioGame::new(&self.spec).value_members(&members);
            let members: Vec<String> = members.iter().map(|p| p.to_string()).collect();
            return Ok(format!(
                "\"kind\":\"coalition-value\",\"coalition\":[{}],\"value\":{}",
                members.join(","),
                fedval_obs::json_f64(value)
            ));
        }
        let mut mask = Coalition::EMPTY;
        for &p in players {
            mask = mask.with(p);
        }
        let value = self.cached.value(mask);
        let members: Vec<String> = mask.players().map(|p| p.to_string()).collect();
        Ok(format!(
            "\"kind\":\"coalition-value\",\"coalition\":[{}],\"value\":{}",
            members.join(","),
            fedval_obs::json_f64(value)
        ))
    }

    /// Renders ϕ̂ of the base scenario, once; later calls reuse the
    /// identical string.
    fn shapley_payload(&self) -> &Result<String, QueryError> {
        self.shapley
            .get_or_init(|| self.solve_shares("shapley", &self.spec, SolveWhich::Shapley))
    }

    fn nucleolus_payload(&self) -> &Result<String, QueryError> {
        self.nucleolus
            .get_or_init(|| self.solve_shares("nucleolus", &self.spec, SolveWhich::Nucleolus))
    }

    /// Materializes the base table through the shared coalition cache,
    /// so a pre-warmed cache makes this pure lookups.
    fn base_table(&self) -> Result<TableGame, QueryError> {
        TableGame::try_from_game(&self.cached)
            .map_err(|e| QueryError::new("SOLVE_FAILED", e.to_string()))
    }

    fn solve_shares(
        &self,
        kind: &str,
        spec: &ScenarioSpec,
        which: SolveWhich,
    ) -> Result<String, QueryError> {
        let _span = fedval_obs::span_with("serve.state.solve", || format!("kind={kind}"));
        match which {
            SolveWhich::Shapley
                if self.approx.force || spec.n() > EXACT_SHAPLEY_MAX_PLAYERS =>
            {
                // Solver selection: past the exact cap (or under
                // `--approx`) the query is answered by the sampled
                // estimator with its confidence-interval certificate.
                return self.sampled_shares(kind, spec);
            }
            SolveWhich::Nucleolus if spec.n() > NUCLEOLUS_MAX_PLAYERS => {
                return Err(QueryError::new(
                    "SOLVE_FAILED",
                    format!(
                        "nucleolus: game has {} players but exact enumeration supports at \
                         most {NUCLEOLUS_MAX_PLAYERS}; the nucleolus has no sampled \
                         fallback — query shapley instead",
                        spec.n()
                    ),
                ));
            }
            _ => {}
        }
        let table = if spec == &self.spec {
            self.base_table()?
        } else {
            let game = ScenarioGame::new(spec);
            TableGame::try_from_game(&game)
                .map_err(|e| QueryError::new("SOLVE_FAILED", e.to_string()))?
        };
        render_shares_payload(kind, &table, which)
    }

    /// Runs the seeded sampled-Shapley estimator on `spec` and renders
    /// the approx payload (shares + CI + budget + seed). Byte-identical
    /// per `(spec, approx config)` at any thread count.
    fn sampled_shares(&self, kind: &str, spec: &ScenarioSpec) -> Result<String, QueryError> {
        let game = ScenarioGame::new(spec);
        let approx = try_approx_shapley_wide(&game, &self.approx)
            .map_err(|e| QueryError::new("SOLVE_FAILED", e.to_string()))?;
        Ok(render_approx_payload(kind, spec.n(), &approx))
    }

    fn what_if(&self, key: WhatIfKey) -> Result<String, QueryError> {
        // Hit/miss tallies live only in the sharded metric registry
        // (`serve.whatif.{hits,misses}`): the stats payload and the
        // metrics exposition both read the same fold.
        let mut lru = self.whatif.lock();
        if let Some(cached) = lru.get(&key) {
            fedval_obs::counter_add("serve.whatif.hits", 1);
            return cached.clone();
        }
        fedval_obs::counter_add("serve.whatif.misses", 1);
        // Solve while holding the LRU lock: what-if misses are the rare
        // expensive path, and the lock gives single-flight semantics —
        // concurrent identical what-ifs solve once, not N times.
        let (kind, derived) = match &key {
            WhatIfKey::Join {
                locations,
                capacity,
            } => ("what-if-join", self.spec.join(*locations, *capacity)),
            WhatIfKey::Leave { player } => ("what-if-leave", self.spec.leave(*player)),
        };
        let result = derived.and_then(|spec| self.solve_shares(kind, &spec, SolveWhich::Shapley));
        // Deterministic outcomes (answers and request-shape rejections)
        // are cached; solver failures are NOT — pinning one would keep
        // serving a stale error after the condition clears (the bug that
        // used to wedge joins which crossed the old exact-solver cap).
        match &result {
            Ok(_) => {
                lru.insert(key, result.clone());
            }
            Err(e) if e.code == "BAD_REQUEST" => {
                lru.insert(key, result.clone());
            }
            Err(_) => {
                fedval_obs::counter_add("serve.whatif.errors_uncached", 1);
            }
        }
        result
    }
}

/// Which solution concept a share solve runs.
#[derive(Debug, Clone, Copy)]
enum SolveWhich {
    Shapley,
    Nucleolus,
}

fn render_shares_payload(
    kind: &str,
    table: &TableGame,
    which: SolveWhich,
) -> Result<String, QueryError> {
    let grand = table.grand_value();
    let shares = match which {
        SolveWhich::Shapley => shapley_hat_of(table),
        SolveWhich::Nucleolus => {
            if grand.abs() < 1e-12 {
                vec![0.0; table.n_players()]
            } else {
                nucleolus(table).into_iter().map(|v| v / grand).collect()
            }
        }
    };
    Ok(format!(
        "\"kind\":\"{kind}\",\"n\":{},\"grand_value\":{},\"shares\":{}",
        table.n_players(),
        fedval_obs::json_f64(grand),
        render_f64_array(&shares)
    ))
}

/// Renders the sampled-estimator payload: the exact payload's prefix
/// (`kind`/`n`/`grand_value`/`shares`) plus the certificate fields —
/// `approx`, `method`, `samples`, `confidence`, `seed`, and the
/// per-player CI half-widths normalized by `V(N)`.
fn render_approx_payload(kind: &str, n: usize, approx: &ApproxShapley) -> String {
    format!(
        "\"kind\":\"{kind}\",\"n\":{n},\"grand_value\":{},\"shares\":{},\
         \"approx\":true,\"method\":\"{}\",\"samples\":{},\"confidence\":{},\
         \"seed\":{},\"ci\":{}",
        fedval_obs::json_f64(approx.grand_value),
        render_f64_array(&approx.shares()),
        approx.method.as_str(),
        approx.samples,
        fedval_obs::json_f64(approx.confidence),
        approx.seed,
        render_f64_array(&approx.ci_shares()),
    )
}

/// Locks a mutex, recovering from poisoning: every structure behind
/// these locks stays coherent across unwinds (the LRU mutates under
/// `&mut self` with no partial states observable after a panic).
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServeState {
        ServeState::new(ScenarioSpec::paper_4_1(), 4)
    }

    #[test]
    fn approx_active_mirrors_the_dispatch_guard() {
        // n=3, no force: exact path.
        assert!(!state().approx_active());
        // Same scenario, operator-forced sampling.
        assert!(state()
            .with_approx(ApproxConfig {
                force: true,
                ..ApproxConfig::default()
            })
            .approx_active());
        // Past the exact cap: sampled regardless of the force flag.
        let wide = ScenarioSpec {
            locations: vec![8; EXACT_SHAPLEY_MAX_PLAYERS + 1],
            capacities: vec![1; EXACT_SHAPLEY_MAX_PLAYERS + 1],
            threshold: 20.0,
            shape: 1.0,
            volume: Some(1),
        };
        assert!(ServeState::new(wide, 4).approx_active());
    }

    #[test]
    fn coalition_value_matches_the_paper() {
        let s = state();
        let payload = s
            .execute(&QueryKind::CoalitionValue {
                coalition: vec![0, 1, 2],
            })
            .unwrap();
        assert_eq!(
            payload,
            "\"kind\":\"coalition-value\",\"coalition\":[0,1,2],\"value\":1300"
        );
        // Duplicates are idempotent and membership is canonicalized.
        let dup = s
            .execute(&QueryKind::CoalitionValue {
                coalition: vec![2, 0, 1, 1, 2],
            })
            .unwrap();
        assert_eq!(dup, payload);
    }

    #[test]
    fn out_of_range_players_are_bad_requests() {
        let s = state();
        let err = s
            .execute(&QueryKind::CoalitionValue {
                coalition: vec![7],
            })
            .unwrap_err();
        assert_eq!(err.code, "BAD_REQUEST");
    }

    #[test]
    fn shapley_payload_is_cached_and_correct() {
        let s = state();
        let a = s.execute(&QueryKind::Shapley).unwrap();
        let b = s.execute(&QueryKind::Shapley).unwrap();
        assert_eq!(a, b, "identical queries must serve identical bytes");
        assert!(a.starts_with("\"kind\":\"shapley\",\"n\":3,\"grand_value\":1300,"));
        // ϕ̂₂ = 2/13 from the worked example; compare a truncated
        // decimal prefix, since the solver's summation order may land
        // one ulp away from the literal `2.0 / 13.0`.
        assert!(a.contains("0.15384615384615"), "{a}");
    }

    #[test]
    fn nucleolus_payload_renders() {
        let s = state();
        let p = s.execute(&QueryKind::Nucleolus).unwrap();
        assert!(p.starts_with("\"kind\":\"nucleolus\",\"n\":3,"), "{p}");
    }

    #[test]
    fn warm_fills_every_layer() {
        let s = state();
        let report = s.warm(2);
        assert_eq!(report.coalitions, 8);
        assert!(report.shapley_ok && report.nucleolus_ok);
        assert_eq!(s.coalitions_cached(), 8);
    }

    #[test]
    fn what_if_join_adds_a_player_and_caches() {
        let s = state();
        let kind = QueryKind::WhatIfJoin {
            locations: 200,
            capacity: 1,
        };
        let a = s.execute(&kind).unwrap();
        assert!(a.starts_with("\"kind\":\"what-if-join\",\"n\":4,"), "{a}");
        assert_eq!(s.whatif.lock().len(), 1, "the miss must populate the LRU");
        let b = s.execute(&kind).unwrap();
        assert_eq!(a, b, "the hit must serve the cached bytes");
        assert_eq!(s.whatif.lock().len(), 1, "the hit must not re-insert");
    }

    #[test]
    fn what_if_leave_drops_a_player() {
        let s = state();
        let p = s
            .execute(&QueryKind::WhatIfLeave { player: 0 })
            .unwrap();
        assert!(p.starts_with("\"kind\":\"what-if-leave\",\"n\":2,"), "{p}");
        // Removing facility 1 (L=100) leaves L=(400,800): with ℓ=500
        // the pair still clears the diversity threshold.
        assert!(p.contains("\"grand_value\":1200"), "{p}");
    }

    #[test]
    fn what_if_errors_are_cached_as_bad_requests() {
        let s = state();
        let err = s
            .execute(&QueryKind::WhatIfLeave { player: 9 })
            .unwrap_err();
        assert_eq!(err.code, "BAD_REQUEST");
        let again = s
            .execute(&QueryKind::WhatIfLeave { player: 9 })
            .unwrap_err();
        assert_eq!(again, err, "the cached error must be served verbatim");
        assert_eq!(s.whatif.lock().len(), 1, "errors are cached, not re-derived");
    }

    #[test]
    fn lru_bound_holds_under_many_distinct_whatifs() {
        let s = ServeState::new(ScenarioSpec::paper_4_1(), 2);
        for loc in 1..=6u32 {
            let _ = s.execute(&QueryKind::WhatIfJoin {
                locations: loc,
                capacity: 1,
            });
        }
        let lru = s.whatif.lock();
        assert_eq!(lru.len(), 2, "LRU must stay at its bound");
    }

    #[test]
    fn spec_join_and_leave_validate() {
        let spec = ScenarioSpec::paper_4_1();
        assert_eq!(spec.join(10, 1).unwrap().n(), 4);
        assert_eq!(spec.leave(1).unwrap().n(), 2);
        assert!(spec.leave(3).is_err());
        let solo = ScenarioSpec {
            locations: vec![5],
            capacities: vec![1],
            ..ScenarioSpec::paper_4_1()
        };
        assert!(solo.leave(0).is_err());
        let mut big = spec.clone();
        big.locations = vec![1; MAX_SAMPLED_PLAYERS];
        big.capacities = vec![1; MAX_SAMPLED_PLAYERS];
        assert!(
            big.join(1, 1).is_err(),
            "joins past the sampled-path bound fail"
        );
        // Joins past the old dense-table cap succeed now: they fall
        // through to the sampled estimator.
        let mut wide = spec.clone();
        wide.locations = vec![1; TableGame::MAX_PLAYERS];
        wide.capacities = vec![1; TableGame::MAX_PLAYERS];
        assert_eq!(
            wide.join(1, 1).unwrap().n(),
            TableGame::MAX_PLAYERS + 1,
            "joins may cross the exact caps"
        );
    }

    #[test]
    fn what_if_join_crossing_the_exact_cap_uses_the_estimator() {
        // 16 facilities = exactly the exact-solver cap; one join crosses
        // it, and the solve must fall through to the sampled estimator
        // instead of erroring (the old behaviour pinned a TooManyPlayers
        // error in the LRU).
        let spec = ScenarioSpec {
            locations: vec![8; EXACT_SHAPLEY_MAX_PLAYERS],
            capacities: vec![1; EXACT_SHAPLEY_MAX_PLAYERS],
            threshold: 20.0,
            shape: 1.0,
            volume: Some(1),
        };
        let s = ServeState::new(spec, 4).with_approx(ApproxConfig {
            samples: 32,
            seed: 9,
            ..ApproxConfig::default()
        });
        let kind = QueryKind::WhatIfJoin {
            locations: 12,
            capacity: 1,
        };
        let a = s.execute(&kind).unwrap();
        assert!(a.starts_with("\"kind\":\"what-if-join\",\"n\":17,"), "{a}");
        assert!(a.contains("\"approx\":true"), "{a}");
        assert!(a.contains("\"samples\":32"), "{a}");
        assert!(a.contains("\"seed\":9"), "{a}");
        assert!(a.contains("\"ci\":["), "{a}");
        let b = s.execute(&kind).unwrap();
        assert_eq!(a, b, "sampled what-ifs serve cached identical bytes");
        assert_eq!(s.whatif.lock().len(), 1);
    }

    #[test]
    fn solver_failures_are_not_pinned_in_the_lru() {
        // samples = 0 is a solver-layer failure (NoSamples), not a
        // request-shape error: it must not be cached, so a later
        // identical query re-runs the solve instead of serving a stale
        // error forever.
        let s = ServeState::new(ScenarioSpec::paper_4_1(), 4).with_approx(ApproxConfig {
            samples: 0,
            force: true,
            ..ApproxConfig::default()
        });
        let kind = QueryKind::WhatIfJoin {
            locations: 50,
            capacity: 1,
        };
        let err = s.execute(&kind).unwrap_err();
        assert_eq!(err.code, "SOLVE_FAILED");
        assert_eq!(
            s.whatif.lock().len(),
            0,
            "solver failures must not populate the LRU"
        );
        let again = s.execute(&kind).unwrap_err();
        assert_eq!(again.code, "SOLVE_FAILED");
    }

    #[test]
    fn large_federation_shapley_is_sampled_and_deterministic() {
        let spec = ScenarioSpec {
            locations: vec![6; 40],
            capacities: vec![1; 40],
            threshold: 30.0,
            shape: 1.0,
            volume: Some(1),
        };
        let approx = ApproxConfig {
            samples: 48,
            seed: 7,
            ..ApproxConfig::default()
        };
        let one_thread = ServeState::new(spec.clone(), 4).with_approx(approx.clone());
        let four_threads = ServeState::new(spec, 4).with_approx(ApproxConfig {
            threads: 4,
            ..approx
        });
        let a = one_thread.execute(&QueryKind::Shapley).unwrap();
        let b = four_threads.execute(&QueryKind::Shapley).unwrap();
        assert_eq!(a, b, "sampling must be byte-identical at any thread count");
        assert!(a.starts_with("\"kind\":\"shapley\",\"n\":40,"), "{a}");
        assert!(a.contains("\"approx\":true"), "{a}");
        // The nucleolus has no sampled fallback: typed error, no panic.
        let err = one_thread.execute(&QueryKind::Nucleolus).unwrap_err();
        assert_eq!(err.code, "SOLVE_FAILED");
        assert!(err.detail.contains("no sampled fallback"), "{}", err.detail);
        // Warm must not attempt the 2^40 sweep.
        let report = one_thread.warm(2);
        assert_eq!(report.coalitions, 0);
        assert!(report.shapley_ok);
        assert!(!report.nucleolus_ok);
    }

    #[test]
    fn coalition_value_works_past_the_bitset_width() {
        let spec = ScenarioSpec {
            locations: vec![5; 70],
            capacities: vec![1; 70],
            threshold: 8.0,
            shape: 1.0,
            volume: Some(1),
        };
        let s = ServeState::new(spec, 4);
        let p = s
            .execute(&QueryKind::CoalitionValue {
                coalition: vec![69, 0, 1, 1],
            })
            .unwrap();
        assert!(
            p.starts_with("\"kind\":\"coalition-value\",\"coalition\":[0,1,69],"),
            "{p}"
        );
        assert!(p.contains("\"value\":15"), "three facilities × 5 locations: {p}");
        let err = s
            .execute(&QueryKind::CoalitionValue {
                coalition: vec![70],
            })
            .unwrap_err();
        assert_eq!(err.code, "BAD_REQUEST");
    }

    #[test]
    fn forced_approx_covers_the_exact_worked_example() {
        let s = ServeState::new(ScenarioSpec::paper_4_1(), 4).with_approx(ApproxConfig {
            samples: 2048,
            seed: 3,
            force: true,
            ..ApproxConfig::default()
        });
        let p = s.execute(&QueryKind::Shapley).unwrap();
        assert!(p.contains("\"approx\":true"), "{p}");
        assert!(p.contains("\"grand_value\":1300"), "{p}");
    }

    #[test]
    fn non_compute_kinds_are_rejected_by_execute() {
        let s = state();
        assert_eq!(s.execute(&QueryKind::Health).unwrap_err().code, "BAD_REQUEST");
    }
}
