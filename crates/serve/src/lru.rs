//! A small bounded LRU map for derived what-if scenarios.
//!
//! Capacity is a hard bound: inserting into a full cache evicts the
//! least-recently-*used* entry first (reads count as uses). The map is
//! a `BTreeMap` and eviction scans for the minimum use-tick, which is
//! O(capacity) — fine at the tens-of-entries scale the what-if cache
//! runs at, and fully deterministic (no hash-seed-dependent choices).

use std::collections::BTreeMap;

/// Bounded least-recently-used map.
#[derive(Debug)]
pub struct Lru<K: Ord + Clone, V> {
    map: BTreeMap<K, (u64, V)>,
    tick: u64,
    capacity: usize,
}

impl<K: Ord + Clone, V> Lru<K, V> {
    /// Creates an empty cache holding at most `capacity` entries
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            map: BTreeMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count (≤ capacity, always).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.0 = tick;
                Some(&entry.1)
            }
            None => None,
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if
    /// the cache is full and `key` is new. Returns the evicted key, if
    /// any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.tick += 1;
        let tick = self.tick;
        if self.map.contains_key(&key) {
            self.map.insert(key, (tick, value));
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            // Oldest tick = least recently used. Ties are impossible:
            // ticks are unique.
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = Some(oldest);
            }
        }
        self.map.insert(key, (tick, value));
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_round_trip() {
        let mut lru: Lru<u32, &str> = Lru::new(4);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(1, "one");
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut lru: Lru<u32, u32> = Lru::new(3);
        for i in 0..10 {
            lru.insert(i, i * 10);
            assert!(lru.len() <= 3, "len {} exceeds capacity", lru.len());
        }
        // Last three inserted survive.
        assert_eq!(lru.get(&9), Some(&90));
        assert_eq!(lru.get(&8), Some(&80));
        assert_eq!(lru.get(&7), Some(&70));
        assert_eq!(lru.get(&0), None);
    }

    #[test]
    fn reads_refresh_recency() {
        let mut lru: Lru<u32, ()> = Lru::new(2);
        lru.insert(1, ());
        lru.insert(2, ());
        // Touch 1 so 2 becomes the LRU entry.
        assert!(lru.get(&1).is_some());
        let evicted = lru.insert(3, ());
        assert_eq!(evicted, Some(2));
        assert!(lru.get(&1).is_some());
        assert!(lru.get(&3).is_some());
        assert_eq!(lru.get(&2), None);
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.insert(1, 11), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.get(&2), Some(&20));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut lru: Lru<u32, ()> = Lru::new(0);
        assert_eq!(lru.capacity(), 1);
        lru.insert(1, ());
        lru.insert(2, ());
        assert_eq!(lru.len(), 1);
    }
}
