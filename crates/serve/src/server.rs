//! The long-running TCP server: acceptor, fixed worker pool, bounded
//! request queue, explicit backpressure, deadlines, graceful drain.
//!
//! ## Threading model
//!
//! * **One acceptor thread** owns the listener and spawns one
//!   I/O-bound reader thread per connection.
//! * **Reader threads** frame and parse requests. Cheap kinds
//!   (`health`, `stats`, `metrics`, `shutdown`) are answered inline so
//!   they stay responsive even when the compute queue is saturated.
//!   Compute kinds are pushed onto the shared bounded queue.
//! * **One sampler thread** folds the sharded metric registry into the
//!   per-second ring buffer the `metrics` query serves (see
//!   [`crate::metrics`]).
//! * **A fixed pool of `threads` worker threads** pops the queue,
//!   enforces the per-request deadline, executes against the warm
//!   [`ServeState`], and writes the response. Responses carry the
//!   request id, so per-connection ordering does not matter.
//!
//! ## Backpressure contract
//!
//! The queue is bounded at `queue_depth`. A request that arrives while
//! the queue is full is answered **immediately** with a `BUSY` error —
//! the server never buffers unbounded work, never drops a connection
//! without a response, and never blocks the reader on the queue. A
//! request that waited in the queue longer than `deadline` is answered
//! with `DEADLINE` instead of being executed — stale what-if answers
//! are worse than fast failures in a policy loop.
//!
//! ## Drain
//!
//! Shutdown (the `shutdown` query, or [`Server::shutdown`]) stops the
//! acceptor, half-closes every connection for reads (in-flight
//! responses still go out), lets the workers finish every job already
//! queued, and joins all threads. Requests arriving mid-drain get
//! `SHUTTING_DOWN`.

use crate::metrics::{render_metrics_payload, MetricsRing};
use crate::protocol::{
    parse_request, render_err, render_ok, ProtocolError, QueryKind, Request, MAX_FRAME,
};
use crate::state::{lock_recover, ServeState};
use fedval_obs::OrderedMutex;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing compute queries.
    pub threads: usize,
    /// Bounded request-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Per-request deadline, measured from enqueue to dequeue.
    pub deadline: Duration,
    /// Accept-time cap on simultaneously served connections. A
    /// connection accepted while the cap is reached is answered with a
    /// single `BUSY` line and closed immediately (shed) — it never gets
    /// a reader thread, so a connect flood cannot exhaust threads or
    /// descriptors.
    pub max_connections: usize,
    /// Per-socket read *and* write timeout on every accepted
    /// connection. A read that makes no byte progress across one whole
    /// timeout window mid-frame closes the connection; a write that
    /// cannot complete within it fails instead of pinning a worker on a
    /// dead or stalled peer.
    pub io_timeout: Duration,
    /// Maximum wall time one frame may take from its first byte to its
    /// newline. Defeats slow-drip (slowloris) clients that keep making
    /// just enough byte progress to dodge the per-read timeout.
    pub frame_deadline: Duration,
    /// Maximum time a connection may sit idle *between* frames before
    /// it is closed (silently — an idle close is not an error).
    pub idle_timeout: Duration,
    /// Honour the `chaos-panic` query (a deliberate worker panic used
    /// by the `fedchaos` harness to prove worker supervision works).
    /// Disabled by default; disabled servers answer it `BAD_REQUEST`.
    pub chaos_panic: bool,
    /// Execution-time threshold for slow-request exemplars: a compute
    /// request whose `execute` takes at least this long has its
    /// captured span tree replayed into the trace sink and its response
    /// tagged with the request's trace id. Tests set
    /// [`Duration::ZERO`] to make every request an exemplar.
    pub slow_trace: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: available_threads(),
            queue_depth: 1024,
            deadline: Duration::from_millis(2_000),
            max_connections: 256,
            io_timeout: Duration::from_secs(10),
            frame_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            chaos_panic: false,
            slow_trace: Duration::from_millis(250),
        }
    }
}

/// Worker threads the hardware offers, floor 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Samples the ring holds (~2 minutes at the 1 Hz sample interval).
const RING_CAPACITY: usize = 120;

/// How often the sampler thread folds the registry into the ring.
const SAMPLE_INTERVAL: Duration = Duration::from_secs(1);

/// The per-second sampler: folds the sharded registry into one
/// [`RingSample`](crate::metrics::RingSample) per tick until the drain
/// flag rises. Rides the shutdown condvar so the drain wakes it
/// immediately instead of waiting out the final tick.
fn sampler_loop(shared: &Shared) {
    let mut last = Instant::now();
    loop {
        {
            let mut flagged = lock_recover(&shared.shutdown_signal);
            while !*flagged {
                let (guard, timeout) = match shared
                    .shutdown_cv
                    .wait_timeout(flagged, SAMPLE_INTERVAL)
                {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                flagged = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *flagged {
                return;
            }
        }
        let fold = fedval_obs::metrics_fold();
        let t_s = shared.started.elapsed().as_secs();
        let elapsed_s = last.elapsed().as_secs_f64();
        last = Instant::now();
        let queue_depth = lock_recover(&shared.queue).len() as u64;
        shared.ring.lock().push(&fold, t_s, elapsed_s, queue_depth);
    }
}

/// Counters the `stats` query reports. All relaxed: they are
/// monotone operational telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Compute requests answered (ok or query error).
    pub answered: AtomicU64,
    /// Requests refused with `BUSY`.
    pub busy: AtomicU64,
    /// Requests expired with `DEADLINE`.
    pub deadline_expired: AtomicU64,
    /// Frames rejected with a typed protocol error.
    pub protocol_errors: AtomicU64,
    /// Requests refused with `SHUTTING_DOWN`.
    pub refused_draining: AtomicU64,
    /// Inline requests answered (health/stats/shutdown).
    pub inline_answered: AtomicU64,
    /// Connections shed at accept time (`BUSY` + close, over the cap).
    pub shed: AtomicU64,
    /// Worker restarts: caught panics mid-request plus respawns of the
    /// worker loop itself. `health` reports `degraded` whenever this
    /// advanced since the previous probe.
    pub worker_restarts: AtomicU64,
    /// Requests answered with a typed `INTERNAL` error (the request
    /// that was on a worker when it panicked — never silently lost).
    pub internal_errors: AtomicU64,
    /// Connections closed for stalling mid-frame or dripping bytes past
    /// the frame deadline (slowloris defense), plus idle closes.
    pub slow_closed: AtomicU64,
    /// Response writes that failed (dead peer, write timeout). The
    /// request still counts as answered; the bytes just had nowhere to
    /// go.
    pub write_failed: AtomicU64,
}

/// Final tally returned by [`Server::shutdown`] / [`Server::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Compute requests answered.
    pub answered: u64,
    /// `BUSY` refusals.
    pub busy: u64,
    /// `DEADLINE` expiries.
    pub deadline_expired: u64,
    /// Typed protocol errors returned.
    pub protocol_errors: u64,
    /// Connections shed at accept time (over the connection cap).
    pub shed: u64,
    /// Worker restarts over the server's lifetime (caught panics).
    pub worker_restarts: u64,
    /// Jobs still queued when the drain finished (always 0 — the
    /// workers drain the queue before exiting; reported so tests can
    /// assert it).
    pub abandoned: u64,
    /// Connections still registered after every thread joined (always
    /// 0 — readers deregister on exit; reported so tests can assert no
    /// descriptor leaked).
    pub open_conns: u64,
}

/// One queued compute request.
struct Job {
    request: Request,
    writer: Arc<Mutex<TcpStream>>,
    enqueued: Instant,
}

struct Shared {
    state: ServeState,
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutting_down: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cv: Condvar,
    stats: ServerStats,
    /// `worker_restarts` value at the last `health` probe: the probe
    /// reports `degraded` when the counter advanced since, then
    /// acknowledges it (one probe sees the degradation, the next sees
    /// `ok` again unless workers kept restarting).
    restarts_acked: AtomicU64,
    /// Live connections by id; readers deregister themselves on exit so
    /// short-lived connections don't leak file descriptors.
    conns: Mutex<std::collections::BTreeMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
    /// Per-second time-series ring fed by the sampler thread, served by
    /// the `metrics` query.
    ring: OrderedMutex<MetricsRing>,
    /// Monotone trace-id allocator; every dequeued compute request gets
    /// one, threaded through its span detail and (for slow requests)
    /// the response payload.
    next_trace_id: AtomicU64,
}

/// A running server. Dropping the handle does **not** stop the
/// threads; call [`Server::shutdown`] (or send a `shutdown` query and
/// [`Server::wait`]).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the acceptor and worker pool.
    ///
    /// # Errors
    /// Propagates socket errors from bind/local_addr.
    pub fn start(state: ServeState, addr: &str, config: ServerConfig) -> io::Result<Server> {
        // The metrics exposition and fold-sourced stats read the global
        // registry; make sure it is collecting even when the binary did
        // not install a trace sink (NullSink: records dropped, shards
        // still accumulate).
        fedval_obs::ensure_enabled();
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        let shared = Arc::new(Shared {
            state,
            config: ServerConfig { threads, ..config },
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            shutdown_signal: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            stats: ServerStats::default(),
            restarts_acked: AtomicU64::new(0),
            conns: Mutex::new(std::collections::BTreeMap::new()),
            next_conn_id: AtomicU64::new(0),
            conn_threads: Mutex::new(Vec::new()),
            started: Instant::now(),
            ring: OrderedMutex::new("serve.metrics.ring", MetricsRing::new(RING_CAPACITY)),
            next_trace_id: AtomicU64::new(1),
        });

        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || supervised_worker(&shared))
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(&listener, &shared))
        };

        let sampler = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || sampler_loop(&shared))
        };

        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            sampler: Some(sampler),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live operational counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Initiates a graceful drain without blocking: stops the
    /// acceptor, half-closes connections, releases the workers.
    pub fn initiate_shutdown(&self) {
        initiate_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until a drain is initiated (by [`Server::initiate_shutdown`]
    /// or a client's `shutdown` query), then joins every thread and
    /// reports the final tally.
    pub fn wait(mut self) -> DrainReport {
        {
            let mut flagged = lock_recover(&self.shared.shutdown_signal);
            while !*flagged {
                flagged = match self.shared.shutdown_cv.wait(flagged) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
        // The flag is set before the signal, but the acceptor may not
        // have been poked if the drain came from a client request on a
        // reader thread; poke it (idempotent).
        initiate_shutdown(&self.shared, self.local_addr);

        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        loop {
            let handle = lock_recover(&self.shared.conn_threads).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }

        let stats = &self.shared.stats;
        DrainReport {
            accepted: stats.accepted.load(Ordering::Relaxed),
            answered: stats.answered.load(Ordering::Relaxed),
            busy: stats.busy.load(Ordering::Relaxed),
            deadline_expired: stats.deadline_expired.load(Ordering::Relaxed),
            protocol_errors: stats.protocol_errors.load(Ordering::Relaxed),
            shed: stats.shed.load(Ordering::Relaxed),
            worker_restarts: stats.worker_restarts.load(Ordering::Relaxed),
            abandoned: lock_recover(&self.shared.queue).len() as u64,
            open_conns: lock_recover(&self.shared.conns).len() as u64,
        }
    }

    /// Initiates the drain and waits for it: the one-call stop used by
    /// tests and the daemon's signal-free teardown.
    pub fn shutdown(self) -> DrainReport {
        self.initiate_shutdown();
        self.wait()
    }
}

fn initiate_shutdown(shared: &Shared, local_addr: SocketAddr) {
    let first = !shared.shutting_down.swap(true, Ordering::SeqCst);
    {
        let mut flagged = lock_recover(&shared.shutdown_signal);
        *flagged = true;
    }
    shared.shutdown_cv.notify_all();
    shared.queue_cv.notify_all();
    if first {
        fedval_obs::event("serve.server.drain", Vec::new);
        // Unblock the acceptor with a throwaway self-connection; it
        // re-checks the flag after every accept.
        let _ = TcpStream::connect(local_addr);
        // Half-close every connection for reads: blocked readers wake
        // with EOF while queued responses can still be written.
        for conn in lock_recover(&shared.conns).values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

/// Joins reader threads that already finished so a long-lived server
/// under connection churn does not accumulate dead `JoinHandle`s.
fn reap_finished_readers(shared: &Shared) {
    let finished: Vec<JoinHandle<()>> = {
        let mut threads = lock_recover(&shared.conn_threads);
        let mut out = Vec::new();
        let mut i = 0;
        while i < threads.len() {
            if threads[i].is_finished() {
                out.push(threads.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out
    };
    for handle in finished {
        let _ = handle.join();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // The drain's self-connection (or a late client):
                    // close immediately, stop accepting.
                    drop(stream);
                    return;
                }
                reap_finished_readers(shared);
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                fedval_obs::counter_add("serve.conn.accepted", 1);
                let _ = stream.set_nodelay(true);
                // Both timeouts, before any byte moves: a peer that
                // stops reading or writing can cost at most io_timeout
                // per blocked operation, never a pinned thread.
                let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
                let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
                if lock_recover(&shared.conns).len() >= shared.config.max_connections {
                    // Shed: one BUSY line, then close. No reader thread
                    // is spawned and nothing is registered, so a connect
                    // flood is bounded work per connection.
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    fedval_obs::counter_add("serve.conn.shed", 1);
                    let mut stream = stream;
                    let line = render_err(
                        None,
                        "BUSY",
                        &format!(
                            "connection limit reached (max {})",
                            shared.config.max_connections
                        ),
                    );
                    let _ = stream
                        .write_all(line.as_bytes())
                        .and_then(|()| stream.write_all(b"\n"));
                    continue;
                }
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                match stream.try_clone() {
                    Ok(registered) => {
                        lock_recover(&shared.conns).insert(conn_id, registered);
                    }
                    Err(_) => {
                        // Can't register for drain half-close; refuse the
                        // connection rather than leak an undrainable reader.
                        drop(stream);
                        continue;
                    }
                }
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    connection_loop(&conn_shared, stream);
                    // Deregister so the duplicated fd closes with the
                    // reader; queued responses still hold their own
                    // writer clone until written.
                    lock_recover(&conn_shared.conns).remove(&conn_id);
                });
                lock_recover(&shared.conn_threads).push(handle);
            }
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // keep serving.
                std::thread::yield_now();
            }
        }
    }
}

/// What one framing attempt produced.
enum FrameRead {
    /// A complete frame is in the buffer.
    Frame,
    /// The frame exceeded [`MAX_FRAME`] before its newline.
    TooLarge,
    /// Clean end of stream.
    Eof,
    /// The socket read timeout expired. Any partial frame stays in
    /// `buf`; the caller decides between waiting more (byte progress
    /// was made, frame deadline not reached) and closing (stalled).
    TimedOut,
}

/// Reads one newline-terminated frame into `buf` (newline stripped,
/// trailing `\r` stripped), bounding memory at [`MAX_FRAME`]. The
/// caller clears `buf` between frames — on [`FrameRead::TimedOut`] the
/// partial frame is preserved so the read can resume.
fn read_frame(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<FrameRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(FrameRead::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF. A non-empty unterminated tail is handed to the
            // parser (it will reject it as truncated if incomplete).
            return Ok(if buf.is_empty() {
                FrameRead::Eof
            } else {
                FrameRead::Frame
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > MAX_FRAME {
                    reader.consume(pos + 1);
                    return Ok(FrameRead::TooLarge);
                }
                buf.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return Ok(FrameRead::Frame);
            }
            None => {
                let len = available.len();
                if buf.len() + len > MAX_FRAME {
                    reader.consume(len);
                    return Ok(FrameRead::TooLarge);
                }
                buf.extend_from_slice(available);
                reader.consume(len);
            }
        }
    }
}

/// Writes one response line; returns whether the bytes went out. A
/// failed write means the client left or stalled past the write
/// timeout — either way the connection is done for.
fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> bool {
    let mut stream = lock_recover(writer);
    stream
        .write_all(line.as_bytes()) // lint: allow(guard-across-blocking) — the per-connection writer lock exists to keep response lines whole; the socket write deadline bounds the hold
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

/// [`write_line`] plus the failed-write tally.
fn respond(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, line: &str) {
    if !write_line(writer, line) {
        shared.stats.write_failed.fetch_add(1, Ordering::Relaxed);
        fedval_obs::counter_add("serve.io.write_failed", 1);
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::with_capacity(16 * 1024, stream);
    let mut buf = Vec::with_capacity(256);
    // Byte-progress deadline tracking: `frame_started` is set at the
    // first timeout tick that observes a partial frame; `last_len` is
    // the partial length at the previous tick; `idle_since` restarts
    // whenever a frame completes.
    let mut idle_since = Instant::now();
    let mut frame_started: Option<Instant> = None;
    let mut last_len = 0usize;
    loop {
        match read_frame(&mut reader, &mut buf) {
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::TimedOut) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if buf.is_empty() {
                    // Idle between frames: tolerated up to idle_timeout,
                    // then closed silently — the client sent nothing we
                    // could answer.
                    if idle_since.elapsed() >= shared.config.idle_timeout {
                        shared.stats.slow_closed.fetch_add(1, Ordering::Relaxed);
                        fedval_obs::counter_add("serve.conn.idle_closed", 1);
                        return;
                    }
                    continue;
                }
                let started = *frame_started.get_or_insert_with(Instant::now);
                let progressed = buf.len() > last_len;
                last_len = buf.len();
                if progressed && started.elapsed() < shared.config.frame_deadline {
                    continue;
                }
                // Mid-frame stall (no byte progress across a whole
                // timeout window) or slow drip past the frame deadline:
                // a slowloris peer must not pin this reader thread.
                shared.stats.slow_closed.fetch_add(1, Ordering::Relaxed);
                fedval_obs::counter_add("serve.conn.slow_closed", 1);
                respond(
                    shared,
                    &writer,
                    &render_err(None, "SLOW_CLIENT", "frame stalled mid-read; closing"),
                );
                return;
            }
            Ok(FrameRead::TooLarge) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                fedval_obs::counter_add("serve.protocol.errors", 1);
                let err = ProtocolError::FrameTooLarge { len: MAX_FRAME + 1 };
                respond(shared, &writer, &render_err(None, err.code(), &err.to_string()));
                // Unrecoverable mid-frame: close rather than misparse
                // the remainder of the oversized frame as new frames.
                return;
            }
            Ok(FrameRead::Frame) => {
                frame_started = None;
                last_len = 0;
                idle_since = Instant::now();
                if !buf.is_empty() {
                    match parse_request(&buf) {
                        Err(err) => {
                            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            fedval_obs::counter_add("serve.protocol.errors", 1);
                            respond(
                                shared,
                                &writer,
                                &render_err(None, err.code(), &err.to_string()),
                            );
                            if err.is_fatal() {
                                return;
                            }
                        }
                        Ok(request) => dispatch(shared, &writer, request),
                    }
                }
                buf.clear();
            }
        }
    }
}

/// Routes one parsed request: inline kinds answer on the reader
/// thread; compute kinds go through the bounded queue.
fn dispatch(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, request: Request) {
    counter_for_kind(&request.kind);
    match request.kind {
        QueryKind::Health => {
            shared.stats.inline_answered.fetch_add(1, Ordering::Relaxed);
            // Degradation latch: `degraded` exactly when workers
            // restarted since the previous probe, then acknowledge, so
            // one probe observes the incident and the next reports `ok`
            // again unless restarts continued.
            fedval_obs::counter_add("serve.req.ok", 1);
            let restarts = shared.stats.worker_restarts.load(Ordering::Relaxed);
            let acked = shared.restarts_acked.swap(restarts, Ordering::Relaxed);
            let payload = if shared.shutting_down.load(Ordering::SeqCst) {
                "\"kind\":\"health\",\"status\":\"draining\"".to_string()
            } else if restarts > acked {
                format!(
                    "\"kind\":\"health\",\"status\":\"degraded\",\"worker_restarts\":{restarts}"
                )
            } else {
                "\"kind\":\"health\",\"status\":\"ok\"".to_string()
            };
            respond(shared, writer, &render_ok(request.id, &payload));
        }
        QueryKind::Stats => {
            shared.stats.inline_answered.fetch_add(1, Ordering::Relaxed);
            fedval_obs::counter_add("serve.req.ok", 1);
            let payload = stats_payload(shared);
            respond(shared, writer, &render_ok(request.id, &payload));
        }
        QueryKind::Metrics => {
            shared.stats.inline_answered.fetch_add(1, Ordering::Relaxed);
            // Bump before folding so the scrape's own success is
            // visible in the exposition it returns.
            fedval_obs::counter_add("serve.req.ok", 1);
            let fold = fedval_obs::metrics_fold();
            let uptime_s = shared.started.elapsed().as_secs();
            let payload = {
                let ring = shared.ring.lock();
                render_metrics_payload(&fold, uptime_s, &ring)
            };
            respond(shared, writer, &render_ok(request.id, &payload));
        }
        QueryKind::Shutdown => {
            shared.stats.inline_answered.fetch_add(1, Ordering::Relaxed);
            fedval_obs::counter_add("serve.req.ok", 1);
            // Raise the drain flag BEFORE acknowledging: once the client
            // reads the response, no later connection can be served
            // normally. This also half-closes our own socket; the next
            // read_frame sees EOF and the reader thread exits.
            initiate_shutdown(shared, local_addr_of(shared));
            respond(
                shared,
                writer,
                &render_ok(request.id, "\"kind\":\"shutdown\",\"draining\":true"),
            );
        }
        QueryKind::ChaosPanic if !shared.config.chaos_panic => {
            shared.stats.inline_answered.fetch_add(1, Ordering::Relaxed);
            fedval_obs::counter_add("serve.req.error", 1);
            respond(
                shared,
                writer,
                &render_err(
                    request.id,
                    "BAD_REQUEST",
                    "chaos-panic is disabled; start the server with --chaos-harness",
                ),
            );
        }
        _ => enqueue(shared, writer, request),
    }
}

/// The acceptor's address, recovered from any registered conn (used by
/// the reader-thread shutdown path); falls back to an unspecified
/// address — the self-connect poke then fails silently, and the
/// acceptor still exits on its next accepted connection or via
/// [`Server::wait`]'s idempotent re-poke.
fn local_addr_of(shared: &Shared) -> SocketAddr {
    lock_recover(&shared.conns)
        .values()
        .next()
        .and_then(|c| c.local_addr().ok())
        .unwrap_or_else(|| SocketAddr::from(([127, 0, 0, 1], 0)))
}

fn enqueue(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, request: Request) {
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.stats.refused_draining.fetch_add(1, Ordering::Relaxed);
        respond(
            shared,
            writer,
            &render_err(request.id, "SHUTTING_DOWN", "server is draining"),
        );
        return;
    }
    let depth = {
        let mut queue = lock_recover(&shared.queue);
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            shared.stats.busy.fetch_add(1, Ordering::Relaxed);
            fedval_obs::counter_add("serve.busy", 1);
            respond(
                shared,
                writer,
                &render_err(
                    request.id,
                    "BUSY",
                    &format!("queue full (depth {})", shared.config.queue_depth),
                ),
            );
            return;
        }
        queue.push_back(Job {
            request,
            writer: Arc::clone(writer),
            enqueued: Instant::now(),
        });
        queue.len()
    };
    fedval_obs::gauge_set("serve.queue.depth", depth as f64);
    shared.queue_cv.notify_one();
}

/// Outer supervision shell around [`worker_loop`]: a panic that
/// escapes the per-job guard (e.g. inside queue bookkeeping) respawns
/// the loop in place instead of silently shrinking the pool. The
/// respawn is deterministic — same thread, same shared state, the
/// queue and its condvar are untouched — so a chaos run with a fixed
/// seed reproduces the identical recovery sequence.
fn supervised_worker(shared: &Arc<Shared>) {
    loop {
        if catch_unwind(AssertUnwindSafe(|| worker_loop(shared))).is_ok() {
            // Clean exit: drain finished with the queue empty.
            return;
        }
        shared.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
        fedval_obs::counter_add("serve.worker.restarts", 1);
        // Respawn even mid-drain: queued jobs still deserve answers.
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    fedval_obs::gauge_set("serve.queue.depth", queue.len() as f64);
                    break Some(job);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                queue = match shared.queue_cv.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some(job) = job else { return };
        process(shared, job);
    }
}

fn process(shared: &Shared, job: Job) {
    let Job {
        request,
        writer,
        enqueued,
    } = job;
    let waited = enqueued.elapsed();
    if waited > shared.config.deadline {
        shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        fedval_obs::counter_add("serve.deadline_expired", 1);
        fedval_obs::counter_add("serve.req.error", 1);
        respond(
            shared,
            &writer,
            &render_err(
                request.id,
                "DEADLINE",
                &format!(
                    "queued {}ms > deadline {}ms",
                    waited.as_millis(),
                    shared.config.deadline.as_millis()
                ),
            ),
        );
        return;
    }
    let trace_id = shared.next_trace_id.fetch_add(1, Ordering::Relaxed);
    let exec_start = Instant::now();
    // Per-job guard: a panicking query (a state bug, or the deliberate
    // `chaos-panic` injection) becomes a typed `INTERNAL` response to
    // the client who asked — never a silently lost request — and the
    // worker recovers in place. Counted as a worker restart so `health`
    // degrades and operators see it.
    //
    // The whole execution runs under `capture`: every span/event the
    // state emits is buffered on this thread (metric shards still see
    // them) and only replayed into the trace sink when the request
    // turns out slow — exemplar tracing without per-request sink
    // traffic on the fast path.
    let (outcome, captured) = fedval_obs::capture(|| {
        let _span = fedval_obs::span_with("serve.request", || {
            format!("kind={} trace_id={trace_id}", request.kind.name())
        });
        catch_unwind(AssertUnwindSafe(|| shared.state.execute(&request.kind)))
    });
    let exec = exec_start.elapsed();
    let slow = exec >= shared.config.slow_trace;
    let line = match outcome {
        Ok(Ok(payload)) => {
            fedval_obs::counter_add("serve.req.ok", 1);
            if slow {
                // Tag the response so the client can join it with the
                // exemplar dumped below.
                render_ok(request.id, &format!("{payload},\"trace_id\":{trace_id}"))
            } else {
                render_ok(request.id, &payload)
            }
        }
        Ok(Err(err)) => {
            fedval_obs::counter_add("serve.req.error", 1);
            render_err(request.id, err.code, &err.detail)
        }
        Err(_) => {
            shared.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
            shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
            fedval_obs::counter_add("serve.worker.restarts", 1);
            fedval_obs::counter_add("serve.req.internal", 1);
            fedval_obs::counter_add("serve.req.error", 1);
            render_err(
                request.id,
                "INTERNAL",
                "worker panicked mid-request; worker recovered",
            )
        }
    };
    if slow {
        let exec_ns = u64::try_from(exec.as_nanos()).unwrap_or(u64::MAX);
        fedval_obs::counter_add("serve.trace.exemplars", 1);
        fedval_obs::event("serve.trace.exemplar", || {
            vec![
                ("trace_id".to_string(), trace_id.to_string()),
                ("kind".to_string(), request.kind.name().to_string()),
                ("exec_ns".to_string(), exec_ns.to_string()),
            ]
        });
        fedval_obs::replay(captured);
    }
    respond(shared, &writer, &line);
    shared.stats.answered.fetch_add(1, Ordering::Relaxed);
    let total_ns = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
    fedval_obs::observe_ns("serve.request_ns", total_ns);
}

/// Bumps the per-kind request counter (static names: `counter_add`
/// requires `&'static str`).
fn counter_for_kind(kind: &QueryKind) {
    let name = match kind {
        QueryKind::CoalitionValue { .. } => "serve.req.coalition_value",
        QueryKind::Shapley => "serve.req.shapley",
        QueryKind::Nucleolus => "serve.req.nucleolus",
        QueryKind::WhatIfJoin { .. } => "serve.req.what_if_join",
        QueryKind::WhatIfLeave { .. } => "serve.req.what_if_leave",
        QueryKind::Health => "serve.req.health",
        QueryKind::Stats => "serve.req.stats",
        QueryKind::Metrics => "serve.req.metrics",
        QueryKind::Shutdown => "serve.req.shutdown",
        QueryKind::ChaosPanic => "serve.req.chaos_panic",
    };
    fedval_obs::counter_add(name, 1);
}

/// Per-kind request-counter names, in payload order. One list shared
/// by [`stats_payload`] so adding a kind cannot silently drop it from
/// `stats`.
const REQ_KIND_COUNTERS: [(&str, &str); 9] = [
    ("coalition_value", "serve.req.coalition_value"),
    ("shapley", "serve.req.shapley"),
    ("nucleolus", "serve.req.nucleolus"),
    ("what_if_join", "serve.req.what_if_join"),
    ("what_if_leave", "serve.req.what_if_leave"),
    ("health", "serve.req.health"),
    ("stats", "serve.req.stats"),
    ("metrics", "serve.req.metrics"),
    ("shutdown", "serve.req.shutdown"),
];

fn stats_payload(shared: &Shared) -> String {
    let stats = &shared.stats;
    let queue_depth = lock_recover(&shared.queue).len();
    let open_conns = lock_recover(&shared.conns).len();
    // Shed/restart tallies, the what-if cache counters, and the
    // per-kind request counts come from the sharded metric registry —
    // the same fold the `metrics` exposition reads, so the two surfaces
    // cannot drift apart. The `ServerStats` atomics stay for the
    // drain report and the health degradation latch.
    let fold = fedval_obs::metrics_fold();
    let per_kind: Vec<String> = REQ_KIND_COUNTERS
        .iter()
        .map(|(label, counter)| format!("\"{label}\":{}", fold.counter(counter)))
        .collect();
    // Past the exact cap (or under `--approx`) share queries run the
    // sampled estimator; stats must say so, with the budget actually
    // in effect — clients were misled into reading sampled CIs as
    // exact values when this was missing.
    let approx = if shared.state.approx_active() {
        let config = shared.state.approx_config();
        format!(
            ",\"approx\":true,\"approx_method\":\"{}\",\"approx_samples\":{},\"approx_confidence\":{},\"approx_seed\":{}",
            config.method.as_str(),
            config.samples,
            fedval_obs::json_f64(config.confidence),
            config.seed,
        )
    } else {
        ",\"approx\":false".to_string()
    };
    format!(
        "\"kind\":\"stats\",\"n\":{},\"uptime_ms\":{},\"uptime_s\":{},\"threads\":{},\"queue_depth\":{},\"queue_capacity\":{},\"accepted\":{},\"answered\":{},\"inline_answered\":{},\"busy\":{},\"deadline_expired\":{},\"protocol_errors\":{},\"refused_draining\":{},\"shed\":{},\"worker_restarts\":{},\"internal_errors\":{},\"slow_closed\":{},\"write_failed\":{},\"open_conns\":{},\"max_connections\":{},\"req_ok\":{},\"req_error\":{},\"requests\":{{{}}},\"whatif_hits\":{},\"whatif_misses\":{},\"coalitions_cached\":{}{}",
        shared.state.n(),
        shared.started.elapsed().as_millis(),
        shared.started.elapsed().as_secs(),
        shared.config.threads,
        queue_depth,
        shared.config.queue_depth,
        stats.accepted.load(Ordering::Relaxed),
        stats.answered.load(Ordering::Relaxed),
        stats.inline_answered.load(Ordering::Relaxed),
        stats.busy.load(Ordering::Relaxed),
        stats.deadline_expired.load(Ordering::Relaxed),
        stats.protocol_errors.load(Ordering::Relaxed),
        stats.refused_draining.load(Ordering::Relaxed),
        fold.counter("serve.conn.shed"),
        fold.counter("serve.worker.restarts"),
        stats.internal_errors.load(Ordering::Relaxed),
        stats.slow_closed.load(Ordering::Relaxed),
        stats.write_failed.load(Ordering::Relaxed),
        open_conns,
        shared.config.max_connections,
        fold.counter("serve.req.ok"),
        fold.counter("serve.req.error"),
        per_kind.join(","),
        fold.counter("serve.whatif.hits"),
        fold.counter("serve.whatif.misses"),
        shared.state.coalitions_cached(),
        approx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ScenarioSpec;
    use std::io::BufRead;

    fn start_test_server(config: ServerConfig) -> Server {
        let state = ServeState::new(ScenarioSpec::paper_4_1(), 8);
        state.warm(1);
        Server::start(state, "127.0.0.1:0", config).expect("bind loopback")
    }

    fn client(addr: SocketAddr) -> (std::io::BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        (reader, stream)
    }

    fn roundtrip(
        reader: &mut std::io::BufReader<TcpStream>,
        stream: &mut TcpStream,
        request: &str,
    ) -> String {
        stream
            .write_all(format!("{request}\n").as_bytes())
            .expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        line.trim_end().to_string()
    }

    #[test]
    fn end_to_end_query_roundtrip() {
        let server = start_test_server(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = client(server.local_addr());

        let health = roundtrip(&mut reader, &mut stream, "{\"id\":1,\"kind\":\"health\"}");
        assert_eq!(
            health,
            "{\"id\":1,\"ok\":true,\"kind\":\"health\",\"status\":\"ok\"}"
        );

        let a = roundtrip(&mut reader, &mut stream, "{\"id\":2,\"kind\":\"shapley\"}");
        assert!(a.contains("\"ok\":true") && a.contains("\"grand_value\":1300"), "{a}");
        let b = roundtrip(&mut reader, &mut stream, "{\"id\":2,\"kind\":\"shapley\"}");
        assert_eq!(a, b, "identical queries must be byte-identical");

        let v = roundtrip(
            &mut reader,
            &mut stream,
            "{\"id\":3,\"kind\":\"coalition-value\",\"coalition\":[1,2]}",
        );
        assert!(v.contains("\"value\":1200"), "{v}");

        let report = server.shutdown();
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.abandoned, 0);
        assert_eq!(report.answered, 3);
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_connection_survives() {
        let server = start_test_server(ServerConfig::default());
        let (mut reader, mut stream) = client(server.local_addr());

        let err = roundtrip(&mut reader, &mut stream, "this is not json");
        assert!(err.contains("\"ok\":false") && err.contains("MALFORMED"), "{err}");

        // Same connection still answers real queries.
        let ok = roundtrip(&mut reader, &mut stream, "{\"kind\":\"health\"}");
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");

        let report = server.shutdown();
        assert_eq!(report.protocol_errors, 1);
    }

    #[test]
    fn oversized_frame_is_answered_then_closed() {
        let server = start_test_server(ServerConfig::default());
        let (mut reader, mut stream) = client(server.local_addr());

        let huge = "x".repeat(MAX_FRAME + 10);
        stream.write_all(huge.as_bytes()).expect("send body");
        stream.write_all(b"\n").expect("send newline");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        assert!(line.contains("FRAME_TOO_LARGE"), "{line}");
        // The server closes after the fatal error: next read is EOF.
        line.clear();
        let n = reader.read_line(&mut line).expect("eof read");
        assert_eq!(n, 0, "connection must be closed, got {line:?}");

        server.shutdown();
    }

    #[test]
    fn shutdown_query_drains_cleanly() {
        let server = start_test_server(ServerConfig::default());
        let (mut reader, mut stream) = client(server.local_addr());
        let bye = roundtrip(&mut reader, &mut stream, "{\"id\":9,\"kind\":\"shutdown\"}");
        assert!(bye.contains("\"draining\":true"), "{bye}");
        let report = server.wait();
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn stats_reports_queue_capacity() {
        let server = start_test_server(ServerConfig {
            queue_depth: 7,
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = client(server.local_addr());
        let stats = roundtrip(&mut reader, &mut stream, "{\"kind\":\"stats\"}");
        assert!(stats.contains("\"queue_capacity\":7"), "{stats}");
        assert!(stats.contains("\"coalitions_cached\":8"), "{stats}");
        assert!(stats.contains("\"uptime_s\":"), "{stats}");
        assert!(stats.contains("\"requests\":{\"coalition_value\":"), "{stats}");
        // The paper scenario (n=3) is far under the exact cap: stats
        // must advertise the exact path, with no sampling parameters.
        assert!(stats.contains("\"approx\":false"), "{stats}");
        assert!(!stats.contains("\"approx_method\""), "{stats}");
        server.shutdown();
    }

    #[test]
    fn stats_reports_sampled_estimator_when_forced() {
        let state = ServeState::new(ScenarioSpec::paper_4_1(), 8).with_approx(
            fedval_coalition::ApproxConfig {
                samples: 48,
                force: true,
                ..fedval_coalition::ApproxConfig::default()
            },
        );
        state.warm(1);
        let server =
            Server::start(state, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        let (mut reader, mut stream) = client(server.local_addr());
        let stats = roundtrip(&mut reader, &mut stream, "{\"kind\":\"stats\"}");
        assert!(stats.contains("\"approx\":true"), "{stats}");
        assert!(stats.contains("\"approx_method\":\"permutation\""), "{stats}");
        assert!(stats.contains("\"approx_samples\":48"), "{stats}");
        assert!(stats.contains("\"approx_confidence\":0.95"), "{stats}");
        assert!(stats.contains("\"approx_seed\":42"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn metrics_query_returns_exposition_and_ring() {
        let server = start_test_server(ServerConfig::default());
        let (mut reader, mut stream) = client(server.local_addr());
        let _ = roundtrip(&mut reader, &mut stream, "{\"id\":1,\"kind\":\"shapley\"}");
        let m = roundtrip(&mut reader, &mut stream, "{\"id\":2,\"kind\":\"metrics\"}");
        assert!(m.starts_with("{\"id\":2,\"ok\":true,\"kind\":\"metrics\""), "{m}");
        assert!(m.contains("\"uptime_s\":"), "{m}");
        // The exposition is the JSON-escaped Prometheus text; the
        // scrape's own success was counted before folding, so
        // serve_req_ok is always present and nonzero.
        assert!(m.contains("serve_req_ok "), "{m}");
        assert!(m.contains("\"ring\":["), "{m}");
        server.shutdown();
    }

    #[test]
    fn slow_requests_are_tagged_with_a_trace_id() {
        let server = start_test_server(ServerConfig {
            slow_trace: Duration::ZERO, // every compute request is "slow"
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = client(server.local_addr());
        let a = roundtrip(&mut reader, &mut stream, "{\"id\":1,\"kind\":\"shapley\"}");
        assert!(a.contains(",\"trace_id\":"), "{a}");
        // Inline kinds never go through the worker path, so they are
        // never tagged.
        let h = roundtrip(&mut reader, &mut stream, "{\"kind\":\"health\"}");
        assert!(!h.contains("trace_id"), "{h}");
        server.shutdown();
    }

    #[test]
    fn fast_requests_are_not_tagged() {
        let server = start_test_server(ServerConfig {
            slow_trace: Duration::from_secs(3600),
            ..ServerConfig::default()
        });
        let (mut reader, mut stream) = client(server.local_addr());
        let a = roundtrip(&mut reader, &mut stream, "{\"id\":1,\"kind\":\"shapley\"}");
        assert!(!a.contains("trace_id"), "{a}");
        server.shutdown();
    }
}
