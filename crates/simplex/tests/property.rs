//! Property tests for the simplex solver: feasibility of returned points,
//! and optimality against brute-force vertex enumeration on random small
//! LPs.

use fedval_simplex::{LinearProgram, Objective, Relation, Status};
use proptest::prelude::*;

/// Enumerate all basic solutions of `max c·x, Ax ≤ b, x ≥ 0` (n ≤ 3) by
/// intersecting every choice of n active constraints (from rows and
/// axes) and keeping the feasible ones; returns the best objective.
fn brute_force_max(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Option<f64> {
    let n = c.len();
    // Build the full constraint list: rows (aᵢ·x = bᵢ) and axes (xⱼ = 0).
    let mut planes: Vec<(Vec<f64>, f64)> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| (row.clone(), rhs))
        .collect();
    for j in 0..n {
        let mut axis = vec![0.0; n];
        axis[j] = 1.0;
        planes.push((axis, 0.0));
    }
    let m = planes.len();
    let mut best: Option<f64> = None;

    // All n-subsets of planes (n ≤ 3, m small: fine).
    let mut index = vec![0usize; n];
    fn combos(m: usize, k: usize, start: usize, index: &mut Vec<usize>, pos: usize, out: &mut Vec<Vec<usize>>) {
        if pos == k {
            out.push(index.clone());
            return;
        }
        for i in start..m {
            index[pos] = i;
            combos(m, k, i + 1, index, pos + 1, out);
        }
    }
    let mut subsets = Vec::new();
    combos(m, n, 0, &mut index, 0, &mut subsets);

    for subset in subsets {
        // Solve the n×n system by Gaussian elimination.
        let mut mat: Vec<Vec<f64>> = subset
            .iter()
            .map(|&i| {
                let mut row = planes[i].0.clone();
                row.push(planes[i].1);
                row
            })
            .collect();
        let mut singular = false;
        for col in 0..n {
            let Some(pivot) = (col..n).max_by(|&r1, &r2| {
                mat[r1][col]
                    .abs()
                    .partial_cmp(&mat[r2][col].abs())
                    .unwrap()
            }) else {
                singular = true;
                break;
            };
            if mat[pivot][col].abs() < 1e-9 {
                singular = true;
                break;
            }
            mat.swap(col, pivot);
            let pv = mat[col][col];
            for r in 0..n {
                if r != col {
                    let f = mat[r][col] / pv;
                    #[allow(clippy::needless_range_loop)]
                    for cc in col..=n {
                        let delta = f * mat[col][cc];
                        mat[r][cc] -= delta;
                    }
                }
            }
        }
        if singular {
            continue;
        }
        let x: Vec<f64> = (0..n).map(|r| mat[r][n] / mat[r][r]).collect();
        // Feasible?
        if x.iter().any(|&v| v < -1e-7) {
            continue;
        }
        let ok = a.iter().zip(b).all(|(row, &rhs)| {
            row.iter().zip(&x).map(|(ai, xi)| ai * xi).sum::<f64>() <= rhs + 1e-7
        });
        if !ok {
            continue;
        }
        let obj: f64 = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
        best = Some(best.map_or(obj, |b: f64| b.max(obj)));
    }
    best
}

fn coeff() -> impl Strategy<Value = f64> {
    // Small integers keep the vertex arithmetic exact enough.
    (-4i32..=6).prop_map(f64::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_matches_vertex_enumeration(
        n in 2usize..=3,
        rows in prop::collection::vec(prop::collection::vec(0i32..=5, 3), 2..=5),
        rhs in prop::collection::vec(1i32..=20, 2..=5),
        obj in prop::collection::vec(1i32..=5, 3),
    ) {
        let m = rows.len().min(rhs.len());
        let a: Vec<Vec<f64>> = rows[..m]
            .iter()
            .map(|r| r[..n].iter().map(|&v| f64::from(v)).collect())
            .collect();
        let b: Vec<f64> = rhs[..m].iter().map(|&v| f64::from(v)).collect();
        let c: Vec<f64> = obj[..n].iter().map(|&v| f64::from(v)).collect();

        // Skip unbounded instances: some variable has no binding row.
        let bounded = (0..n).all(|j| a.iter().any(|row| row[j] > 0.0));
        prop_assume!(bounded);

        let mut lp = LinearProgram::new(n, Objective::Maximize);
        lp.set_objective(c.clone());
        for (row, &rhs) in a.iter().zip(&b) {
            lp.add_constraint(row.clone(), Relation::Le, rhs);
        }
        let sol = lp.solve().unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(lp.is_feasible(&sol.x, 1e-6));

        let brute = brute_force_max(&c, &a, &b).expect("origin is feasible");
        prop_assert!(
            (sol.objective - brute).abs() < 1e-6,
            "simplex {} vs brute force {}",
            sol.objective, brute
        );
    }

    #[test]
    fn returned_point_is_always_feasible(
        coeffs in prop::collection::vec(coeff(), 6),
        rhs in prop::collection::vec(0i32..=15, 3),
    ) {
        let a: Vec<Vec<f64>> = coeffs.chunks(2).map(|c| c.to_vec()).collect();
        let b: Vec<f64> = rhs.iter().map(|&v| f64::from(v)).collect();
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective(vec![1.0, 1.0]);
        for (row, &rhs) in a.iter().zip(&b) {
            lp.add_constraint(row.clone(), Relation::Le, rhs);
        }
        let sol = lp.solve().unwrap();
        match sol.status {
            Status::Optimal => prop_assert!(lp.is_feasible(&sol.x, 1e-6)),
            Status::Unbounded => {} // fine: some direction escapes
            Status::Infeasible => {
                // x ≥ 0 with b ≥ 0 and Le rows: origin is feasible, so
                // infeasible must never happen here.
                prop_assert!(false, "origin was feasible");
            }
            Status::Stalled => {
                // The anti-cycling cap is generous; tiny random instances
                // must never exhaust it.
                prop_assert!(false, "pivot loop stalled on a tiny instance");
            }
        }
    }

    #[test]
    fn minimize_ge_instances_agree_with_negated_max(
        obj in prop::collection::vec(1i32..=5, 2),
        rows in prop::collection::vec(prop::collection::vec(1i32..=4, 2), 2..=3),
        rhs in prop::collection::vec(1i32..=10, 2..=3),
    ) {
        // min c·x s.t. Ax ≥ b, x ≥ 0 always has an optimum (c ≥ 0 bounds
        // below; A ≥ 1 entries make it feasible for large x).
        let m = rows.len().min(rhs.len());
        let c: Vec<f64> = obj.iter().map(|&v| f64::from(v)).collect();
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective(c.clone());
        for k in 0..m {
            let row: Vec<f64> = rows[k].iter().map(|&v| f64::from(v)).collect();
            lp.add_constraint(row, Relation::Ge, f64::from(rhs[k]));
        }
        let sol = lp.solve().unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(lp.is_feasible(&sol.x, 1e-6));
        // Optimal value is ≥ the LP bound from any single constraint:
        // c·x ≥ (min_j c_j / max a_kj)·b_k is weak; instead verify local
        // optimality: perturbing x down in any coordinate violates
        // feasibility or was already 0.
        for j in 0..2 {
            if sol.x[j] > 1e-6 {
                let mut down = sol.x.clone();
                down[j] -= 1e-3;
                let still_feasible = lp.is_feasible(&down, 0.0);
                let improves = c[j] > 0.0;
                prop_assert!(
                    !(still_feasible && improves),
                    "could cheapen x[{j}] at {:?}",
                    sol.x
                );
            }
        }
    }
}
