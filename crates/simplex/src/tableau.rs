//! Dense simplex tableau with Bland's-rule pivoting.
//!
//! The tableau stores the constraint matrix in canonical (basis = identity)
//! form together with a cost row. Phase bookkeeping lives in
//! [`crate::solver`]; this module only knows how to pivot.

use crate::approx::is_zero;
use crate::EPSILON;

/// Outcome of running the simplex iteration loop on a tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PivotOutcome {
    /// No entering column improves the objective: current basis is optimal.
    Optimal,
    /// An improving column has no positive pivot entry: objective unbounded.
    Unbounded,
    /// The iteration cap was reached before convergence. Bland's rule rules
    /// out true cycling, so this indicates numerical trouble (reduced costs
    /// hovering around the tolerance) rather than a theoretical cycle.
    Stalled,
}

/// A dense tableau in canonical form.
///
/// Row layout: `rows × (n_cols + 1)` where the last column is the
/// right-hand side. The cost row is stored separately in `cost` with the
/// (negated) objective value in `cost_rhs`.
pub(crate) struct Tableau {
    /// Constraint rows, each `n_cols + 1` long (rhs last).
    pub rows: Vec<Vec<f64>>,
    /// Reduced-cost row, `n_cols` long. Convention: we *minimize*, and a
    /// column with `cost < -EPSILON` is eligible to enter.
    pub cost: Vec<f64>,
    /// Current objective value (of the minimization) times −1.
    pub cost_rhs: f64,
    /// Basis: `basis[r]` is the column index basic in row `r`.
    pub basis: Vec<usize>,
    /// Total number of structural + slack + artificial columns.
    pub n_cols: usize,
    /// Pivots performed on this tableau (for observability counters).
    pub pivots: usize,
}

impl Tableau {
    pub fn new(rows: Vec<Vec<f64>>, cost: Vec<f64>, basis: Vec<usize>, n_cols: usize) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == n_cols + 1));
        debug_assert_eq!(cost.len(), n_cols);
        debug_assert_eq!(basis.len(), rows.len());
        Tableau {
            rows,
            cost,
            cost_rhs: 0.0,
            basis,
            n_cols,
            pivots: 0,
        }
    }

    /// Makes the reduced costs of all basic columns zero by eliminating them
    /// with their rows ("pricing out"). Required after installing a new cost
    /// row over an existing basis (start of each phase).
    pub fn price_out_basis(&mut self) {
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            let c = self.cost[b];
            if c.abs() > 0.0 {
                self.eliminate_from_cost(r, c);
            }
        }
    }

    fn eliminate_from_cost(&mut self, row: usize, factor: f64) {
        for j in 0..self.n_cols {
            self.cost[j] -= factor * self.rows[row][j];
        }
        self.cost_rhs -= factor * self.rows[row][self.n_cols];
    }

    /// Upper bound on pivots for a tableau with `m` rows and `n` columns.
    ///
    /// Bland's rule visits each basis at most once, so any run that exceeds a
    /// generous polynomial budget is numerically stuck, not still converging.
    pub fn iteration_cap(m: usize, n: usize) -> usize {
        64 * (m + 1) * (n + 1)
    }

    /// Runs simplex iterations (minimization) until optimal, unbounded, or
    /// `max_iters` pivots have been performed.
    ///
    /// `allowed` restricts the entering columns (used in phase 2 to freeze
    /// artificial columns out of the basis). Bland's rule — smallest-index
    /// entering column among eligible, smallest-index leaving basic variable
    /// among ratio-test ties — guarantees termination without cycling; the
    /// explicit cap turns float-noise stalls into [`PivotOutcome::Stalled`]
    /// instead of a hung loop.
    pub fn run(&mut self, allowed: &dyn Fn(usize) -> bool, max_iters: usize) -> PivotOutcome {
        for _ in 0..max_iters {
            // Bland: first column with negative reduced cost.
            let entering = (0..self.n_cols)
                .find(|&j| allowed(j) && self.cost[j] < -EPSILON && !self.in_basis(j));
            let Some(entering) = entering else {
                return PivotOutcome::Optimal;
            };

            // Ratio test with Bland tie-break on basic variable index.
            let mut leaving: Option<(usize, f64)> = None;
            for r in 0..self.rows.len() {
                let a = self.rows[r][entering];
                if a > EPSILON {
                    let ratio = self.rows[r][self.n_cols] / a;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((best_r, best_ratio)) => {
                            if ratio < best_ratio - EPSILON
                                || ((ratio - best_ratio).abs() <= EPSILON
                                    && self.basis[r] < self.basis[best_r])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((leave_row, _)) = leaving else {
                return PivotOutcome::Unbounded;
            };
            self.pivot(leave_row, entering);
        }
        PivotOutcome::Stalled
    }

    fn in_basis(&self, col: usize) -> bool {
        self.basis.contains(&col)
    }

    /// Pivots on `(row, col)`: normalizes the row and eliminates the column
    /// from every other row and the cost row.
    pub fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let pivot_val = self.rows[row][col];
        debug_assert!(pivot_val.abs() > EPSILON, "pivot on ~zero element");
        let inv = 1.0 / pivot_val;
        for v in &mut self.rows[row] {
            *v *= inv;
        }
        // Re-normalize the pivot element exactly to dodge drift.
        self.rows[row][col] = 1.0;

        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            // Exact-zero skip (eps = 0): eliminating with a zero factor is
            // a no-op; any nonzero factor, however tiny, must eliminate.
            if !is_zero(factor, 0.0) {
                for j in 0..=self.n_cols {
                    let delta = factor * self.rows[row][j];
                    self.rows[r][j] -= delta;
                }
                self.rows[r][col] = 0.0;
            }
        }
        let factor = self.cost[col];
        if !is_zero(factor, 0.0) {
            for j in 0..self.n_cols {
                self.cost[j] -= factor * self.rows[row][j];
            }
            self.cost_rhs -= factor * self.rows[row][self.n_cols];
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Extracts the value of column `col` in the current basic solution.
    pub fn value_of(&self, col: usize) -> f64 {
        self.basis
            .iter()
            .position(|&b| b == col)
            .map_or(0.0, |r| self.rows[r][self.n_cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min −3x −2y  s.t. x+y+s1 = 4, x+3y+s2 = 6 — optimum at x=4, y=0.
    fn toy() -> Tableau {
        let rows = vec![vec![1.0, 1.0, 1.0, 0.0, 4.0], vec![1.0, 3.0, 0.0, 1.0, 6.0]];
        let cost = vec![-3.0, -2.0, 0.0, 0.0];
        Tableau::new(rows, cost, vec![2, 3], 4)
    }

    #[test]
    fn pivots_to_optimum() {
        let mut t = toy();
        let outcome = t.run(&|_| true, 1000);
        assert_eq!(outcome, PivotOutcome::Optimal);
        assert!((t.value_of(0) - 4.0).abs() < 1e-9);
        assert!(t.value_of(1).abs() < 1e-9);
        // cost_rhs = −(objective of minimization) = 12
        assert!((t.cost_rhs - 12.0).abs() < 1e-9);
    }

    #[test]
    fn detects_unbounded() {
        // min −x with x − y ≤ 1 → x can grow with y.
        let rows = vec![vec![1.0, -1.0, 1.0, 1.0]];
        let cost = vec![-1.0, 0.0, 0.0];
        let mut t = Tableau::new(rows, cost, vec![2], 3);
        // First pivot brings x in; afterwards y has negative reduced cost and
        // no positive entries.
        assert_eq!(t.run(&|_| true, 1000), PivotOutcome::Unbounded);
    }

    #[test]
    fn zero_iteration_budget_reports_stalled() {
        let mut t = toy();
        assert_eq!(t.run(&|_| true, 0), PivotOutcome::Stalled);
        // With the budget restored the same tableau still converges.
        assert_eq!(t.run(&|_| true, 1000), PivotOutcome::Optimal);
    }

    #[test]
    fn price_out_clears_basic_costs() {
        let rows = vec![vec![1.0, 2.0, 3.0]];
        let cost = vec![5.0, 0.0];
        let mut t = Tableau::new(rows, cost, vec![0], 2);
        t.price_out_basis();
        assert_eq!(t.cost[0], 0.0);
        assert!((t.cost[1] + 10.0).abs() < 1e-12);
        assert!((t.cost_rhs + 15.0).abs() < 1e-12);
    }
}
