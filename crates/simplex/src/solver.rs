//! Two-phase simplex driver.

use crate::problem::{LinearProgram, Objective, ProblemError, Relation};
use crate::tableau::{PivotOutcome, Tableau};
use crate::EPSILON;

/// Resolution status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The pivot loop hit its iteration cap without converging. Bland's rule
    /// precludes genuine cycling, so this flags numerical degeneracy; callers
    /// should treat the solve as failed rather than trust partial values.
    Stalled,
}

/// Result of [`LinearProgram::solve`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Why the solver stopped.
    pub status: Status,
    /// Optimal objective value in the *original* sense (only meaningful for
    /// [`Status::Optimal`]).
    pub objective: f64,
    /// Optimal values of the decision variables (zeros unless `Optimal`).
    pub x: Vec<f64>,
}

impl LinearProgram {
    /// Solves the program with the two-phase primal simplex method.
    ///
    /// Returns `Err` only for malformed input (see
    /// [`LinearProgram::validate`]); infeasibility and unboundedness are
    /// reported through [`Solution::status`].
    ///
    /// # Errors
    /// Only malformed input, via [`LinearProgram::validate`]; infeasibility
    /// and unboundedness are values of [`Solution::status`], not errors.
    pub fn solve(&self) -> Result<Solution, ProblemError> {
        if !fedval_obs::is_enabled() {
            return self.solve_counted().map(|(s, _)| s);
        }
        let start = fedval_obs::now_ns();
        let result = self.solve_counted();
        let dur_ns = fedval_obs::now_ns().saturating_sub(start);
        if let Ok((solution, pivots)) = &result {
            fedval_obs::counter_add("simplex.solver.solves", 1);
            fedval_obs::counter_add("simplex.solver.pivots", *pivots as u64);
            match solution.status {
                Status::Optimal => {}
                Status::Infeasible => fedval_obs::counter_add("simplex.solver.infeasible", 1),
                Status::Unbounded => fedval_obs::counter_add("simplex.solver.unbounded", 1),
                Status::Stalled => fedval_obs::counter_add("simplex.solver.stalls", 1),
            }
            fedval_obs::observe_ns("simplex.solver.solve_ns", dur_ns);
        }
        result.map(|(s, _)| s)
    }

    /// The actual two-phase solve, additionally reporting the total number
    /// of pivots performed (phase 1 + drive-out + phase 2).
    fn solve_counted(&self) -> Result<(Solution, usize), ProblemError> {
        self.validate()?;

        let n = self.n_vars;
        let m = self.constraints.len();

        // Column layout: [structural 0..n | slack/surplus | artificial].
        let mut n_slack = 0usize;
        for c in &self.constraints {
            if matches!(c.relation, Relation::Le | Relation::Ge) {
                n_slack += 1;
            }
        }

        // Normalize rows to rhs ≥ 0, then decide which rows need an
        // artificial: rows whose slack cannot serve as the initial basic
        // variable (Ge's surplus enters with −1, Eq has no slack at all).
        enum BasisSource {
            Slack(usize),
            Artificial,
        }
        struct RowPlan {
            coeffs: Vec<f64>,
            rhs: f64,
            slack: Option<(usize, f64)>, // (column offset among slacks, sign)
            basis: BasisSource,
        }
        let mut plans = Vec::with_capacity(m);
        let mut slack_idx = 0usize;
        for c in &self.constraints {
            let mut coeffs = c.coeffs.clone();
            let mut rhs = c.rhs;
            let mut relation = c.relation;
            if rhs < 0.0 {
                for v in &mut coeffs {
                    *v = -*v;
                }
                rhs = -rhs;
                relation = match relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            let (slack, basis) = match relation {
                Relation::Le => {
                    let s = slack_idx;
                    slack_idx += 1;
                    (Some((s, 1.0)), BasisSource::Slack(s))
                }
                Relation::Ge => {
                    let s = slack_idx;
                    slack_idx += 1;
                    (Some((s, -1.0)), BasisSource::Artificial)
                }
                Relation::Eq => (None, BasisSource::Artificial),
            };
            plans.push(RowPlan {
                coeffs,
                rhs,
                slack,
                basis,
            });
        }
        let n_artificial = plans
            .iter()
            .filter(|p| matches!(p.basis, BasisSource::Artificial))
            .count();
        let n_cols = n + n_slack + n_artificial;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut art_col = n + n_slack;
        for p in &plans {
            let mut row = vec![0.0; n_cols + 1];
            row[..n].copy_from_slice(&p.coeffs);
            if let Some((s, sign)) = p.slack {
                row[n + s] = sign;
            }
            row[n_cols] = p.rhs;
            match p.basis {
                BasisSource::Artificial => {
                    row[art_col] = 1.0;
                    basis.push(art_col);
                    art_col += 1;
                }
                // The ≤-slack is the initial basic variable.
                BasisSource::Slack(s) => basis.push(n + s),
            }
            rows.push(row);
        }
        let max_iters = Tableau::iteration_cap(m, n_cols);
        let stalled = |n: usize| Solution {
            status: Status::Stalled,
            objective: 0.0,
            x: vec![0.0; n],
        };

        let mut phase1_pivots = 0usize;

        // --- Phase 1: minimize the sum of artificials. ---
        if n_artificial > 0 {
            let mut cost = vec![0.0; n_cols];
            // why: the artificial-column range (n + n_slack)..n_cols is the
            // point; an iterator over a subslice would hide the offsets.
            #[allow(clippy::needless_range_loop)]
            for j in (n + n_slack)..n_cols {
                cost[j] = 1.0;
            }
            let mut t = Tableau::new(rows, cost, basis, n_cols);
            t.price_out_basis();
            match t.run(&|_| true, max_iters) {
                PivotOutcome::Optimal => {}
                // Sum of non-negative artificials cannot be unbounded below,
                // so "unbounded" here — like an exhausted pivot budget — means
                // the arithmetic went numerically bad. Surface that as a
                // stalled solve instead of trusting the tableau.
                PivotOutcome::Unbounded | PivotOutcome::Stalled => {
                    return Ok((stalled(n), t.pivots));
                }
            }
            // cost_rhs holds −(Σ artificials); feasible iff ~0.
            if t.cost_rhs < -EPSILON {
                return Ok((
                    Solution {
                        status: Status::Infeasible,
                        objective: 0.0,
                        x: vec![0.0; n],
                    },
                    t.pivots,
                ));
            }
            // Drive any artificial still basic (at value 0) out of the basis
            // by pivoting on some nonzero non-artificial entry in its row. A
            // row with no such entry is redundant and may keep its artificial
            // (it stays at zero; phase 2 forbids artificials from entering).
            for r in 0..t.rows.len() {
                if t.basis[r] >= n + n_slack {
                    if let Some(j) = (0..n + n_slack).find(|&j| t.rows[r][j].abs() > EPSILON) {
                        t.pivot(r, j);
                    }
                }
            }
            phase1_pivots = t.pivots;
            rows = t.rows;
            basis = t.basis;
        }

        // --- Phase 2: minimize the (sign-adjusted) real objective. ---
        let sign = match self.sense {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        let mut cost = vec![0.0; n_cols];
        // why: only the first n of n_cols entries are structural; the
        // explicit bound documents that slack/artificial costs stay zero.
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            cost[j] = sign * self.objective[j];
        }
        let mut t = Tableau::new(rows, cost, basis, n_cols);
        t.price_out_basis();
        let structural_limit = n + n_slack;
        let outcome = t.run(&|j| j < structural_limit, max_iters);
        let total_pivots = phase1_pivots + t.pivots;
        let solution = match outcome {
            PivotOutcome::Optimal => {
                let x: Vec<f64> = (0..n).map(|j| t.value_of(j)).collect();
                let objective = self.objective_value(&x);
                Solution {
                    status: Status::Optimal,
                    objective,
                    x,
                }
            }
            PivotOutcome::Unbounded => Solution {
                status: Status::Unbounded,
                objective: 0.0,
                x: vec![0.0; n],
            },
            PivotOutcome::Stalled => stalled(n),
        };
        Ok((solution, total_pivots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn maximize_with_le_constraints() {
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective(vec![3.0, 5.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn minimize_with_ge_constraints_needs_phase1() {
        // Classic diet-style LP: min 0.2x + 0.3y, x+y ≥ 10, 2x+y ≥ 12.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective(vec![0.2, 0.3]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Ge, 10.0);
        lp.add_constraint(vec![2.0, 1.0], Relation::Ge, 12.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        // x+y ≥ 10 binds with cheapest mix: all x (0.2/unit) once 2x+y ok.
        assert_close(s.objective, 2.0);
        assert_close(s.x[0], 10.0);
        assert_close(s.x[1], 0.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, x − y = 1 → x=2, y=1, obj=4.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective(vec![1.0, 2.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 3.0);
        lp.add_constraint(vec![1.0, -1.0], Relation::Eq, 1.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 4.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Ge, 5.0);
        lp.add_constraint(vec![1.0], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective(vec![1.0, 0.0]);
        lp.add_constraint(vec![-1.0, 1.0], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x ≤ −1 is infeasible for x ≥ 0; expressed as −x ≥ 1 internally.
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, -1.0);
        assert_eq!(lp.solve().unwrap().status, Status::Infeasible);

        // −x ≥ −5 ⇔ x ≤ 5 is feasible and bounds the objective.
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![-1.0], Relation::Ge, -5.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many constraints intersecting at the origin.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 0.0);
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 0.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 0.0);
        lp.add_constraint(vec![2.0, 1.0], Relation::Le, 0.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice plus its double: rank-deficient system.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective(vec![1.0, 0.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 2.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 2.0);
        lp.add_constraint(vec![2.0, 2.0], Relation::Eq, 4.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 2.0);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn free_variable_pair_round_trip() {
        // max t s.t. t ≤ 3 − x, t ≤ x − 1 with t free: optimum t=1 at x=2.
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        let (tp, tm) = lp.add_free_variable_pair();
        lp.set_objective_coefficient(tp, 1.0);
        lp.set_objective_coefficient(tm, -1.0);
        // x + t ≤ 3 ; −x + t ≤ −1
        lp.add_constraint(vec![1.0, 1.0, -1.0], Relation::Le, 3.0);
        lp.add_constraint(vec![-1.0, 1.0, -1.0], Relation::Le, -1.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(LinearProgram::free_value(&s.x, (tp, tm)), 1.0);
    }

    #[test]
    fn solution_is_feasible_for_original_program() {
        let mut lp = LinearProgram::new(3, Objective::Minimize);
        lp.set_objective(vec![1.0, 2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Ge, 6.0);
        lp.add_constraint(vec![1.0, -1.0, 0.0], Relation::Eq, 1.0);
        lp.add_constraint(vec![0.0, 1.0, 2.0], Relation::Le, 8.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(lp.is_feasible(&s.x, 1e-7));
    }
}
