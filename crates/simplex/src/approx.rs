//! Tolerance-based float comparison helpers shared across the workspace.
//!
//! Raw `==`/`!=` on `f64` is banned by `fedval-lint` (rule `float-eq`):
//! coalition values, dividends, and blocking probabilities are produced by
//! long chains of float arithmetic, so exact equality either works by
//! accident or silently stops working when an upstream computation is
//! reordered. These helpers make the tolerance explicit at every call
//! site. They live in `fedval-simplex` — the dependency-free root of the
//! workspace graph — and are re-exported from `fedval-core` for the
//! higher crates.

/// Default noise floor for "is this value exactly zero, up to float
/// noise?" tests on O(1)-magnitude quantities (shares, probabilities,
/// Harsanyi dividends). Chosen three orders of magnitude below the
/// solver's [`EPSILON`](crate::EPSILON) so that skipping a `NOISE_EPS`-
/// sized dividend can never flip a simplex-level decision.
pub const NOISE_EPS: f64 = 1e-12;

/// `true` when `x` is within `eps` of zero (absolute tolerance).
///
/// `is_zero(x, 0.0)` is an exact zero test spelled so the tolerance is
/// visible; prefer [`NOISE_EPS`] for computed quantities.
#[inline]
#[must_use]
pub fn is_zero(x: f64, eps: f64) -> bool {
    x.abs() <= eps
}

/// `true` when `a` and `b` differ by at most `eps` (absolute tolerance).
///
/// Absolute — not relative — tolerance is the right default here because
/// the workspace's quantities are either normalized shares in `[0, 1]` or
/// coalition values on a known scale; callers comparing quantities of
/// wildly different magnitudes should pick `eps` accordingly.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_zero_exact_and_tolerant() {
        assert!(is_zero(0.0, 0.0));
        assert!(is_zero(-0.0, 0.0));
        assert!(!is_zero(1e-15, 0.0));
        assert!(is_zero(1e-13, NOISE_EPS));
        assert!(!is_zero(1e-11, NOISE_EPS));
        assert!(is_zero(-1e-13, NOISE_EPS));
    }

    #[test]
    fn approx_eq_is_symmetric_and_bounded() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, NOISE_EPS));
        assert!(approx_eq(1.0 + 1e-13, 1.0, NOISE_EPS));
        assert!(!approx_eq(1.0, 1.0 + 1e-9, NOISE_EPS));
        assert!(approx_eq(0.1 + 0.2, 0.3, 1e-15));
    }

    #[test]
    fn non_finite_inputs_never_compare_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(!approx_eq(f64::INFINITY, f64::INFINITY, 1.0));
        assert!(!is_zero(f64::NAN, 1.0));
    }
}
