#![deny(missing_docs)]

//! A dense, two-phase primal simplex solver for linear programs.
//!
//! This crate is the linear-programming substrate of the `fedval` workspace.
//! The coalitional-game solution concepts used in the paper reproduction —
//! core emptiness (balancedness), the least core, and the nucleolus — all
//! reduce to sequences of small, dense LPs, so a compact tableau simplex
//! with Bland's anti-cycling rule is the right tool: exact enough at these
//! sizes (tens of variables, up to a few thousand constraints for `n ≤ 12`
//! player games), with no external dependencies.
//!
//! # Problem form
//!
//! A [`LinearProgram`] is built over `n` decision variables, each implicitly
//! constrained to be non-negative. Free variables can be modelled by the
//! caller as a difference of two non-negative variables (see
//! [`LinearProgram::add_free_variable_pair`] for a convenience helper).
//! Constraints compare a linear expression with a constant using
//! [`Relation::Le`], [`Relation::Ge`] or [`Relation::Eq`], and the objective
//! is either minimized or maximized.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`:
//!
//! ```
//! use fedval_simplex::{LinearProgram, Objective, Relation, Status};
//!
//! let mut lp = LinearProgram::new(2, Objective::Maximize);
//! lp.set_objective_coefficient(0, 3.0);
//! lp.set_objective_coefficient(1, 2.0);
//! lp.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0);
//! lp.add_constraint(vec![1.0, 3.0], Relation::Le, 6.0);
//! let solution = lp.solve().unwrap();
//! assert_eq!(solution.status, Status::Optimal);
//! assert!((solution.objective - 12.0).abs() < 1e-9);
//! assert!((solution.x[0] - 4.0).abs() < 1e-9);
//! ```

pub mod approx;
mod problem;
mod solver;
mod tableau;

pub use approx::{approx_eq, is_zero, NOISE_EPS};
pub use problem::{Constraint, LinearProgram, Objective, ProblemError, Relation};
pub use solver::{Solution, Status};

/// Numerical tolerance used throughout the solver for feasibility,
/// optimality, and pivot-eligibility tests.
///
/// LPs arising from coalitional games have coefficients that are exact
/// small rationals (0, ±1) and right-hand sides that are coalition values,
/// so `1e-9` leaves ample headroom between real decisions and float noise.
pub const EPSILON: f64 = 1e-9;
