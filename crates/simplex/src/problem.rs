//! Problem construction: variables, constraints, and objective.

use std::fmt;

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Comparison relating a linear expression to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// One linear constraint `Σ coeffs[j]·x[j]  (≤ | ≥ | =)  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficient per decision variable; length equals the LP's variable count.
    pub coeffs: Vec<f64>,
    /// The comparison relating the expression to `rhs`.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// Errors detectable at construction / validation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// A constraint's coefficient vector length differs from the variable count.
    DimensionMismatch {
        /// Index of the offending constraint.
        constraint: usize,
        /// Length the coefficient vector was expected to have.
        expected: usize,
        /// Length it actually had.
        actual: usize,
    },
    /// A coefficient, objective entry, or right-hand side is NaN or infinite.
    NonFiniteInput,
    /// A variable index was out of range.
    VariableOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of variables in the program.
        variables: usize,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::DimensionMismatch {
                constraint,
                expected,
                actual,
            } => write!(
                f,
                "constraint {constraint}: expected {expected} coefficients, got {actual}"
            ),
            ProblemError::NonFiniteInput => write!(f, "non-finite coefficient in program"),
            ProblemError::VariableOutOfRange { index, variables } => {
                write!(f, "variable index {index} out of range (n = {variables})")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// A linear program over non-negative decision variables.
///
/// See the [crate-level documentation](crate) for the accepted form and an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    pub(crate) n_vars: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) sense: Objective,
    pub(crate) constraints: Vec<Constraint>,
    /// Pairs `(plus, minus)` registered through
    /// [`LinearProgram::add_free_variable_pair`]; used only by accessors that
    /// reconstruct the free value.
    free_pairs: Vec<(usize, usize)>,
}

impl LinearProgram {
    /// Creates a program with `n_vars` non-negative variables and a zero
    /// objective of the given `sense`.
    pub fn new(n_vars: usize, sense: Objective) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            sense,
            constraints: Vec::new(),
            free_pairs: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints added so far.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Direction of optimization.
    pub fn sense(&self) -> Objective {
        self.sense
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    /// Panics if `var` is out of range; the builder is used with literal
    /// indices so this is a programming error, not a data error.
    pub fn set_objective_coefficient(&mut self, var: usize, coeff: f64) {
        assert!(var < self.n_vars, "variable index out of range");
        self.objective[var] = coeff;
    }

    /// Replaces the whole objective vector.
    ///
    /// # Panics
    /// Panics if the length differs from the variable count.
    pub fn set_objective(&mut self, coeffs: Vec<f64>) {
        assert_eq!(coeffs.len(), self.n_vars, "objective length mismatch");
        self.objective = coeffs;
    }

    /// Appends the constraint `Σ coeffs[j]·x[j] (relation) rhs`.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, relation: Relation, rhs: f64) {
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
    }

    /// Adds two fresh non-negative variables `(plus, minus)` whose difference
    /// `plus − minus` models one *free* (sign-unrestricted) variable, and
    /// returns their indices.
    ///
    /// Existing constraints are padded with zero coefficients for the new
    /// variables, so the helper may be called after constraints were added.
    pub fn add_free_variable_pair(&mut self) -> (usize, usize) {
        let plus = self.n_vars;
        let minus = self.n_vars + 1;
        self.n_vars += 2;
        self.objective.extend_from_slice(&[0.0, 0.0]);
        for c in &mut self.constraints {
            c.coeffs.extend_from_slice(&[0.0, 0.0]);
        }
        self.free_pairs.push((plus, minus));
        (plus, minus)
    }

    /// Value of the free variable registered as `(plus, minus)` in a solution
    /// vector `x`.
    pub fn free_value(x: &[f64], pair: (usize, usize)) -> f64 {
        x[pair.0] - x[pair.1]
    }

    /// Validates dimensions and finiteness of all inputs.
    ///
    /// # Errors
    /// [`ProblemError::DimensionMismatch`] for a constraint row of the wrong
    /// width, [`ProblemError::NonFiniteInput`] for NaN or infinite
    /// coefficients, and [`ProblemError::VariableOutOfRange`] for a bad free-
    /// variable index.
    pub fn validate(&self) -> Result<(), ProblemError> {
        if !self.objective.iter().all(|c| c.is_finite()) {
            return Err(ProblemError::NonFiniteInput);
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != self.n_vars {
                return Err(ProblemError::DimensionMismatch {
                    constraint: i,
                    expected: self.n_vars,
                    actual: c.coeffs.len(),
                });
            }
            if !c.rhs.is_finite() || !c.coeffs.iter().all(|v| v.is_finite()) {
                return Err(ProblemError::NonFiniteInput);
            }
        }
        Ok(())
    }

    /// Evaluates the objective at point `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks whether `x ≥ 0` satisfies every constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_dimensions() {
        let mut lp = LinearProgram::new(3, Objective::Minimize);
        lp.add_constraint(vec![1.0, 0.0, 2.0], Relation::Eq, 5.0);
        assert_eq!(lp.n_vars(), 3);
        assert_eq!(lp.n_constraints(), 1);
        assert!(lp.validate().is_ok());
    }

    #[test]
    fn validate_rejects_dimension_mismatch() {
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
        assert_eq!(
            lp.validate(),
            Err(ProblemError::DimensionMismatch {
                constraint: 0,
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn validate_rejects_nan() {
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        lp.add_constraint(vec![f64::NAN], Relation::Le, 1.0);
        assert_eq!(lp.validate(), Err(ProblemError::NonFiniteInput));
    }

    #[test]
    fn free_pair_expands_existing_constraints() {
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
        let (p, m) = lp.add_free_variable_pair();
        assert_eq!((p, m), (1, 2));
        assert_eq!(lp.constraints[0].coeffs.len(), 3);
        let x = vec![0.0, 2.0, 5.0];
        assert!((LinearProgram::free_value(&x, (p, m)) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_checker_honours_relations() {
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0);
        lp.add_constraint(vec![1.0, -1.0], Relation::Ge, 0.0);
        lp.add_constraint(vec![0.0, 1.0], Relation::Eq, 1.0);
        assert!(lp.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 1.0], 1e-9)); // violates Ge
        assert!(!lp.is_feasible(&[2.0, 0.0], 1e-9)); // violates Eq
        assert!(!lp.is_feasible(&[-1.0, 1.0], 1e-9)); // negative variable
    }
}
