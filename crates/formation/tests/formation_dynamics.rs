//! Property tests for the hedonic merge/split dynamics (ISSUE 10,
//! satellite 3; DESIGN.md §15).
//!
//! Three guarantees the engine advertises:
//!
//! (a) **thread invariance** — the rendered outcome (trajectory, payoff
//!     table, fingerprints) is byte-identical at any `threads`;
//! (b) **termination** — random games with `n ≤ 12` finish within the
//!     round cap (the potential argument bounds merge/split churn, the
//!     cap bounds everything else);
//! (c) **superadditive convergence** — on strictly superadditive games
//!     the grand coalition must win: the dynamics converge to a
//!     merge/split-stable partition with a single block.

use fedval_coalition::{ApproxConfig, PlayerId, WideGame};
use fedval_form::{fnv1a, ChurnSchedule, FormationConfig, FormationEngine};
use proptest::prelude::*;

/// Deterministic pseudo-random characteristic function: `V(S)` is an
/// FNV-1a hash of the member list mixed with `seed`, mapped into
/// `[0, 4)`, and `V(∅) = 0`. Pure by construction (same members, same
/// value), but neither monotone nor superadditive — a worst case for
/// the dynamics' termination and determinism guarantees.
struct HashGame {
    n: usize,
    seed: u64,
}

impl WideGame for HashGame {
    fn n_players(&self) -> usize {
        self.n
    }
    fn value_members(&self, members: &[PlayerId]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        let mut hash = fnv1a(0xCBF2_9CE4_8422_2325, &self.seed.to_le_bytes());
        for &m in members {
            hash = fnv1a(hash, &(m as u64).to_le_bytes());
        }
        // Top 53 bits → uniform in [0, 1), scaled to [0, 4).
        (hash >> 11) as f64 / (1u64 << 53) as f64 * 4.0
    }
}

/// Strictly superadditive weighted game: `V(S) = (Σ w_i)²` with all
/// weights positive, so any two disjoint non-empty coalitions strictly
/// gain by merging and the grand coalition is the unique stable
/// outcome.
struct QuadraticGame {
    weights: Vec<f64>,
}

impl WideGame for QuadraticGame {
    fn n_players(&self) -> usize {
        self.weights.len()
    }
    fn value_members(&self, members: &[PlayerId]) -> f64 {
        let total: f64 = members.iter().map(|&m| self.weights[m]).sum();
        total * total
    }
}

/// Shared config: exhaustive pair scans at these sizes, modest sampled
/// budgets, and the small Shapley sample count keeps the payoff stage
/// cheap (n ≤ 12 rides the exact path anyway).
fn test_config(threads: usize, max_rounds: usize) -> FormationConfig {
    FormationConfig {
        seed: 7,
        max_rounds,
        pair_budget: 4096,
        split_budget: 4,
        threads,
        approx: ApproxConfig {
            samples: 32,
            ..ApproxConfig::default()
        },
        ..FormationConfig::default()
    }
}

/// Mixed churn schedule: half the authorities at `t = 0`, the rest
/// staggered one round apart, one departure near the end. Exercises
/// the lifecycle path, not just the static all-at-start case.
fn staggered_schedule(n: usize, round_dt: f64) -> ChurnSchedule {
    let mut schedule = ChurnSchedule::new();
    for authority in 0..n {
        let at = if authority < n.div_ceil(2) {
            0.0
        } else {
            (authority - n.div_ceil(2) + 1) as f64 * round_dt
        };
        schedule = schedule.arrive(authority, at);
    }
    if n > 2 {
        schedule = schedule.depart(0, 6.0 * round_dt);
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Byte-identical rendered outcome across thread counts on
    /// adversarially random (non-superadditive) games.
    #[test]
    fn dynamics_are_thread_invariant(n in 4usize..=10, seed in 0u64..1_000_000) {
        let game = HashGame { n, seed };
        let schedule = staggered_schedule(n, 10.0);
        let baseline = FormationEngine::new(&game, test_config(1, 24))
            .run(&schedule)
            .render();
        for threads in [2usize, 4] {
            let parallel = FormationEngine::new(&game, test_config(threads, 24))
                .run(&schedule)
                .render();
            prop_assert_eq!(&baseline, &parallel, "threads={} diverged", threads);
        }
    }

    /// (b) Random games with n ≤ 12 terminate within the round cap:
    /// the engine returns, records at most `max_rounds` rounds, and
    /// leaves a partition that covers exactly the surviving members.
    #[test]
    fn random_games_terminate_within_round_cap(n in 2usize..=12, seed in 0u64..1_000_000) {
        let game = HashGame { n, seed };
        let schedule = staggered_schedule(n, 10.0);
        let max_rounds = 24;
        let outcome = FormationEngine::new(&game, test_config(1, max_rounds)).run(&schedule);
        prop_assert!(!outcome.rounds.is_empty());
        prop_assert!(outcome.rounds.len() <= max_rounds);
        if let Some(round) = outcome.converged_round {
            prop_assert!(round <= max_rounds);
        }
        let expected_members = if n > 2 { n - 1 } else { n };
        prop_assert_eq!(outcome.final_partition.n_members(), expected_members);
    }

    /// (c) On strictly superadditive games the grand coalition must
    /// win: one block, merge/split-stable, converged before the cap.
    #[test]
    fn superadditive_games_converge_to_grand_coalition(
        weights in prop::collection::vec(0.25f64..4.0, 2..=9),
    ) {
        let n = weights.len();
        let game = QuadraticGame { weights };
        let outcome = FormationEngine::new(&game, test_config(1, 32))
            .run(&ChurnSchedule::all_at_start(n));
        prop_assert!(outcome.converged_round.is_some(), "did not converge");
        prop_assert_eq!(outcome.final_partition.n_blocks(), 1, "grand coalition must win");
        prop_assert_eq!(outcome.final_partition.n_members(), n);
        prop_assert!(outcome.stability.merge_stable, "not merge-stable");
        prop_assert!(outcome.stability.split_stable, "not split-stable");
    }
}
