//! Authority lifecycle states.
//!
//! Authorities move strictly forward through
//! `Candidate → Member → Departing → Gone`; the engine never moves an
//! authority backwards (a departed authority that "returns" would be a
//! new player id in a new scenario, not a resurrection). `Member` and
//! `Departing` authorities occupy a coalition; `Candidate` and `Gone`
//! do not.

/// Where an authority is in its federation lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LifecycleState {
    /// Known to the scenario but not yet arrived; holds no coalition slot.
    Candidate,
    /// Arrived and participating: occupies exactly one coalition.
    Member,
    /// Departure announced (churn/fault event observed); still counted in
    /// its coalition until the next round boundary retires it.
    Departing,
    /// Left the federation; its coalition slot has been released.
    Gone,
}

impl LifecycleState {
    /// Short fixed label used in deterministic renders.
    pub fn label(self) -> &'static str {
        match self {
            LifecycleState::Candidate => "candidate",
            LifecycleState::Member => "member",
            LifecycleState::Departing => "departing",
            LifecycleState::Gone => "gone",
        }
    }

    /// Whether the authority currently occupies a coalition slot.
    pub fn in_partition(self) -> bool {
        matches!(self, LifecycleState::Member | LifecycleState::Departing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(LifecycleState::Candidate.label(), "candidate");
        assert_eq!(LifecycleState::Member.label(), "member");
        assert_eq!(LifecycleState::Departing.label(), "departing");
        assert_eq!(LifecycleState::Gone.label(), "gone");
    }

    #[test]
    fn partition_occupancy_matches_states() {
        assert!(!LifecycleState::Candidate.in_partition());
        assert!(LifecycleState::Member.in_partition());
        assert!(LifecycleState::Departing.in_partition());
        assert!(!LifecycleState::Gone.in_partition());
    }
}
