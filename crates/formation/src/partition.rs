//! The coalition partition: disjoint blocks of active authorities.
//!
//! Blocks live in a `BTreeMap` keyed by a block id so iteration order is
//! deterministic; member lists are kept sorted. The *canonical* encoding
//! (blocks ordered by their minimum member, members ascending) is
//! independent of block-id history, so two runs that reach the same
//! partition through different merge orders fingerprint identically.

use fedval_coalition::PlayerId;
use std::collections::BTreeMap;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Folds `bytes` into an FNV-1a accumulator. Deterministic and
/// platform-independent — the partition/trajectory fingerprints in CI
/// and `bench_pipeline --check` are built from this.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A partition of the active authorities into disjoint coalitions.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    blocks: BTreeMap<u32, Vec<PlayerId>>,
    next_id: u32,
}

impl Partition {
    /// The empty partition.
    pub fn new() -> Partition {
        Partition::default()
    }

    /// Number of coalitions.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total members across all coalitions.
    pub fn n_members(&self) -> usize {
        self.blocks.values().map(Vec::len).sum()
    }

    /// Iterates `(block_id, members)` in block-id order.
    pub fn blocks(&self) -> impl Iterator<Item = (u32, &[PlayerId])> {
        self.blocks.iter().map(|(&id, m)| (id, m.as_slice()))
    }

    /// Block ids in ascending order.
    pub fn block_ids(&self) -> Vec<u32> {
        self.blocks.keys().copied().collect()
    }

    /// The sorted member list of block `id` (empty slice if absent).
    pub fn members(&self, id: u32) -> &[PlayerId] {
        self.blocks.get(&id).map_or(&[], Vec::as_slice)
    }

    /// The block currently holding `player`, if any.
    pub fn block_of(&self, player: PlayerId) -> Option<u32> {
        self.blocks
            .iter()
            .find(|(_, m)| m.binary_search(&player).is_ok())
            .map(|(&id, _)| id)
    }

    /// Admits `player` as a fresh singleton coalition; returns its block id.
    /// A player already present is left where it is (its block is returned).
    pub fn insert_singleton(&mut self, player: PlayerId) -> u32 {
        if let Some(id) = self.block_of(player) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.blocks.insert(id, vec![player]);
        id
    }

    /// Removes `player` from its block (dropping the block if emptied).
    /// Returns the block id it was removed from, if it was present.
    pub fn remove_member(&mut self, player: PlayerId) -> Option<u32> {
        let id = self.block_of(player)?;
        let emptied = {
            let members = self.blocks.get_mut(&id)?;
            if let Ok(pos) = members.binary_search(&player) {
                members.remove(pos);
            }
            members.is_empty()
        };
        if emptied {
            self.blocks.remove(&id);
        }
        Some(id)
    }

    /// Merges blocks `a` and `b` into one block under `min(a, b)`.
    /// Returns the surviving id, or `None` if either block is absent or
    /// `a == b`.
    pub fn merge(&mut self, a: u32, b: u32) -> Option<u32> {
        if a == b {
            return None;
        }
        let (keep, fold) = if a < b { (a, b) } else { (b, a) };
        let folded = self.blocks.remove(&fold)?;
        match self.blocks.get_mut(&keep) {
            Some(members) => {
                members.extend(folded);
                members.sort_unstable();
                Some(keep)
            }
            None => {
                // `keep` vanished out from under us: restore and refuse.
                self.blocks.insert(fold, folded);
                None
            }
        }
    }

    /// Replaces block `id` with the two sides of a bipartition. The side
    /// containing the smaller minimum member keeps `id`; the other side
    /// gets a fresh id. Returns `(kept_id, new_id)`, or `None` when the
    /// bipartition is not an exact two-way split of the block's members
    /// (either side empty, overlap, or members missing).
    pub fn split(
        &mut self,
        id: u32,
        mut side_a: Vec<PlayerId>,
        mut side_b: Vec<PlayerId>,
    ) -> Option<(u32, u32)> {
        if side_a.is_empty() || side_b.is_empty() {
            return None;
        }
        side_a.sort_unstable();
        side_b.sort_unstable();
        let mut reunion: Vec<PlayerId> = side_a.iter().chain(side_b.iter()).copied().collect();
        reunion.sort_unstable();
        if self.blocks.get(&id).map(Vec::as_slice) != Some(reunion.as_slice()) {
            return None;
        }
        let (first, second) = if side_a[0] < side_b[0] {
            (side_a, side_b)
        } else {
            (side_b, side_a)
        };
        let new_id = self.next_id;
        self.next_id += 1;
        self.blocks.insert(id, first);
        self.blocks.insert(new_id, second);
        Some((id, new_id))
    }

    /// Canonical text encoding: blocks ordered by minimum member, members
    /// ascending — `"0,3|1,2,4"`. Identical partitions encode identically
    /// regardless of the merge/split history that produced them.
    pub fn canonical(&self) -> String {
        let mut blocks: Vec<&Vec<PlayerId>> = self.blocks.values().collect();
        blocks.sort_by_key(|m| m.first().copied().unwrap_or(PlayerId::MAX));
        let mut out = String::new();
        for (i, members) in blocks.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            for (j, p) in members.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&p.to_string());
            }
        }
        out
    }

    /// FNV-1a fingerprint of [`Partition::canonical`].
    pub fn fingerprint(&self) -> u64 {
        fnv1a(FNV_OFFSET, self.canonical().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_merge_split_roundtrip() {
        let mut p = Partition::new();
        for player in [3, 1, 4] {
            p.insert_singleton(player);
        }
        assert_eq!(p.n_blocks(), 3);
        let a = p.block_of(3).unwrap();
        let b = p.block_of(1).unwrap();
        let merged = p.merge(a, b).unwrap();
        assert_eq!(p.members(merged), &[1, 3]);
        assert_eq!(p.n_blocks(), 2);
        let (kept, fresh) = p.split(merged, vec![3], vec![1]).unwrap();
        assert_eq!(p.members(kept), &[1]);
        assert_eq!(p.members(fresh), &[3]);
    }

    #[test]
    fn canonical_is_history_independent() {
        // Reach {0,2}|{1} two ways; encodings must agree.
        let mut p = Partition::new();
        let a = p.insert_singleton(0);
        p.insert_singleton(1);
        let c = p.insert_singleton(2);
        p.merge(a, c);

        let mut q = Partition::new();
        let c2 = q.insert_singleton(2);
        let a2 = q.insert_singleton(0);
        q.insert_singleton(1);
        q.merge(c2, a2);

        assert_eq!(p.canonical(), q.canonical());
        assert_eq!(p.canonical(), "0,2|1");
        assert_eq!(p.fingerprint(), q.fingerprint());
    }

    #[test]
    fn split_rejects_malformed_bipartitions() {
        let mut p = Partition::new();
        let a = p.insert_singleton(0);
        let b = p.insert_singleton(1);
        let id = p.merge(a, b).unwrap();
        assert!(p.split(id, vec![0, 1], vec![]).is_none());
        assert!(p.split(id, vec![0], vec![2]).is_none());
        assert!(p.split(id, vec![0], vec![0, 1]).is_none());
        // The failed attempts left the block intact.
        assert_eq!(p.members(id), &[0, 1]);
    }

    #[test]
    fn remove_member_drops_emptied_blocks() {
        let mut p = Partition::new();
        let id = p.insert_singleton(7);
        assert_eq!(p.remove_member(7), Some(id));
        assert_eq!(p.n_blocks(), 0);
        assert_eq!(p.remove_member(7), None);
    }
}
