//! The hedonic merge/split formation engine.
//!
//! Each round on the desim clock: retire announced departures, then let
//! coalitions **merge** (highest strict gain first, each block in at
//! most one merge per round), then let blocks **split** along the best
//! strictly-gaining bipartition found within a seeded candidate budget.
//! Because every operation strictly increases the potential
//! `Σ_blocks V(B)` by more than `gain_epsilon`, the dynamics cannot
//! cycle; the round cap bounds the run regardless.
//!
//! Determinism: candidate enumeration follows block-id order, sampling
//! draws come from `derive_seed(seed, round)` streams consumed on the
//! single decision thread, and all parallel value evaluation goes
//! through [`ValueOracle::eval_batch`] (input-order results). The
//! rendered outcome is a pure function of `(game, schedule, config)`.

use crate::churn::{ChurnSchedule, LifeEvent};
use crate::lifecycle::LifecycleState;
use crate::oracle::ValueOracle;
use crate::partition::{fnv1a, Partition};
use fedval_coalition::{
    derive_seed, shapley_auto_wide, ApproxConfig, GameError, PlayerId, WideGame,
};
use fedval_core::{Demand, Facility, FederationGame, FederationScenario};
use fedval_desim::{SimRng, Simulator};
use std::collections::BTreeSet;

/// Stream selector for round rule RNGs.
const ROUND_STREAM: u64 = 0x00F0_4444;
/// Stream selector for the final stability probe.
const STABILITY_STREAM: u64 = 0x0057_AB1E;
/// FNV-1a offset basis (64-bit), re-stated for trajectory folding.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// An owned federation characteristic function — the glue between
/// [`FederationScenario`] / the synthetic generator and the engine's
/// [`WideGame`] interface (the borrowed [`FederationGame`] cannot
/// outlive its scenario; formation runs want an owned game).
pub struct FormationGame {
    facilities: Vec<Facility>,
    demand: Demand,
}

impl FormationGame {
    /// Clones a scenario's facilities and demand into an owned game.
    pub fn from_scenario(scenario: &FederationScenario) -> FormationGame {
        FormationGame {
            facilities: scenario.facilities().to_vec(),
            demand: scenario.demand().clone(),
        }
    }

    /// The seeded synthetic federation (shared `(n, seed)` generator —
    /// same bytes as `fedval --synthetic` and `fedval-serve`).
    ///
    /// # Panics
    /// Panics if `n == 0` (propagated from the generator).
    pub fn synthetic(n: usize, seed: u64) -> FormationGame {
        let (facilities, demand) = fedval_testbed::synthetic_federation(n, seed);
        FormationGame { facilities, demand }
    }

    /// The facilities, in player-id order.
    pub fn facilities(&self) -> &[Facility] {
        &self.facilities
    }
}

impl WideGame for FormationGame {
    fn n_players(&self) -> usize {
        self.facilities.len()
    }
    fn value_members(&self, members: &[PlayerId]) -> f64 {
        FederationGame::new(&self.facilities, &self.demand).value_members(members)
    }
}

/// A [`WideGame`] restricted to a subset of its players (payoff math
/// runs on the survivors / one coalition at a time).
struct RestrictedGame<'g, G: WideGame + ?Sized> {
    game: &'g G,
    members: Vec<PlayerId>,
}

impl<G: WideGame + ?Sized> WideGame for RestrictedGame<'_, G> {
    fn n_players(&self) -> usize {
        self.members.len()
    }
    fn value_members(&self, members: &[PlayerId]) -> f64 {
        let mapped: Vec<PlayerId> = members.iter().map(|&i| self.members[i]).collect();
        // `members` is ascending and `self.members` is sorted, so the
        // mapped list is ascending too — the WideGame contract holds.
        self.game.value_members(&mapped)
    }
}

/// Tuning for a formation run. All fields feed the deterministic result.
#[derive(Debug, Clone)]
pub struct FormationConfig {
    /// Master seed for merge-pair sampling and split bipartition draws.
    pub seed: u64,
    /// Hard cap on rounds (the engine may stop earlier on convergence).
    pub max_rounds: usize,
    /// Simulated time between rounds.
    pub round_dt: f64,
    /// Max merge candidate pairs examined per round (lexicographic
    /// enumeration below the budget, seeded sampling above it).
    pub pair_budget: usize,
    /// Bipartitions sampled per block per round (small blocks are
    /// enumerated exhaustively).
    pub split_budget: usize,
    /// Weak-improvement merges allowed per round on value plateaus.
    /// Threshold demand makes every under-threshold coalition worth 0 —
    /// no *strictly* gaining pair exists below the threshold, and a
    /// strict-only rule stalls at singletons. Zero-gain ("neutral")
    /// merges let the federation coarsen across the plateau toward the
    /// threshold; strictly harmful merges never fire. Set 0 to restore
    /// the strict-only rule.
    pub neutral_budget: usize,
    /// Max pairs examined by the final merge-stability probe.
    pub stability_pair_budget: usize,
    /// Strict-improvement tolerance: an operation fires only when its
    /// gain exceeds this (guards float noise from counting as gain).
    pub gain_epsilon: f64,
    /// Worker threads for value evaluation (results are invariant).
    pub threads: usize,
    /// Sampled-Shapley settings for the payoff table past the exact cap.
    pub approx: ApproxConfig,
}

impl Default for FormationConfig {
    fn default() -> FormationConfig {
        FormationConfig {
            seed: 42,
            max_rounds: 32,
            round_dt: 10.0,
            pair_budget: 128,
            split_budget: 2,
            neutral_budget: 32,
            stability_pair_budget: 4096,
            gain_epsilon: 1e-9,
            threads: 1,
            approx: ApproxConfig {
                samples: 64,
                ..ApproxConfig::default()
            },
        }
    }
}

/// What one round did to the partition.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Simulated time of the round boundary.
    pub time: f64,
    /// Arrivals admitted since the previous round.
    pub arrivals: usize,
    /// Departing authorities retired at this boundary.
    pub departures: usize,
    /// Merges fired this round.
    pub merges: usize,
    /// Splits fired this round.
    pub splits: usize,
    /// Coalitions after the round.
    pub coalitions: usize,
    /// Members (incl. departing-not-yet-retired) after the round.
    pub members: usize,
    /// Canonical partition fingerprint after the round.
    pub fingerprint: u64,
}

/// Final per-authority payoff accounting.
#[derive(Debug, Clone)]
pub struct PayoffRow {
    /// Player id.
    pub authority: usize,
    /// Lifecycle state at the end of the run.
    pub state: LifecycleState,
    /// Minimum member of the authority's final coalition (a canonical,
    /// id-history-free coalition label).
    pub coalition: usize,
    /// Shapley share promised by the grand coalition of survivors.
    pub promised: f64,
    /// Shapley share realized inside the authority's actual coalition.
    pub realized: f64,
    /// `promised - realized` — what fragmentation cost this authority.
    pub regret: f64,
}

/// Is the final partition stable under the rules that built it?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityReport {
    /// No examined pair of blocks strictly gains by merging.
    pub merge_stable: bool,
    /// No examined bipartition of any block strictly gains.
    pub split_stable: bool,
    /// Whether both probes covered *all* candidates (vs. seeded samples
    /// once the candidate space outgrew the probe budgets).
    pub exhaustive: bool,
    /// Merge pairs examined.
    pub pairs_checked: usize,
    /// Bipartitions examined.
    pub bipartitions_checked: usize,
}

/// Everything a formation run produced.
#[derive(Debug, Clone)]
pub struct FormationOutcome {
    /// Scenario width (players known to the game).
    pub n: usize,
    /// Per-round trajectory.
    pub rounds: Vec<RoundRecord>,
    /// First round after which the partition was quiescent (no arrivals,
    /// retirements, merges, or splits), if any.
    pub converged_round: Option<usize>,
    /// Total merges across the run.
    pub total_merges: usize,
    /// Total splits across the run.
    pub total_splits: usize,
    /// The final partition.
    pub final_partition: Partition,
    /// Final lifecycle state per player id.
    pub states: Vec<LifecycleState>,
    /// Stability probe verdict on the final partition.
    pub stability: StabilityReport,
    /// Per-authority promised/realized/regret rows (empty if nobody
    /// survived to the end).
    pub payoffs: Vec<PayoffRow>,
    /// Payoff solver failure, if the Shapley stage refused its config.
    pub payoff_error: Option<String>,
    /// FNV-1a fold of the round trajectory.
    pub trajectory_fingerprint: u64,
}

impl FormationOutcome {
    /// Largest absolute regret across the payoff table (0.0 when empty).
    pub fn max_abs_regret(&self) -> f64 {
        self.payoffs
            .iter()
            .map(|r| r.regret.abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute regret across the payoff table (0.0 when empty).
    pub fn mean_abs_regret(&self) -> f64 {
        if self.payoffs.is_empty() {
            return 0.0;
        }
        self.payoffs.iter().map(|r| r.regret.abs()).sum::<f64>() / self.payoffs.len() as f64
    }

    /// Trajectory fingerprint folded with the payoff-table bit patterns —
    /// one u64 that pins the whole deterministic outcome (what CI and
    /// `bench_pipeline` compare).
    pub fn combined_fingerprint(&self) -> u64 {
        let mut h = self.trajectory_fingerprint;
        for row in &self.payoffs {
            h = fnv1a(h, &(row.authority as u64).to_le_bytes());
            h = fnv1a(h, &row.promised.to_bits().to_le_bytes());
            h = fnv1a(h, &row.realized.to_bits().to_le_bytes());
        }
        h
    }

    /// The policy-report section for this run.
    pub fn policy_section(&self) -> fedval_policy::FormationSection {
        fedval_policy::FormationSection {
            rounds: self.rounds.len(),
            converged_round: self.converged_round,
            merges: self.total_merges,
            splits: self.total_splits,
            merge_stable: self.stability.merge_stable,
            split_stable: self.stability.split_stable,
            stability_exhaustive: self.stability.exhaustive,
            coalitions: self.final_partition.n_blocks(),
            members: self.final_partition.n_members(),
            max_abs_regret: self.max_abs_regret(),
            mean_abs_regret: self.mean_abs_regret(),
            fingerprint: self.combined_fingerprint(),
        }
    }

    /// Deterministic full-text render: trajectory table, convergence and
    /// stability verdicts, and the payoff table. Byte-identical at any
    /// thread count (contains no wall-clock or scheduling artifacts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("round   time      join  leave  merge  split  blocks  members  fingerprint\n");
        for r in &self.rounds {
            out.push_str(&format!(
                "{:>5}  {:>8.1}  {:>4}  {:>5}  {:>5}  {:>5}  {:>6}  {:>7}  {:016x}\n",
                r.round,
                r.time,
                r.arrivals,
                r.departures,
                r.merges,
                r.splits,
                r.coalitions,
                r.members,
                r.fingerprint
            ));
        }
        match self.converged_round {
            Some(k) => out.push_str(&format!("converged: round {k} of {}\n", self.rounds.len())),
            None => out.push_str(&format!(
                "converged: no (round cap {} reached)\n",
                self.rounds.len()
            )),
        }
        out.push_str(&format!(
            "stability: merge-stable={} split-stable={} ({}; {} pairs, {} bipartitions)\n",
            yes_no(self.stability.merge_stable),
            yes_no(self.stability.split_stable),
            if self.stability.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            },
            self.stability.pairs_checked,
            self.stability.bipartitions_checked,
        ));
        out.push_str(&format!(
            "final partition: {} coalitions / {} members (of n={})\n",
            self.final_partition.n_blocks(),
            self.final_partition.n_members(),
            self.n
        ));
        if let Some(err) = &self.payoff_error {
            out.push_str(&format!("payoffs: unavailable ({err})\n"));
        } else if self.payoffs.is_empty() {
            out.push_str("payoffs: none (no surviving members)\n");
        } else {
            out.push_str("authority  state      coalition  promised      realized      regret\n");
            for row in &self.payoffs {
                out.push_str(&format!(
                    "{:>9}  {:<9}  {:>9}  {:>12.6}  {:>12.6}  {:>+12.6}\n",
                    row.authority,
                    row.state.label(),
                    row.coalition,
                    row.promised,
                    row.realized,
                    row.regret
                ));
            }
            out.push_str(&format!(
                "regret: max|r|={:.6} mean|r|={:.6}\n",
                self.max_abs_regret(),
                self.mean_abs_regret()
            ));
        }
        out.push_str(&format!(
            "totals: merges={} splits={}\n",
            self.total_merges, self.total_splits
        ));
        out.push_str(&format!(
            "trajectory fingerprint: {:016x}\n",
            self.trajectory_fingerprint
        ));
        out.push_str(&format!(
            "outcome fingerprint: {:016x}\n",
            self.combined_fingerprint()
        ));
        out
    }
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Simulator payload: lifecycle events interleave with round boundaries.
enum FormEvent {
    Life(LifeEvent),
    Round,
}

/// The engine: a game plus tuning, run over a churn schedule.
pub struct FormationEngine<'g, G: WideGame + ?Sized> {
    oracle: ValueOracle<'g, G>,
    cfg: FormationConfig,
}

impl<'g, G: WideGame + ?Sized> FormationEngine<'g, G> {
    /// Builds an engine over `game`.
    pub fn new(game: &'g G, cfg: FormationConfig) -> FormationEngine<'g, G> {
        FormationEngine {
            oracle: ValueOracle::new(game),
            cfg,
        }
    }

    /// Cache statistics from the run (reporting only — scheduling
    /// dependent under parallel evaluation).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.oracle.cache_stats()
    }

    /// Runs the merge/split dynamics over `schedule` to completion
    /// (convergence with no pending lifecycle events, or the round cap).
    pub fn run(&self, schedule: &ChurnSchedule) -> FormationOutcome {
        let n = self.oracle.n_players();
        let mut states = vec![LifecycleState::Candidate; n];
        let mut partition = Partition::new();
        let mut sim: Simulator<FormEvent> = Simulator::new();

        let mut lifecycle_pending = 0usize;
        for &(at, ev) in schedule.events() {
            let id = match ev {
                LifeEvent::Arrive(a) | LifeEvent::Depart(a) => a,
            };
            if id < n {
                sim.schedule_at(at.max(0.0), FormEvent::Life(ev));
                lifecycle_pending += 1;
            }
        }
        let max_rounds = self.cfg.max_rounds.max(1);
        for k in 1..=max_rounds {
            sim.schedule_at(k as f64 * self.cfg.round_dt, FormEvent::Round);
        }

        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut converged_round: Option<usize> = None;
        let (mut total_merges, mut total_splits) = (0usize, 0usize);
        let (mut arrivals_since, mut round_no) = (0usize, 0usize);

        while let Some((time, event)) = sim.next_event() {
            match event {
                FormEvent::Life(LifeEvent::Arrive(a)) => {
                    lifecycle_pending -= 1;
                    if states[a] == LifecycleState::Candidate {
                        states[a] = LifecycleState::Member;
                        partition.insert_singleton(a);
                        arrivals_since += 1;
                        converged_round = None;
                        fedval_obs::counter_add("form.join", 1);
                    }
                }
                FormEvent::Life(LifeEvent::Depart(a)) => {
                    lifecycle_pending -= 1;
                    if states[a] == LifecycleState::Member {
                        states[a] = LifecycleState::Departing;
                        converged_round = None;
                        fedval_obs::counter_add("form.departing", 1);
                    }
                }
                FormEvent::Round => {
                    round_no += 1;
                    fedval_obs::counter_add("form.round", 1);
                    let _span = fedval_obs::span_with("form.round", || {
                        format!("round={round_no} blocks={}", partition.n_blocks())
                    });
                    let mut departures = 0usize;
                    for (a, state) in states.iter_mut().enumerate().take(n) {
                        if *state == LifecycleState::Departing {
                            partition.remove_member(a);
                            *state = LifecycleState::Gone;
                            departures += 1;
                            fedval_obs::counter_add("form.leave", 1);
                        }
                    }
                    let mut rng =
                        SimRng::seed_from(derive_seed(self.cfg.seed, ROUND_STREAM ^ round_no as u64));
                    let merges = self.merge_pass(&mut partition, &mut rng);
                    let splits = self.split_pass(&mut partition, &mut rng);
                    total_merges += merges;
                    total_splits += splits;
                    rounds.push(RoundRecord {
                        round: round_no,
                        time,
                        arrivals: arrivals_since,
                        departures,
                        merges,
                        splits,
                        coalitions: partition.n_blocks(),
                        members: partition.n_members(),
                        fingerprint: partition.fingerprint(),
                    });
                    let quiescent =
                        arrivals_since == 0 && departures == 0 && merges == 0 && splits == 0;
                    arrivals_since = 0;
                    if quiescent && converged_round.is_none() {
                        converged_round = Some(round_no);
                    }
                    if converged_round.is_some() && lifecycle_pending == 0 {
                        break;
                    }
                }
            }
        }

        let stability = self.check_stability(&partition);
        let (payoffs, payoff_error) = match self.compute_payoffs(&partition, &states) {
            Ok(rows) => (rows, None),
            Err(e) => (Vec::new(), Some(e.to_string())),
        };

        let mut trajectory_fingerprint = FNV_OFFSET;
        for r in &rounds {
            for word in [
                r.round as u64,
                r.arrivals as u64,
                r.departures as u64,
                r.merges as u64,
                r.splits as u64,
                r.fingerprint,
            ] {
                trajectory_fingerprint = fnv1a(trajectory_fingerprint, &word.to_le_bytes());
            }
        }

        FormationOutcome {
            n,
            rounds,
            converged_round,
            total_merges,
            total_splits,
            final_partition: partition,
            states,
            stability,
            payoffs,
            payoff_error,
            trajectory_fingerprint,
        }
    }

    /// One merge round: examine up to `pair_budget` block pairs, fire the
    /// strictly-gaining ones greedily by descending gain, each block in
    /// at most one merge.
    fn merge_pass(&self, partition: &mut Partition, rng: &mut SimRng) -> usize {
        let ids = partition.block_ids();
        if ids.len() < 2 {
            return 0;
        }
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push((a, b));
            }
        }
        if pairs.len() > self.cfg.pair_budget && self.cfg.pair_budget > 0 {
            sample_prefix(&mut pairs, self.cfg.pair_budget, rng);
            pairs.sort_unstable();
        }
        let (values, union_values) = self.pair_values(partition, &pairs);
        let mut scored: Vec<(f64, u32, u32)> = pairs
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| {
                let gain = union_values[k] - values[&a] - values[&b];
                (gain, a, b)
            })
            .collect();
        scored.sort_by(|x, y| y.0.total_cmp(&x.0).then_with(|| (x.1, x.2).cmp(&(y.1, y.2))));
        let mut consumed: BTreeSet<u32> = BTreeSet::new();
        let mut merges = 0usize;
        let mut neutral_left = self.cfg.neutral_budget;
        for (gain, a, b) in scored {
            if gain < -self.cfg.gain_epsilon {
                // Descending order: everything past here strictly loses.
                break;
            }
            let strict = gain > self.cfg.gain_epsilon;
            if !strict && neutral_left == 0 {
                // Descending order: no strict gains remain either.
                break;
            }
            if consumed.contains(&a) || consumed.contains(&b) {
                continue;
            }
            if partition.merge(a, b).is_some() {
                consumed.insert(a);
                consumed.insert(b);
                merges += 1;
                fedval_obs::counter_add("form.merge", 1);
                if !strict {
                    neutral_left -= 1;
                    fedval_obs::counter_add("form.merge.neutral", 1);
                }
            }
        }
        merges
    }

    /// Values for every block named in `pairs` plus every pairwise union,
    /// evaluated as one deterministic batch. Returns
    /// `(block_id -> value, union value per pair in pair order)`.
    fn pair_values(
        &self,
        partition: &Partition,
        pairs: &[(u32, u32)],
    ) -> (std::collections::BTreeMap<u32, f64>, Vec<f64>) {
        let involved: BTreeSet<u32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        let mut queries: Vec<Vec<PlayerId>> = Vec::with_capacity(involved.len() + pairs.len());
        for &id in &involved {
            queries.push(partition.members(id).to_vec());
        }
        for &(a, b) in pairs {
            let mut u: Vec<PlayerId> = partition
                .members(a)
                .iter()
                .chain(partition.members(b))
                .copied()
                .collect();
            u.sort_unstable();
            queries.push(u);
        }
        let vals = self.oracle.eval_batch(&queries, self.cfg.threads);
        let block_values: std::collections::BTreeMap<u32, f64> = involved
            .iter()
            .copied()
            .zip(vals.iter().copied())
            .collect();
        (block_values, vals[involved.len()..].to_vec())
    }

    /// One split round: for each multi-member block, enumerate (small
    /// blocks) or sample (large blocks) bipartitions; fire the best
    /// strictly-gaining one per block.
    fn split_pass(&self, partition: &mut Partition, rng: &mut SimRng) -> usize {
        let ids = partition.block_ids();
        // (block id, side_a, side_b) in deterministic generation order.
        let mut candidates: Vec<(u32, Vec<PlayerId>, Vec<PlayerId>)> = Vec::new();
        for &id in &ids {
            let members = partition.members(id).to_vec();
            if members.len() < 2 {
                continue;
            }
            generate_bipartitions(&members, self.cfg.split_budget, rng, &mut |a, b| {
                candidates.push((id, a, b));
            });
        }
        if candidates.is_empty() {
            return 0;
        }
        let mut queries: Vec<Vec<PlayerId>> = Vec::with_capacity(candidates.len() * 2);
        for (_, a, b) in &candidates {
            queries.push(a.clone());
            queries.push(b.clone());
        }
        let side_vals = self.oracle.eval_batch(&queries, self.cfg.threads);
        let whole_queries: Vec<Vec<PlayerId>> =
            ids.iter().map(|&id| partition.members(id).to_vec()).collect();
        let whole_vals = self.oracle.eval_batch(&whole_queries, self.cfg.threads);
        let whole: std::collections::BTreeMap<u32, f64> = ids
            .iter()
            .copied()
            .zip(whole_vals.iter().copied())
            .collect();

        // Best strictly-gaining candidate per block, first-listed wins ties.
        let mut best: std::collections::BTreeMap<u32, (f64, usize)> =
            std::collections::BTreeMap::new();
        for (k, (id, _, _)) in candidates.iter().enumerate() {
            let gain = side_vals[2 * k] + side_vals[2 * k + 1] - whole[id];
            if gain > self.cfg.gain_epsilon {
                let better = match best.get(id) {
                    Some(&(g, _)) => gain > g,
                    None => true,
                };
                if better {
                    best.insert(*id, (gain, k));
                }
            }
        }
        let mut splits = 0usize;
        for (&id, &(_, k)) in &best {
            let (_, a, b) = &candidates[k];
            if partition.split(id, a.clone(), b.clone()).is_some() {
                splits += 1;
                fedval_obs::counter_add("form.split", 1);
            }
        }
        splits
    }

    /// Probes the final partition for merge- and split-stability, within
    /// the stability budgets; `exhaustive` says whether the probe covered
    /// the full candidate space.
    fn check_stability(&self, partition: &Partition) -> StabilityReport {
        let mut rng = SimRng::seed_from(derive_seed(self.cfg.seed, STABILITY_STREAM));
        let ids = partition.block_ids();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push((a, b));
            }
        }
        let pairs_exhaustive = pairs.len() <= self.cfg.stability_pair_budget;
        if !pairs_exhaustive {
            sample_prefix(&mut pairs, self.cfg.stability_pair_budget, &mut rng);
            pairs.sort_unstable();
        }
        let (values, union_values) = self.pair_values(partition, &pairs);
        let merge_stable = pairs.iter().enumerate().all(|(k, &(a, b))| {
            union_values[k] - values[&a] - values[&b] <= self.cfg.gain_epsilon
        });

        // Split probe: exhaustive for small blocks, a larger-than-round
        // seeded sample for big ones.
        let probe_budget = self.cfg.split_budget.max(16);
        let mut split_exhaustive = true;
        let mut candidates: Vec<(u32, Vec<PlayerId>, Vec<PlayerId>)> = Vec::new();
        for &id in &ids {
            let members = partition.members(id).to_vec();
            if members.len() < 2 {
                continue;
            }
            if !exhaustive_below(&members, probe_budget) {
                split_exhaustive = false;
            }
            generate_bipartitions(&members, probe_budget, &mut rng, &mut |a, b| {
                candidates.push((id, a, b));
            });
        }
        let mut queries: Vec<Vec<PlayerId>> = Vec::with_capacity(candidates.len() * 2);
        for (_, a, b) in &candidates {
            queries.push(a.clone());
            queries.push(b.clone());
        }
        let side_vals = self.oracle.eval_batch(&queries, self.cfg.threads);
        let whole_queries: Vec<Vec<PlayerId>> =
            ids.iter().map(|&id| partition.members(id).to_vec()).collect();
        let whole_vals = self.oracle.eval_batch(&whole_queries, self.cfg.threads);
        let whole: std::collections::BTreeMap<u32, f64> = ids
            .iter()
            .copied()
            .zip(whole_vals.iter().copied())
            .collect();
        let split_stable = candidates.iter().enumerate().all(|(k, (id, _, _))| {
            side_vals[2 * k] + side_vals[2 * k + 1] - whole[id] <= self.cfg.gain_epsilon
        });

        StabilityReport {
            merge_stable,
            split_stable,
            exhaustive: pairs_exhaustive && split_exhaustive,
            pairs_checked: pairs.len(),
            bipartitions_checked: candidates.len(),
        }
    }

    /// The payoff table: promised (Shapley in the survivors' grand
    /// coalition) vs. realized (Shapley inside the actual coalition),
    /// exact below the cap and sampled with certified CIs above it.
    ///
    /// # Errors
    /// Propagates [`GameError`] when the Shapley stage rejects its
    /// configuration (e.g. a zero sample budget).
    fn compute_payoffs(
        &self,
        partition: &Partition,
        states: &[LifecycleState],
    ) -> Result<Vec<PayoffRow>, GameError> {
        let mut grand: Vec<PlayerId> = Vec::new();
        for (_, members) in partition.blocks() {
            grand.extend_from_slice(members);
        }
        grand.sort_unstable();
        if grand.is_empty() {
            return Ok(Vec::new());
        }
        let approx = ApproxConfig {
            threads: self.cfg.threads,
            ..self.cfg.approx
        };
        let _span = fedval_obs::span_with("form.payoffs", || {
            format!("members={} blocks={}", grand.len(), partition.n_blocks())
        });
        let promised_game = RestrictedGame {
            game: self.oracle.game(),
            members: grand.clone(),
        };
        let promised_phi = shapley_auto_wide(&promised_game, &approx)?.phi().to_vec();
        let mut promised: std::collections::BTreeMap<PlayerId, f64> = std::collections::BTreeMap::new();
        for (i, &p) in grand.iter().enumerate() {
            promised.insert(p, promised_phi[i]);
        }

        let mut rows: Vec<PayoffRow> = Vec::with_capacity(grand.len());
        for (_, members) in partition.blocks() {
            let coalition_label = members.first().copied().unwrap_or(0);
            let realized_phi: Vec<f64> = if members.len() == 1 {
                vec![self.oracle.value(members)]
            } else {
                let block_game = RestrictedGame {
                    game: self.oracle.game(),
                    members: members.to_vec(),
                };
                shapley_auto_wide(&block_game, &approx)?.phi().to_vec()
            };
            for (i, &p) in members.iter().enumerate() {
                let want = promised[&p];
                let got = realized_phi[i];
                rows.push(PayoffRow {
                    authority: p,
                    state: states[p],
                    coalition: coalition_label,
                    promised: want,
                    realized: got,
                    regret: want - got,
                });
            }
        }
        rows.sort_by_key(|r| r.authority);
        Ok(rows)
    }
}

/// Whether [`generate_bipartitions`] will enumerate `members`
/// exhaustively under `budget` (vs. falling back to seeded sampling).
fn exhaustive_below(members: &[PlayerId], budget: usize) -> bool {
    let m = members.len();
    m >= 2 && m - 1 < usize::BITS as usize && (1usize << (m - 1)) - 1 <= budget.max(7)
}

/// Emits proper bipartitions of `members` (first member always on side
/// A, so each unordered bipartition appears once): every one of the
/// `2^(m-1) - 1` candidates when that fits the budget (with slack — tiny
/// blocks are always enumerated), otherwise `budget` seeded draws.
fn generate_bipartitions(
    members: &[PlayerId],
    budget: usize,
    rng: &mut SimRng,
    emit: &mut dyn FnMut(Vec<PlayerId>, Vec<PlayerId>),
) {
    let m = members.len();
    if m < 2 {
        return;
    }
    let by_mask = |mask: u64, emit: &mut dyn FnMut(Vec<PlayerId>, Vec<PlayerId>)| {
        let mut a = vec![members[0]];
        let mut b = Vec::new();
        for (k, &p) in members[1..].iter().enumerate() {
            if mask >> k & 1 == 1 {
                b.push(p);
            } else {
                a.push(p);
            }
        }
        emit(a, b);
    };
    if exhaustive_below(members, budget) {
        for mask in 1..(1u64 << (m - 1)) {
            by_mask(mask, emit);
        }
    } else if m - 1 < 64 {
        let count = (1u64 << (m - 1)) - 1;
        for _ in 0..budget {
            by_mask(1 + rng.below(count), emit);
        }
    } else {
        // Wider than the mask word: coin-flip each member, then repair
        // degenerate draws deterministically.
        for _ in 0..budget {
            let mut a = vec![members[0]];
            let mut b = Vec::new();
            for &p in &members[1..] {
                if rng.uniform01() < 0.5 {
                    b.push(p);
                } else {
                    a.push(p);
                }
            }
            if b.is_empty() {
                if let Some(p) = a.pop() {
                    b.push(p);
                }
            }
            emit(a, b);
        }
    }
}

/// Moves a uniformly-drawn `k`-subset of `items` (partial Fisher-Yates)
/// to the front and truncates to it.
fn sample_prefix<T>(items: &mut Vec<T>, k: usize, rng: &mut SimRng) {
    let len = items.len();
    if k >= len {
        return;
    }
    for i in 0..k {
        let j = i + rng.below((len - i) as u64) as usize;
        items.swap(i, j);
    }
    items.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Superadditive with strictly convex gains: v(S) = (Σ w_i)².
    struct QuadGame {
        weights: Vec<f64>,
    }

    impl WideGame for QuadGame {
        fn n_players(&self) -> usize {
            self.weights.len()
        }
        fn value_members(&self, members: &[PlayerId]) -> f64 {
            let s: f64 = members.iter().map(|&i| self.weights[i]).sum();
            s * s
        }
    }

    fn quad(n: usize) -> QuadGame {
        QuadGame {
            weights: (0..n).map(|i| 1.0 + i as f64 * 0.25).collect(),
        }
    }

    #[test]
    fn superadditive_all_present_converges_to_grand_coalition() {
        let game = quad(8);
        let engine = FormationEngine::new(&game, FormationConfig::default());
        let out = engine.run(&ChurnSchedule::all_at_start(8));
        assert_eq!(out.final_partition.n_blocks(), 1);
        assert_eq!(out.final_partition.n_members(), 8);
        assert!(out.converged_round.is_some());
        assert!(out.stability.merge_stable);
        assert!(out.stability.split_stable);
        // Everybody sits in the grand coalition: promised == realized.
        for row in &out.payoffs {
            assert!(row.regret.abs() < 1e-9);
        }
    }

    #[test]
    fn departures_retire_members_through_the_lifecycle() {
        let game = quad(6);
        let engine = FormationEngine::new(&game, FormationConfig::default());
        let schedule = ChurnSchedule::all_at_start(6).depart(2, 15.0);
        let out = engine.run(&schedule);
        assert_eq!(out.states[2], LifecycleState::Gone);
        assert_eq!(out.final_partition.n_members(), 5);
        assert!(out.final_partition.block_of(2).is_none());
        assert!(out.payoffs.iter().all(|r| r.authority != 2));
    }

    #[test]
    fn run_is_thread_invariant() {
        let game = quad(9);
        let schedule = ChurnSchedule::seeded(9, 5, 100.0, 4, 2);
        let mut renders = Vec::new();
        for threads in [1, 4] {
            let cfg = FormationConfig {
                threads,
                ..FormationConfig::default()
            };
            let engine = FormationEngine::new(&game, cfg);
            renders.push(engine.run(&schedule).render());
        }
        assert_eq!(renders[0], renders[1]);
    }

    #[test]
    fn empty_schedule_converges_immediately() {
        let game = quad(4);
        let engine = FormationEngine::new(&game, FormationConfig::default());
        let out = engine.run(&ChurnSchedule::new());
        assert_eq!(out.converged_round, Some(1));
        assert_eq!(out.final_partition.n_blocks(), 0);
        assert!(out.payoffs.is_empty());
        assert!(out.payoff_error.is_none());
    }

    #[test]
    fn formation_game_matches_scenario_bytes() {
        let game = FormationGame::synthetic(12, 7);
        let scenario = fedval_testbed::synthetic_scenario(12, 7);
        let from_scenario = FormationGame::from_scenario(&scenario);
        let members: Vec<PlayerId> = (0..12).collect();
        assert_eq!(
            game.value_members(&members).to_bits(),
            from_scenario.value_members(&members).to_bits()
        );
        assert_eq!(game.n_players(), 12);
    }
}
