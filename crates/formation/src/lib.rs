#![deny(missing_docs)]

//! Dynamic coalition formation under churn.
//!
//! The paper prices a *fixed* grand coalition; this crate lets the
//! federation *form*. Authorities join, fail, and depart on the desim
//! clock (lifecycle Candidate → Member → Departing → Gone), and the
//! active population is maintained as a **partition** into coalitions
//! that evolves round-by-round under seeded hedonic **merge/split**
//! rules (arXiv:1309.2444): two coalitions merge when the merged value
//! strictly exceeds the sum of parts; a coalition splits when some
//! bipartition strictly gains. Coalition values come from the same
//! characteristic functions the rest of the workspace prices
//! ([`fedval_coalition::WideGame`] — exact allocation values at any
//! width, sampled Shapley for payoffs past the exact cap).
//!
//! Everything is deterministic: the event order is pinned by the
//! simulator's `(time, seq)` heap, every random draw comes from a
//! stream derived with [`fedval_coalition::derive_seed`] from
//! `(seed, round)`, and parallel value evaluation follows the PR 4
//! fold discipline (disjoint output slots, input-order fold), so a run
//! is byte-identical at any `--threads` count.
//!
//! Entry points: [`FormationEngine::run`] drives a
//! [`ChurnSchedule`] over any [`fedval_coalition::WideGame`];
//! [`FormationGame`] adapts a [`fedval_core::FederationScenario`] or a
//! seeded synthetic federation; the `fedform` bin wraps both.

pub mod churn;
pub mod engine;
pub mod lifecycle;
pub mod oracle;
pub mod partition;

pub use churn::{ChurnSchedule, LifeEvent};
pub use engine::{
    FormationConfig, FormationEngine, FormationGame, FormationOutcome, PayoffRow, RoundRecord,
    StabilityReport,
};
pub use lifecycle::LifecycleState;
pub use oracle::ValueOracle;
pub use partition::{fnv1a, Partition};
