//! Lifecycle schedules: who arrives and departs, and when.
//!
//! Departures come from the *existing* fault machinery —
//! [`fedval_testbed::faults::FaultPlan`] authority-departure events map
//! one-to-one onto [`LifeEvent::Depart`] — so a formation run can share
//! its churn with an availability/fault experiment. Arrivals are seeded
//! locally (the fault plan models exits, not entries).

use fedval_coalition::derive_seed;
use fedval_desim::SimRng;
use fedval_testbed::faults::{Fault, FaultPlan};

/// Arrival-stream selector mixed into the master seed.
const ARRIVAL_STREAM: u64 = 0xA22A_1BBE;

/// One authority lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifeEvent {
    /// The authority arrives (Candidate → Member at the event time).
    Arrive(usize),
    /// The authority announces departure (Member → Departing; retired at
    /// the next round boundary).
    Depart(usize),
}

/// A deterministic arrival/departure schedule for `n` authorities.
#[derive(Debug, Clone, Default)]
pub struct ChurnSchedule {
    events: Vec<(f64, LifeEvent)>,
}

impl ChurnSchedule {
    /// The empty schedule.
    pub fn new() -> ChurnSchedule {
        ChurnSchedule::default()
    }

    /// `(time, event)` pairs in insertion order. (The simulator orders by
    /// time with insertion-order tie-breaks, so this order is part of the
    /// deterministic contract.)
    pub fn events(&self) -> &[(f64, LifeEvent)] {
        &self.events
    }

    /// Appends an arrival.
    pub fn arrive(mut self, authority: usize, at: f64) -> ChurnSchedule {
        self.events.push((at, LifeEvent::Arrive(authority)));
        self
    }

    /// Appends a departure announcement.
    pub fn depart(mut self, authority: usize, at: f64) -> ChurnSchedule {
        self.events.push((at, LifeEvent::Depart(authority)));
        self
    }

    /// Every authority present from the start, nobody leaves — the static
    /// federation the paper prices.
    pub fn all_at_start(n: usize) -> ChurnSchedule {
        let mut s = ChurnSchedule::new();
        for a in 0..n {
            s = s.arrive(a, 0.0);
        }
        s
    }

    /// Folds a fault plan's authority departures into this schedule.
    /// Other fault kinds (node crashes, site outages, credential outages)
    /// do not change federation *membership* and are ignored here.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> ChurnSchedule {
        for fault in plan.events() {
            if let Fault::AuthorityDeparture { authority, at } = *fault {
                self.events.push((at, LifeEvent::Depart(authority)));
            }
        }
        self
    }

    /// The standard seeded churn workload: `initial` authorities (in index
    /// order) are present at t=0, the rest arrive at seeded uniform times
    /// in the first 60% of `horizon`, and `departures` seeded authority
    /// departures (drawn by [`FaultPlan::sampled_departures`]) land in the
    /// last 70%. A pure function of the arguments.
    pub fn seeded(
        n: usize,
        seed: u64,
        horizon: f64,
        initial: usize,
        departures: usize,
    ) -> ChurnSchedule {
        let mut s = ChurnSchedule::new();
        let initial = initial.clamp(usize::from(n > 0), n);
        for a in 0..initial {
            s = s.arrive(a, 0.0);
        }
        let mut rng = SimRng::seed_from(derive_seed(seed, ARRIVAL_STREAM));
        for a in initial..n {
            s = s.arrive(a, rng.uniform01() * horizon * 0.6);
        }
        let plan =
            FaultPlan::new().sampled_departures(derive_seed(seed, 1), n, horizon, departures);
        s.with_fault_plan(&plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedule_is_deterministic() {
        let a = ChurnSchedule::seeded(32, 9, 100.0, 16, 4);
        let b = ChurnSchedule::seeded(32, 9, 100.0, 16, 4);
        assert_eq!(a.events(), b.events());
        let c = ChurnSchedule::seeded(32, 10, 100.0, 16, 4);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn seeded_counts_add_up() {
        let s = ChurnSchedule::seeded(20, 3, 50.0, 8, 5);
        let arrivals = s
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, LifeEvent::Arrive(_)))
            .count();
        let departs = s
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, LifeEvent::Depart(_)))
            .count();
        assert_eq!(arrivals, 20);
        assert_eq!(departs, 5);
    }

    #[test]
    fn fault_plan_departures_map_through() {
        let plan = FaultPlan::new()
            .authority_departure(3, 12.5)
            .node_crash(0, 1.0, None);
        let s = ChurnSchedule::all_at_start(4).with_fault_plan(&plan);
        assert!(s
            .events()
            .iter()
            .any(|&(t, e)| t == 12.5 && e == LifeEvent::Depart(3)));
    }
}
