//! `fedform` — dynamic coalition formation under churn.
//!
//! Runs the seeded hedonic merge/split engine over a synthetic
//! federation and prints the deterministic trajectory, stability
//! verdict, and promised-vs-realized payoff table. All stdout is a pure
//! function of the flags (no wall-clock, no thread-count artifacts), so
//! two runs — at any `--threads` — diff clean; CI relies on that.

use fedval_coalition::ApproxConfig;
use fedval_form::{ChurnSchedule, FormationConfig, FormationEngine, FormationGame};
use fedval_obs::{FileSink, RecordingSink, RunReport, Sink, TeeSink};
use fedval_policy::try_policy_report;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    n: usize,
    scenario_seed: u64,
    seed: u64,
    rounds: usize,
    round_dt: f64,
    pair_budget: usize,
    split_budget: usize,
    neutral_budget: usize,
    initial: Option<usize>,
    departures: Option<usize>,
    threads: usize,
    approx_samples: usize,
    report: bool,
    trace: Option<String>,
    metrics: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            n: 16,
            scenario_seed: 42,
            seed: 42,
            rounds: 32,
            round_dt: 10.0,
            pair_budget: 128,
            split_budget: 2,
            neutral_budget: 32,
            initial: None,
            departures: None,
            threads: default_threads(),
            approx_samples: 64,
            report: false,
            trace: None,
            metrics: false,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

const USAGE: &str = "usage: fedform [options]
  --synthetic N[:SEED]  federation width and generator seed (default 16:42)
  --seed S              merge/split rule seed (default 42)
  --rounds R            round cap (default 32)
  --round-dt T          simulated time between rounds (default 10)
  --pair-budget K       merge pairs examined per round (default 128)
  --split-budget K      bipartitions sampled per block per round (default 2)
  --neutral-budget K    zero-gain plateau merges per round (default 32; 0 = strict only)
  --initial K           authorities present at t=0 (default n/2)
  --departures K        seeded departures over the run (default n/16)
  --threads N           value-evaluation workers (default: all cores; output invariant)
  --approx-samples M    sampled-Shapley budget for payoffs past the exact cap (default 64)
  --report              append the policy report (sampled path) with its formation section
  --trace PATH          write an observability trace (JSONL)
  --metrics             print the run's metrics snapshot to stderr
  --help                this text";

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" => return Err(USAGE.to_string()),
            "--report" => {
                opts.report = true;
                continue;
            }
            "--metrics" => {
                opts.metrics = true;
                continue;
            }
            _ => {}
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
        match arg.as_str() {
            "--synthetic" => {
                let (n, seed) = match value.split_once(':') {
                    Some((n, s)) => (
                        n.parse().map_err(|_| format!("bad --synthetic N: {n}"))?,
                        s.parse().map_err(|_| format!("bad --synthetic SEED: {s}"))?,
                    ),
                    None => (
                        value
                            .parse()
                            .map_err(|_| format!("bad --synthetic N: {value}"))?,
                        42,
                    ),
                };
                if n == 0 {
                    return Err("--synthetic N must be at least 1".to_string());
                }
                opts.n = n;
                opts.scenario_seed = seed;
            }
            "--seed" => opts.seed = value.parse().map_err(|_| format!("bad --seed: {value}"))?,
            "--rounds" => {
                opts.rounds = value.parse().map_err(|_| format!("bad --rounds: {value}"))?;
            }
            "--round-dt" => {
                opts.round_dt = value
                    .parse()
                    .map_err(|_| format!("bad --round-dt: {value}"))?;
            }
            "--pair-budget" => {
                opts.pair_budget = value
                    .parse()
                    .map_err(|_| format!("bad --pair-budget: {value}"))?;
            }
            "--split-budget" => {
                opts.split_budget = value
                    .parse()
                    .map_err(|_| format!("bad --split-budget: {value}"))?;
            }
            "--neutral-budget" => {
                opts.neutral_budget = value
                    .parse()
                    .map_err(|_| format!("bad --neutral-budget: {value}"))?;
            }
            "--initial" => {
                opts.initial = Some(value.parse().map_err(|_| format!("bad --initial: {value}"))?);
            }
            "--departures" => {
                opts.departures = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --departures: {value}"))?,
                );
            }
            "--threads" => {
                let t: usize = value.parse().map_err(|_| format!("bad --threads: {value}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = t;
            }
            "--approx-samples" => {
                opts.approx_samples = value
                    .parse()
                    .map_err(|_| format!("bad --approx-samples: {value}"))?;
            }
            "--trace" => opts.trace = Some(value.clone()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Wires `--trace`/`--metrics` sinks, mirroring the `fedval` CLI.
fn install_observability(opts: &Options) -> Result<Option<RecordingSink>, String> {
    let recording = opts.metrics.then(RecordingSink::new);
    let file = match &opts.trace {
        Some(path) => Some(FileSink::create(path).map_err(|e| format!("--trace {path}: {e}"))?),
        None => None,
    };
    let sink: Option<Arc<dyn Sink>> = match (file, recording.clone()) {
        (Some(f), Some(r)) => Some(Arc::new(TeeSink::new(f, r))),
        (Some(f), None) => Some(Arc::new(f)),
        (None, Some(r)) => Some(Arc::new(r)),
        (None, None) => None,
    };
    if let Some(sink) = sink {
        fedval_obs::install(sink);
    }
    Ok(recording)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args)?;
    let recording = install_observability(&opts)?;

    let n = opts.n;
    let initial = opts.initial.unwrap_or(n.div_ceil(2)).min(n);
    let departures = opts.departures.unwrap_or(n / 16);
    let horizon = opts.rounds as f64 * opts.round_dt;
    let game = FormationGame::synthetic(n, opts.scenario_seed);
    let schedule = ChurnSchedule::seeded(n, opts.seed, horizon, initial, departures);
    let cfg = FormationConfig {
        seed: opts.seed,
        max_rounds: opts.rounds,
        round_dt: opts.round_dt,
        pair_budget: opts.pair_budget,
        split_budget: opts.split_budget,
        neutral_budget: opts.neutral_budget,
        threads: opts.threads,
        approx: ApproxConfig {
            samples: opts.approx_samples.max(1),
            ..ApproxConfig::default()
        },
        ..FormationConfig::default()
    };

    println!(
        "fedform: n={n} scenario-seed={} seed={} rounds<={} round-dt={} pair-budget={} \
split-budget={} neutral-budget={} initial={initial} departures={departures}",
        opts.scenario_seed,
        opts.seed,
        opts.rounds,
        opts.round_dt,
        opts.pair_budget,
        opts.split_budget,
        opts.neutral_budget,
    );
    let engine = FormationEngine::new(&game, cfg);
    let outcome = engine.run(&schedule);
    print!("{}", outcome.render());

    if opts.report {
        // Force the enumeration-free report path: formation targets
        // federations where 2^n tables (and the nucleolus LP) are off
        // the table, and the exact n=12 nucleolus alone takes minutes.
        let scenario = fedval_testbed::synthetic_scenario(n, opts.scenario_seed)
            .with_threads(opts.threads)
            .with_approx(ApproxConfig {
                samples: opts.approx_samples.max(1),
                force: true,
                ..ApproxConfig::default()
            });
        let report = try_policy_report(&scenario)
            .map_err(|e| format!("fedform: policy report unavailable: {e}"))?
            .with_formation(outcome.policy_section());
        print!("{}", report.render());
    }

    if opts.metrics {
        let (hits, misses) = engine.cache_stats();
        eprintln!("fedform: value cache hits={hits} misses={misses}");
    }
    let fold = (opts.trace.is_some() || opts.metrics).then(fedval_obs::metrics_fold);
    if fold.is_some() {
        fedval_obs::shutdown();
    }
    if let (Some(recording), Some(fold)) = (recording, fold) {
        eprint!(
            "{}",
            RunReport::from_parts(&fold, &recording.records()).render()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
