//! Memoizing coalition-value oracle with deterministic parallel batches.
//!
//! Merge/split rounds ask for many coalition values at once. The oracle
//! wraps any [`WideGame`] with a `BTreeMap` memo (keyed by the sorted
//! member list) behind an [`OrderedMutex`], and evaluates batches across
//! worker threads with the PR 4 fold discipline: each query owns a
//! disjoint output slot indexed by its input position, so the returned
//! vector — and every decision made from it — is a pure function of the
//! queries, independent of thread count and scheduling. Cache hit/miss
//! *counters* are scheduling-dependent (two threads may race to the same
//! miss) and are therefore only ever reported through observability,
//! never folded into deterministic output.

use fedval_coalition::{PlayerId, WideGame};
use fedval_obs::lockorder::OrderedMutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe memoizing view of a [`WideGame`].
pub struct ValueOracle<'g, G: WideGame + ?Sized> {
    game: &'g G,
    cache: OrderedMutex<BTreeMap<Vec<PlayerId>, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'g, G: WideGame + ?Sized> ValueOracle<'g, G> {
    /// Wraps `game` with an empty memo.
    pub fn new(game: &'g G) -> ValueOracle<'g, G> {
        ValueOracle {
            game,
            cache: OrderedMutex::new("form.value_cache", BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped game.
    pub fn game(&self) -> &'g G {
        self.game
    }

    /// Number of players in the wrapped game.
    pub fn n_players(&self) -> usize {
        self.game.n_players()
    }

    /// `V(S)` for the sorted member list `members`, memoized.
    pub fn value(&self, members: &[PlayerId]) -> f64 {
        if let Some(&v) = self.cache.lock().get(members) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            fedval_obs::counter_add("form.value.hit", 1);
            return v;
        }
        // Evaluate outside the lock: the characteristic function is pure,
        // so a racing duplicate evaluation returns the identical f64.
        let v = self.game.value_members(members);
        self.misses.fetch_add(1, Ordering::Relaxed);
        fedval_obs::counter_add("form.value.miss", 1);
        self.cache.lock().insert(members.to_vec(), v);
        v
    }

    /// Evaluates every query, returning values in **input order** — the
    /// deterministic contract. Work is chunked across up to `threads`
    /// workers writing disjoint slots; a worker panic (characteristic
    /// function blew up) is propagated, not masked.
    pub fn eval_batch(&self, queries: &[Vec<PlayerId>], threads: usize) -> Vec<f64> {
        let mut out = vec![0.0_f64; queries.len()];
        if queries.is_empty() {
            return out;
        }
        let workers = threads.clamp(1, queries.len());
        if workers == 1 {
            for (slot, q) in out.iter_mut().zip(queries) {
                *slot = self.value(q);
            }
            return out;
        }
        let per = queries.len().div_ceil(workers);
        let outcome = crossbeam::thread::scope(|scope| {
            for (slots, qs) in out.chunks_mut(per).zip(queries.chunks(per)) {
                scope.spawn(move |_| {
                    for (slot, q) in slots.iter_mut().zip(qs) {
                        *slot = self.value(q);
                    }
                });
            }
        });
        if let Err(payload) = outcome {
            std::panic::resume_unwind(payload);
        }
        out
    }

    /// `(hits, misses)` so far. Scheduling-dependent under parallel
    /// batches — reporting only, never part of deterministic output.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SquareGame {
        n: usize,
    }

    impl WideGame for SquareGame {
        fn n_players(&self) -> usize {
            self.n
        }
        fn value_members(&self, members: &[PlayerId]) -> f64 {
            let s = members.len() as f64;
            s * s
        }
    }

    #[test]
    fn memoizes_repeat_queries() {
        let game = SquareGame { n: 8 };
        let oracle = ValueOracle::new(&game);
        assert_eq!(oracle.value(&[0, 1, 2]), 9.0);
        assert_eq!(oracle.value(&[0, 1, 2]), 9.0);
        let (hits, misses) = oracle.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn batches_are_input_ordered_at_any_thread_count() {
        let game = SquareGame { n: 16 };
        let queries: Vec<Vec<PlayerId>> = (0..40).map(|k| (0..(k % 7)).collect()).collect();
        let seq = ValueOracle::new(&game).eval_batch(&queries, 1);
        for threads in [2, 3, 8] {
            let par = ValueOracle::new(&game).eval_batch(&queries, threads);
            assert_eq!(seq, par);
        }
    }
}
