//! User utility functions (§2.3.1 of the paper).
//!
//! The paper's utility (eq. 1) is a *threshold-power* function of the
//! number of distinct locations `x` assigned to an experiment:
//!
//! ```text
//! u(x) = x^d   if x > l      (zero below the diversity threshold l)
//!        0     otherwise
//! ```
//!
//! `d < 1` is concave (diminishing returns), `d = 1` linear, `d > 1`
//! convex. The threshold is **strict** (`x > l`, as printed in eq. 1):
//! this is the convention that exactly reproduces the paper's §4.1 worked
//! example (ϕ̂₂ = 2/13 requires `V({1,2}) = 0` at `l = 500` with
//! `L₁+L₂ = 500`). See EXPERIMENTS.md for the full derivation.

use serde::{Deserialize, Serialize};

/// A utility function over the number of distinct locations assigned.
pub trait Utility {
    /// Utility of being assigned `x` distinct locations.
    fn eval(&self, x: f64) -> f64;

    /// The diversity threshold below (or at) which utility is zero;
    /// `0.0` for threshold-free utilities.
    fn threshold(&self) -> f64 {
        0.0
    }
}

/// The paper's eq. (1): `u(x) = x^d · 1{x > l}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPower {
    /// Diversity threshold `l` (strict: utility is zero unless `x > l`).
    pub threshold: f64,
    /// Shape exponent `d` (see Fig. 2: 0.8 concave, 1 linear, 1.2 convex).
    pub shape: f64,
}

impl ThresholdPower {
    /// Creates `u(x) = x^d · 1{x > l}`.
    ///
    /// # Panics
    /// Panics if `l < 0` or `d ≤ 0` or either is non-finite.
    pub fn new(threshold: f64, shape: f64) -> ThresholdPower {
        assert!(threshold.is_finite() && threshold >= 0.0);
        assert!(shape.is_finite() && shape > 0.0);
        ThresholdPower { threshold, shape }
    }

    /// Linear utility with a threshold: `u(x) = x · 1{x > l}`.
    pub fn linear(threshold: f64) -> ThresholdPower {
        ThresholdPower::new(threshold, 1.0)
    }

    /// The smallest *integer* number of locations with positive utility:
    /// `min { x ∈ ℕ : x > l }`.
    pub fn min_admissible(&self) -> u64 {
        (self.threshold.floor() as u64) + 1
    }
}

impl Utility for ThresholdPower {
    fn eval(&self, x: f64) -> f64 {
        if x > self.threshold {
            x.powf(self.shape)
        } else {
            0.0
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_strict() {
        let u = ThresholdPower::linear(50.0);
        assert_eq!(u.eval(50.0), 0.0);
        assert_eq!(u.eval(50.5), 50.5);
        assert_eq!(u.eval(49.0), 0.0);
    }

    #[test]
    fn fig2_shapes() {
        // Fig. 2: l = 50, d ∈ {0.8, 1, 1.2}; at x = 300 the curves order
        // convex > linear > concave, all zero at/below 50.
        let concave = ThresholdPower::new(50.0, 0.8);
        let linear = ThresholdPower::new(50.0, 1.0);
        let convex = ThresholdPower::new(50.0, 1.2);
        for u in [&concave, &linear, &convex] {
            assert_eq!(u.eval(50.0), 0.0);
            assert!(u.eval(51.0) > 0.0);
        }
        assert!(convex.eval(300.0) > linear.eval(300.0));
        assert!(linear.eval(300.0) > concave.eval(300.0));
        assert!((linear.eval(300.0) - 300.0).abs() < 1e-12);
    }

    #[test]
    fn min_admissible_integer_sizes() {
        assert_eq!(ThresholdPower::linear(0.0).min_admissible(), 1);
        assert_eq!(ThresholdPower::linear(50.0).min_admissible(), 51);
        assert_eq!(ThresholdPower::linear(50.5).min_admissible(), 51);
        assert_eq!(ThresholdPower::linear(499.999).min_admissible(), 500);
        assert_eq!(ThresholdPower::linear(500.0).min_admissible(), 501);
    }

    #[test]
    fn monotone_above_threshold() {
        let u = ThresholdPower::new(10.0, 0.8);
        let mut prev = 0.0;
        for x in 11..100 {
            let v = u.eval(x as f64);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_shape() {
        let _ = ThresholdPower::new(1.0, 0.0);
    }
}
