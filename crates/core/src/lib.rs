#![deny(missing_docs)]

//! Economic model of federated virtualized infrastructures — the primary
//! contribution of *"Federation of virtualized infrastructures: sharing
//! the value of diversity"* (ACM CoNEXT 2010).
//!
//! The model (paper §2–§3):
//!
//! * **Facilities** ([`Facility`]) contribute resources at distinct
//!   **locations** — `Lᵢ` locations with capacity `R_{il}` each; overlap
//!   sums capacity.
//! * **Experiments** ([`ExperimentClass`]) demand `l` distinct locations
//!   (the *diversity* requirement), `r` resources per location, holding
//!   time `t`, and value their assignment through the threshold-power
//!   utility `u(x) = x^d·1{x > l}` ([`ThresholdPower`], eq. 1).
//! * **Allocation** ([`allocation`]) solves eq. 2: which experiments to
//!   admit and how many locations to give each, maximizing total utility.
//! * The optimum defines the **federation game** ([`FederationGame`]),
//!   whose Shapley value (via `fedval-coalition`) is the paper's proposed
//!   sharing rule; [`sharing`] also provides the proportional (eq. 6),
//!   consumption-based (eq. 7), equal, and nucleolus alternatives.
//! * The **P2P scenario** ([`p2p_allocate`]) shares value through allocation under
//!   individual-rationality constraints (eq. 3).
//!
//! # Quickstart
//!
//! ```
//! use fedval_core::{Demand, ExperimentClass, FederationScenario, paper_facilities};
//!
//! // The paper's §4.1 example: L = (100, 400, 800), one experiment
//! // requiring more than 500 distinct locations.
//! let scenario = FederationScenario::new(
//!     paper_facilities([1, 1, 1]),
//!     Demand::one_experiment(ExperimentClass::simple("measurement", 500.0, 1.0)),
//! );
//! let shapley = scenario.shapley_shares();
//! let proportional = scenario.proportional_shares();
//! assert!((shapley[1] - 2.0 / 13.0).abs() < 1e-12);
//! assert!((proportional[1] - 4.0 / 13.0).abs() < 1e-12);
//! ```

pub mod allocation;
mod availability;
mod cost;
mod dynamics;
mod experiment;
mod facility;
mod location;
mod overlap;
mod p2p;
mod scenario;
pub mod sharing;
mod utility;
mod value;

pub use availability::{AvailabilityError, AvailabilityGame};
pub use cost::CostModel;
pub use dynamics::{DynamicClass, DynamicDemand, DynamicFederationGame, ValueMode};
pub use experiment::{Demand, DemandComponent, ExperimentClass, Volume};
pub use facility::{
    coalition_profile, paper_facilities, paper_facilities_with_locations, Facility,
};
pub use location::{CapacityProfile, LocationId, LocationOffer};
pub use overlap::{block_overlap, diversity_discount, IndependentCoverage};
pub use p2p::{p2p_allocate, P2pMode, P2pOutcome};
pub use scenario::{FederationScenario, PlayerCountMismatch};
pub use utility::{ThresholdPower, Utility};
pub use value::FederationGame;

// Re-export the game-theory engine so downstream users need one import.
pub use fedval_coalition as coalition;

// The workspace-wide float-comparison discipline (see fedval-lint's
// `float-eq` rule): tolerance helpers live in the dependency-free
// `fedval-simplex` crate and are re-exported here as the canonical path
// for the model/testbed/policy layers.
pub use fedval_simplex::approx;
pub use fedval_simplex::approx::{approx_eq, is_zero, NOISE_EPS};

// Lock-order-validated mutex wrappers (DESIGN.md §12): the canonical
// path for model-layer code that needs a named, checkable lock.
pub use fedval_obs::{lockorder, OrderedMutex, OrderedRwLock};
