//! High-level scenario façade tying the model together.

use crate::cost::CostModel;
use crate::experiment::Demand;
use crate::facility::Facility;
use crate::sharing;
use crate::value::FederationGame;
use fedval_coalition::{
    analyze, is_core_nonempty, least_core, nucleolus, shapley_auto, shapley_auto_wide, Coalition,
    CoalitionError, CoalitionalGame, GameProperties, ApproxConfig, ShapleyEstimate, TableGame,
    EXACT_SHAPLEY_MAX_PLAYERS,
};

/// A measured game's player count disagrees with the facility list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayerCountMismatch {
    /// Facilities supplied.
    pub facilities: usize,
    /// Players in the measured table.
    pub players: usize,
}

impl std::fmt::Display for PlayerCountMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "measured game has {} players for {} facilities",
            self.players, self.facilities
        )
    }
}

impl std::error::Error for PlayerCountMismatch {}

/// A complete federation scenario: facilities + demand (+ cost model),
/// with every solution concept one call away.
///
/// The coalition-value table is materialized lazily on first use and
/// reused by every subsequent query.
///
/// A scenario is intentionally *not* `Sync` (the lazy table cell is
/// single-threaded); parallel sweeps build one scenario per worker. The
/// [`with_threads`](FederationScenario::with_threads) knob instead
/// parallelizes *within* one scenario's Shapley computation — useful for
/// larger player counts where the `O(2^n)` pass dominates.
pub struct FederationScenario {
    facilities: Vec<Facility>,
    demand: Demand,
    cost: CostModel,
    threads: usize,
    approx: ApproxConfig,
    table: std::cell::OnceCell<TableGame>,
}

impl FederationScenario {
    /// Creates a scenario with the default cost model.
    pub fn new(facilities: Vec<Facility>, demand: Demand) -> FederationScenario {
        FederationScenario {
            facilities,
            demand,
            cost: CostModel::paper_default(),
            threads: 1,
            approx: ApproxConfig::default(),
            table: std::cell::OnceCell::new(),
        }
    }

    /// Overrides the cost model (builder style).
    pub fn with_cost(mut self, cost: CostModel) -> FederationScenario {
        self.cost = cost;
        self
    }

    /// Sets the worker-thread count for the Shapley computation (builder
    /// style). `1` (the default) keeps everything on the calling thread;
    /// any value yields bit-identical shares (see DESIGN.md §9).
    pub fn with_threads(mut self, threads: usize) -> FederationScenario {
        self.threads = threads.max(1);
        self
    }

    /// The configured Shapley worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the sampled-Shapley budget, seed, confidence level, and the
    /// `--approx` force flag (builder style). The thread count still comes
    /// from [`with_threads`](FederationScenario::with_threads).
    pub fn with_approx(mut self, approx: ApproxConfig) -> FederationScenario {
        self.approx = approx;
        self
    }

    /// The configured sampled-Shapley parameters.
    pub fn approx_config(&self) -> &ApproxConfig {
        &self.approx
    }

    /// Builds a scenario around an *externally measured* coalition-value
    /// table (e.g. `fedval-testbed`'s empirical game) instead of the
    /// closed-form model. The facilities still drive the proportional and
    /// consumption benchmarks; the game queries use `game` as-is.
    ///
    /// # Panics
    /// Panics where [`FederationScenario::try_from_measured`] would return
    /// an error: the table's player count differs from the facility count.
    pub fn from_measured(
        facilities: Vec<Facility>,
        demand: Demand,
        game: TableGame,
    ) -> FederationScenario {
        match FederationScenario::try_from_measured(facilities, demand, game) {
            Ok(s) => s,
            // lint: allow(no-panic-path) — documented `# Panics` convenience
            // wrapper; fallible callers use the try_ variant instead.
            Err(e) => panic!("FederationScenario::from_measured: {e}"),
        }
    }

    /// Fallible form of [`FederationScenario::from_measured`].
    ///
    /// # Errors
    /// [`PlayerCountMismatch`] when the measured table's player count differs
    /// from the facility count.
    pub fn try_from_measured(
        facilities: Vec<Facility>,
        demand: Demand,
        game: TableGame,
    ) -> Result<FederationScenario, PlayerCountMismatch> {
        if game.n_players() != facilities.len() {
            return Err(PlayerCountMismatch {
                facilities: facilities.len(),
                players: game.n_players(),
            });
        }
        let table = std::cell::OnceCell::new();
        let _ = table.set(game);
        Ok(FederationScenario {
            facilities,
            demand,
            cost: CostModel::paper_default(),
            threads: 1,
            approx: ApproxConfig::default(),
            table,
        })
    }

    /// The facilities, in player order.
    pub fn facilities(&self) -> &[Facility] {
        &self.facilities
    }

    /// The demand profile.
    pub fn demand(&self) -> &Demand {
        &self.demand
    }

    /// `V(S)` for an arbitrary member subset (ascending player ids), at
    /// any federation width — the enumeration-free
    /// [`WideGame`](fedval_coalition::WideGame) view of the scenario.
    /// This is the hook the formation engine (`fedval-form`) prices
    /// candidate coalitions through: no `2^n` table is materialized.
    pub fn value_of_members(&self, members: &[usize]) -> f64 {
        use fedval_coalition::WideGame as _;
        FederationGame::new(&self.facilities, &self.demand).value_members(members)
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The materialized coalition-value table.
    ///
    /// # Panics
    /// Panics where [`FederationScenario::try_game`] would return an error
    /// (more facilities than a dense table supports).
    pub fn game(&self) -> &TableGame {
        match self.try_game() {
            Ok(table) => table,
            // lint: allow(no-panic-path) — documented `# Panics` convenience
            // accessor for the paper's n ≤ 3 scenarios; fallible callers use
            // try_game.
            Err(e) => panic!("FederationScenario::game: {e}"),
        }
    }

    /// Fallible form of [`FederationScenario::game`]: materializes the
    /// coalition-value table on first call and caches it.
    ///
    /// # Errors
    /// [`CoalitionError::TooManyPlayers`] when the facility count exceeds
    /// [`TableGame::MAX_PLAYERS`]; the scenario stays usable (the next
    /// call retries) and the proportional/consumption benchmarks — which
    /// never enumerate coalitions — keep working.
    pub fn try_game(&self) -> Result<&TableGame, CoalitionError> {
        if let Some(table) = self.table.get() {
            return Ok(table);
        }
        let built = {
            let _span = fedval_obs::span_with("core.scenario.table_build", || {
                format!("n={}", self.facilities.len())
            });
            FederationGame::new(&self.facilities, &self.demand).try_table()?
        };
        Ok(self.table.get_or_init(|| built))
    }

    /// `V(S)` for an explicit coalition.
    pub fn value(&self, coalition: Coalition) -> f64 {
        self.game().value(coalition)
    }

    /// `V(N)` — total value to share.
    pub fn grand_value(&self) -> f64 {
        self.game().grand_value()
    }

    /// Normalized Shapley shares ϕ̂ (eq. 5).
    ///
    /// Runs on [`threads`](FederationScenario::threads) workers; the
    /// result is bit-identical for every thread count.
    pub fn shapley_shares(&self) -> Vec<f64> {
        if self.threads > 1 {
            sharing::shapley_hat_of_parallel(self.game(), self.threads)
        } else {
            sharing::shapley_hat_of(self.game())
        }
    }

    /// Shapley values through the solver-selection layer: exact below
    /// [`EXACT_SHAPLEY_MAX_PLAYERS`] facilities, the seeded sampled
    /// estimator (with its confidence-interval certificate) above it — the
    /// entry point that makes a 200-authority scenario answerable instead
    /// of a `TooManyPlayers` error.
    ///
    /// Uses the measured table when one was supplied
    /// ([`from_measured`](FederationScenario::from_measured)), the lazily
    /// cached closed-form table below the cap, and the un-materialized
    /// wide federation game above it. Sampling parameters come from
    /// [`with_approx`](FederationScenario::with_approx); results are
    /// byte-identical per seed at any thread count.
    ///
    /// # Errors
    /// [`CoalitionError::NoPlayers`] / [`CoalitionError::NoSamples`] /
    /// [`CoalitionError::BadConfidence`] for malformed inputs, and
    /// [`CoalitionError::TooManyPlayers`] past the sampled path's own
    /// sanity cap ([`fedval_coalition::MAX_SAMPLED_PLAYERS`]).
    pub fn shapley_estimate(&self) -> Result<ShapleyEstimate, CoalitionError> {
        let cfg = ApproxConfig {
            threads: self.threads,
            ..self.approx
        };
        if let Some(table) = self.table.get() {
            // Measured scenarios must answer from their table: the
            // closed-form model does not reproduce measured values.
            return shapley_auto(table, &cfg);
        }
        let n = self.facilities.len();
        if !cfg.force && n <= EXACT_SHAPLEY_MAX_PLAYERS {
            return shapley_auto(self.try_game()?, &cfg);
        }
        let game = FederationGame::new(&self.facilities, &self.demand);
        shapley_auto_wide(&game, &cfg)
    }

    /// Normalized shares from [`shapley_estimate`]
    /// (ϕ̂ᵢ = ϕᵢ / V(N), eq. 5), exact or sampled.
    ///
    /// # Errors
    /// As [`shapley_estimate`](FederationScenario::shapley_estimate).
    pub fn shapley_shares_estimated(&self) -> Result<Vec<f64>, CoalitionError> {
        match self.shapley_estimate()? {
            ShapleyEstimate::Exact(phi) => {
                // The exact path always has a table (it just used it).
                let grand = self.try_game()?.grand_value();
                if grand.abs() < 1e-12 {
                    return Ok(vec![0.0; phi.len()]);
                }
                Ok(phi.into_iter().map(|v| v / grand).collect())
            }
            ShapleyEstimate::Approx(a) => Ok(a.shares()),
        }
    }

    /// Proportional (contribution-based) shares π̂ (eq. 6).
    pub fn proportional_shares(&self) -> Vec<f64> {
        sharing::proportional_shares(&self.facilities)
    }

    /// Consumption-based shares ρ̂ (eq. 7).
    pub fn consumption_shares(&self) -> Vec<f64> {
        sharing::consumption_shares(&self.facilities, &self.demand)
    }

    /// Nucleolus shares (allocation / V(N)).
    pub fn nucleolus_shares(&self) -> Vec<f64> {
        let grand = self.grand_value();
        if grand.abs() < 1e-12 {
            return vec![0.0; self.facilities.len()];
        }
        nucleolus(self.game())
            .into_iter()
            .map(|v| v / grand)
            .collect()
    }

    /// Structural properties of the induced game (superadditivity,
    /// convexity, …) — §3.2.1's core-existence diagnostics.
    pub fn properties(&self) -> GameProperties {
        analyze(self.game(), 1e-7)
    }

    /// Whether the core is non-empty.
    pub fn core_nonempty(&self) -> bool {
        is_core_nonempty(self.game())
    }

    /// Least-core relaxation ε\* and one least-core allocation.
    pub fn least_core(&self) -> fedval_coalition::LeastCore {
        least_core(self.game())
    }

    /// Monetary payoff vector for a normalized share vector.
    pub fn payoffs(&self, shares: &[f64]) -> Vec<f64> {
        let v = self.grand_value();
        shares.iter().map(|s| s * v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentClass;
    use crate::facility::paper_facilities;

    fn worked_example() -> FederationScenario {
        FederationScenario::new(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0)),
        )
    }

    #[test]
    fn scenario_round_trip() {
        let s = worked_example();
        assert_eq!(s.grand_value(), 1300.0);
        let phi = s.shapley_shares();
        assert!((phi[1] - 2.0 / 13.0).abs() < 1e-12);
        let pi = s.proportional_shares();
        assert!((pi[1] - 4.0 / 13.0).abs() < 1e-12);
        let payoffs = s.payoffs(&phi);
        assert!((payoffs.iter().sum::<f64>() - 1300.0).abs() < 1e-9);
    }

    #[test]
    fn properties_of_worked_example() {
        let s = worked_example();
        let p = s.properties();
        assert!(p.superadditive);
        assert!(p.monotone);
        assert!(p.essential);
    }

    #[test]
    fn measured_scenarios_use_the_supplied_table() {
        let closed_form = worked_example();
        let table = closed_form.game().clone();
        let measured = FederationScenario::from_measured(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0)),
            table,
        );
        assert_eq!(measured.grand_value(), 1300.0);
        assert_eq!(measured.shapley_shares(), closed_form.shapley_shares());
        // Mismatched player counts are rejected, not ground through.
        let bad = FederationScenario::try_from_measured(
            paper_facilities([1, 1, 1]),
            Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0)),
            TableGame::from_fn(2, |_| 0.0),
        );
        assert_eq!(
            bad.err(),
            Some(PlayerCountMismatch {
                facilities: 3,
                players: 2
            })
        );
    }

    #[test]
    fn table_is_cached() {
        let s = worked_example();
        let a = s.game() as *const _;
        let b = s.game() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn threads_do_not_change_shares() {
        let sequential = worked_example().shapley_shares();
        for t in [2, 4, 8] {
            let parallel = worked_example().with_threads(t).shapley_shares();
            assert_eq!(sequential, parallel, "t={t} must be bit-identical");
        }
        // threads=0 is clamped to 1, not a panic.
        assert_eq!(worked_example().with_threads(0).threads(), 1);
    }

    #[test]
    fn shapley_estimate_selects_exact_on_small_scenarios() {
        let s = worked_example();
        match s.shapley_estimate().expect("worked example must solve") {
            ShapleyEstimate::Exact(phi) => {
                assert!((phi.iter().sum::<f64>() - 1300.0).abs() < 1e-9);
            }
            ShapleyEstimate::Approx(_) => panic!("n=3 must select exact"),
        }
        let shares = s.shapley_shares_estimated().expect("shares");
        assert_eq!(shares, s.shapley_shares());
    }

    #[test]
    fn shapley_estimate_samples_past_the_exact_cap() {
        use crate::facility::Facility;
        // 40 facilities: exact enumeration (2^40) is out of reach, the
        // estimator must answer with a certificate instead of erroring.
        let facilities: Vec<Facility> = (0..40u32)
            .map(|i| Facility::uniform(format!("f{i}"), 16 * i, 4 + (i % 5), 1))
            .collect();
        let s = FederationScenario::new(
            facilities,
            Demand::one_experiment(ExperimentClass::simple("e", 50.0, 1.0)),
        )
        .with_approx(ApproxConfig {
            samples: 64,
            seed: 7,
            ..ApproxConfig::default()
        })
        .with_threads(4);
        let est = s.shapley_estimate().expect("sampled path must answer");
        let approx = est.as_approx().expect("n=40 must sample");
        assert_eq!(approx.phi.len(), 40);
        assert_eq!(approx.samples, 64);
        assert!(approx.grand_value > 0.0);
        // Efficiency after normalization.
        let total: f64 = approx.shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        // Deterministic across repeat calls and thread counts.
        let again = s.shapley_estimate().expect("repeat");
        assert_eq!(est, again);
    }

    #[test]
    fn try_game_rejects_oversized_federations() {
        use crate::facility::Facility;
        let facilities: Vec<Facility> = (0..26)
            .map(|i| Facility::uniform(format!("f{i}"), i, 1, 1))
            .collect();
        let s = FederationScenario::new(
            facilities,
            Demand::one_experiment(ExperimentClass::simple("e", 1.0, 1.0)),
        );
        let err = s.try_game().expect_err("26 facilities must not materialize");
        assert!(matches!(err, CoalitionError::TooManyPlayers { n: 26, .. }));
        // Non-enumerating benchmarks keep working on the same scenario.
        let pi = s.proportional_shares();
        assert_eq!(pi.len(), 26);
    }
}
