//! Resource providers — the paper's *facilities* (§2.1).

use crate::location::{CapacityProfile, LocationId, LocationOffer};
use serde::{Deserialize, Serialize};

/// A facility (resource provider): a testbed authority such as PlanetLab
/// Central, PlanetLab Europe, or PlanetLab Japan.
///
/// The model characterizes a facility by the locations it covers and the
/// capacity it provides at each (`R_{il}`), its availability `Tᵢ ∈ (0, 1]`
/// (the paper's analysis fixes `Tᵢ = 1`), and its affiliated users `Uᵢ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Facility {
    /// Human-readable name (e.g. "PLE").
    pub name: String,
    /// Locations covered and capacity at each.
    pub offer: LocationOffer,
    /// Fraction of time the resources are available (`Tᵢ`).
    pub availability: f64,
    /// Number of affiliated users (`Uᵢ`); relevant in the P2P scenario.
    pub users: u64,
}

impl Facility {
    /// Creates a facility with full availability and no affiliated users.
    pub fn new(name: impl Into<String>, offer: LocationOffer) -> Facility {
        Facility {
            name: name.into(),
            offer,
            availability: 1.0,
            users: 0,
        }
    }

    /// Convenience constructor for the paper's uniform setups: `n_locations`
    /// contiguous locations starting at `first_location`, capacity `r` each.
    pub fn uniform(
        name: impl Into<String>,
        first_location: LocationId,
        n_locations: u32,
        r: u64,
    ) -> Facility {
        Facility::new(
            name,
            LocationOffer::contiguous(first_location, n_locations, r),
        )
    }

    /// Sets availability `Tᵢ` (builder style).
    ///
    /// # Panics
    /// Panics unless `0 < availability ≤ 1`.
    pub fn with_availability(mut self, availability: f64) -> Facility {
        assert!(availability > 0.0 && availability <= 1.0);
        self.availability = availability;
        self
    }

    /// Sets the affiliated-user count `Uᵢ` (builder style).
    pub fn with_users(mut self, users: u64) -> Facility {
        self.users = users;
        self
    }

    /// The paper's diversity contribution `Lᵢ = |Lᵢ|`.
    pub fn n_locations(&self) -> usize {
        self.offer.n_locations()
    }

    /// Total slots contributed (`Lᵢ·Rᵢ` in the uniform case).
    pub fn total_slots(&self) -> u64 {
        self.offer.total_slots()
    }

    /// This facility's stand-alone capacity profile.
    pub fn profile(&self) -> CapacityProfile {
        CapacityProfile::from_offer(&self.offer)
    }
}

/// Builds the joint capacity profile of a set of facilities, summing
/// capacity at overlapping locations.
pub fn coalition_profile<'a, I: IntoIterator<Item = &'a Facility>>(
    facilities: I,
) -> CapacityProfile {
    let merged = LocationOffer::merge(facilities.into_iter().map(|f| &f.offer));
    CapacityProfile::from_offer(&merged)
}

/// The three-facility configuration used throughout the paper's numerical
/// analysis (§4): `L = (100, 400, 800)` disjoint locations with uniform
/// per-location capacities `r = (r₁, r₂, r₃)`.
pub fn paper_facilities(r: [u64; 3]) -> Vec<Facility> {
    paper_facilities_with_locations([100, 400, 800], r)
}

/// Like [`paper_facilities`] but with custom location counts.
pub fn paper_facilities_with_locations(l: [u32; 3], r: [u64; 3]) -> Vec<Facility> {
    let names = ["facility-1", "facility-2", "facility-3"];
    let mut start: LocationId = 0;
    names
        .iter()
        .zip(l)
        .zip(r)
        .map(|((name, li), ri)| {
            let f = Facility::uniform(*name, start, li, ri);
            start += li;
            f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_dimensions() {
        let fs = paper_facilities([1, 1, 1]);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].n_locations(), 100);
        assert_eq!(fs[1].n_locations(), 400);
        assert_eq!(fs[2].n_locations(), 800);
        let profile = coalition_profile(&fs);
        assert_eq!(profile.n_locations(), 1300);
        assert_eq!(profile.total_slots(), 1300);
    }

    #[test]
    fn fig6_setup_has_equal_products() {
        // Fig. 6: R = (80, 20, 10) ⇒ Lᵢ·Rᵢ = 8000 for every facility.
        let fs = paper_facilities([80, 20, 10]);
        for f in &fs {
            assert_eq!(f.total_slots(), 8000);
        }
    }

    #[test]
    fn coalition_profile_merges_disjoint_sets() {
        let fs = paper_facilities([80, 20, 10]);
        let p12 = coalition_profile([&fs[0], &fs[1]]);
        assert_eq!(p12.groups(), &[(20, 400), (80, 100)]);
        assert_eq!(p12.usable_slots(40), 100 * 40 + 400 * 20);
    }

    #[test]
    fn overlapping_facilities_add_capacity() {
        let a = Facility::uniform("a", 0, 10, 2);
        let b = Facility::uniform("b", 5, 10, 3); // 5 shared locations
        let p = coalition_profile([&a, &b]);
        assert_eq!(p.n_locations(), 15);
        assert_eq!(p.total_slots(), 20 + 30);
        assert_eq!(p.max_capacity(), 5);
    }

    #[test]
    fn builder_setters() {
        let f = Facility::uniform("x", 0, 2, 1)
            .with_availability(0.5)
            .with_users(42);
        assert_eq!(f.availability, 0.5);
        assert_eq!(f.users, 42);
    }

    #[test]
    #[should_panic]
    fn availability_must_be_positive() {
        let _ = Facility::uniform("x", 0, 1, 1).with_availability(0.0);
    }
}
