//! The P2P scenario (eq. 3): value is shared through resource allocation
//! to the facilities' own users, under individual-rationality constraints.
//!
//! Unlike the commercial scenario — maximize total utility, then split the
//! profit by a side payment — the P2P scenario has no money: each facility
//! `i` receives locations `xᵢ` for its affiliated experiments, and the
//! allocation itself must leave every facility at least as well off as
//! standing alone (`ufᵢ(xᵢ) ≥ ufᵢ(Lᵢ)`, the second constraint of eq. 3).
//!
//! We implement the two-level scheme the formulation implies:
//!
//! 1. **Pooled optimum**: solve eq. 2 over the union profile, with each
//!    facility's demand as separate classes, and read off per-facility
//!    utility.
//! 2. If a facility lands below its stand-alone utility, fall back to the
//!    **protected** allocation: every facility first serves its own demand
//!    on its own infrastructure (stand-alone optimum — IR holds by
//!    construction), then facilities' residual unserved demand is optimized
//!    over the residual pooled capacity and added on top.
//!
//! The paper notes incentive compatibility "might force a coalition to a
//! suboptimal solution in terms of total utility" — the `protected` mode is
//! precisely that suboptimal-but-stable outcome, and
//! [`P2pOutcome::efficiency_loss`] quantifies the gap.

use crate::allocation::{realize_assignment, solve, SolveError};
use crate::experiment::{Demand, DemandComponent};
use crate::facility::{coalition_profile, Facility};
use crate::location::{CapacityProfile, LocationOffer};

/// Which allocation mode produced the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P2pMode {
    /// The unconstrained pooled optimum already satisfied every facility's
    /// individual-rationality constraint.
    Pooled,
    /// Own-infrastructure-first fallback was needed.
    Protected,
}

/// Result of the P2P-scenario allocation.
#[derive(Debug, Clone)]
pub struct P2pOutcome {
    /// Utility delivered to each facility's users.
    pub utility: Vec<f64>,
    /// Stand-alone utility of each facility (the IR floor).
    pub standalone: Vec<f64>,
    /// Mode used.
    pub mode: P2pMode,
    /// Total utility of the unconstrained pooled optimum, for comparison.
    pub pooled_total: f64,
}

impl P2pOutcome {
    /// Total utility delivered.
    pub fn total(&self) -> f64 {
        self.utility.iter().sum()
    }

    /// Fraction of the pooled optimum lost to the IR constraints
    /// (0 when the pooled optimum was itself incentive-compatible).
    pub fn efficiency_loss(&self) -> f64 {
        if self.pooled_total <= 0.0 {
            0.0
        } else {
            1.0 - self.total() / self.pooled_total
        }
    }

    /// Whether every facility meets its IR floor (should always hold).
    pub fn individually_rational(&self, tol: f64) -> bool {
        self.utility
            .iter()
            .zip(&self.standalone)
            .all(|(&u, &s)| u >= s - tol)
    }

    /// The induced sharing vector `sᵢ = ufᵢ(xᵢ*) / Σⱼ ufⱼ(xⱼ*)` (eq. 3's
    /// value-sharing interpretation).
    pub fn shares(&self) -> Vec<f64> {
        crate::sharing::normalized(self.utility.clone())
    }
}

/// Runs the P2P allocation for facilities with per-facility demand.
///
/// `demands[i]` is the demand of facility `i`'s affiliated users. All
/// classes across facilities must share the same utility shape and
/// resources-per-location (the analytic optimizer's requirements).
///
/// # Errors
/// Propagates the first [`SolveError`] from any per-facility or pooled
/// allocation solve (unsupported demand mixes, oversized scans).
pub fn p2p_allocate(facilities: &[Facility], demands: &[Demand]) -> Result<P2pOutcome, SolveError> {
    assert_eq!(facilities.len(), demands.len());
    let n = facilities.len();

    // Stand-alone utilities (IR floors).
    let mut standalone = Vec::with_capacity(n);
    for (f, d) in facilities.iter().zip(demands) {
        standalone.push(solve(&f.profile(), d)?.total_utility);
    }

    // Pooled optimum: all demand classes on the union profile, tagged by
    // facility.
    let mut tagged_components: Vec<(usize, DemandComponent)> = Vec::new();
    for (i, d) in demands.iter().enumerate() {
        for c in &d.components {
            tagged_components.push((i, c.clone()));
        }
    }
    let pooled_demand = Demand {
        components: tagged_components.iter().map(|(_, c)| c.clone()).collect(),
    };
    let union_profile = coalition_profile(facilities);
    let pooled = solve(&union_profile, &pooled_demand)?;
    let mut pooled_utility = vec![0.0; n];
    for ((facility, component), alloc) in tagged_components.iter().zip(&pooled.per_class) {
        let u: f64 = alloc
            .sizes
            .iter()
            .map(|&x| component.class.utility_of(x))
            .sum();
        pooled_utility[*facility] += u;
    }
    let pooled_total = pooled.total_utility;

    let ir_ok = pooled_utility
        .iter()
        .zip(&standalone)
        .all(|(&u, &s)| u >= s - 1e-9);
    if ir_ok {
        return Ok(P2pOutcome {
            utility: pooled_utility,
            standalone,
            mode: P2pMode::Pooled,
            pooled_total,
        });
    }

    // Protected fallback: self-serve first, then pool the residual.
    let mut residual_offer = LocationOffer::new();
    let mut utility = standalone.clone();
    let mut leftover_components: Vec<(usize, DemandComponent)> = Vec::new();
    for (i, (f, d)) in facilities.iter().zip(demands).enumerate() {
        let own = solve(&f.profile(), d)?;
        // Realize own allocation to compute residual capacity.
        let sizes: Vec<u64> = own.sizes_desc().iter().map(|&(_, s)| s).collect();
        let r = d
            .components
            .first()
            .map_or(1, |c| c.class.resources_per_location);
        let scaled = scale_offer(&f.offer, r);
        if let Some(assignment) = realize_assignment(&scaled, &sizes) {
            for ((loc, cap), &(loc2, used)) in scaled.iter().zip(&assignment.usage) {
                debug_assert_eq!(loc, loc2);
                if cap > used {
                    residual_offer.add(loc, (cap - used) * r);
                }
            }
        }
        // Unserved demand carries over to the pooled residual stage.
        for (c, alloc) in d.components.iter().zip(&own.per_class) {
            let unserved = match c.volume {
                crate::experiment::Volume::Count(k) => k.saturating_sub(alloc.admitted),
                crate::experiment::Volume::CapacityFilling => u64::MAX,
            };
            if unserved > 0 {
                let mut comp = c.clone();
                comp.volume = match c.volume {
                    crate::experiment::Volume::Count(_) => {
                        crate::experiment::Volume::Count(unserved)
                    }
                    v => v,
                };
                leftover_components.push((i, comp));
            }
        }
        let _ = i;
    }
    if !leftover_components.is_empty() {
        let residual_demand = Demand {
            components: leftover_components.iter().map(|(_, c)| c.clone()).collect(),
        };
        let residual_profile = CapacityProfile::from_offer(&residual_offer);
        if residual_profile.n_locations() > 0 {
            let extra = solve(&residual_profile, &residual_demand)?;
            for ((facility, component), alloc) in leftover_components.iter().zip(&extra.per_class) {
                let u: f64 = alloc
                    .sizes
                    .iter()
                    .map(|&x| component.class.utility_of(x))
                    .sum();
                utility[*facility] += u;
            }
        }
    }

    Ok(P2pOutcome {
        utility,
        standalone,
        mode: P2pMode::Protected,
        pooled_total,
    })
}

fn scale_offer(offer: &LocationOffer, r: u64) -> LocationOffer {
    if r == 1 {
        return offer.clone();
    }
    let mut o = LocationOffer::new();
    for (l, c) in offer.iter() {
        if c / r > 0 {
            o.add(l, c / r);
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentClass, Volume};
    use crate::facility::paper_facilities;

    #[test]
    fn pooled_mode_when_capacity_plentiful() {
        // Each location hosts up to 3 experiments (R = 3), so all three
        // facilities' experiments can span all 1300 locations at once:
        // pooling helps everyone and IR holds at the pooled optimum.
        let facilities = paper_facilities([3, 3, 3]);
        let demands = vec![
            Demand::one_experiment(ExperimentClass::simple("a", 50.0, 1.0)),
            Demand::one_experiment(ExperimentClass::simple("b", 50.0, 1.0)),
            Demand::one_experiment(ExperimentClass::simple("c", 50.0, 1.0)),
        ];
        let out = p2p_allocate(&facilities, &demands).unwrap();
        assert_eq!(out.mode, P2pMode::Pooled);
        assert!(out.individually_rational(1e-9));
        // Everybody's experiment now spans up to 1300 locations.
        for (u, s) in out.utility.iter().zip(&out.standalone) {
            assert!(u >= s);
        }
        assert!(out.efficiency_loss().abs() < 1e-9);
    }

    #[test]
    fn federation_unlocks_blocked_experiments() {
        // Facility 1's experiment needs 500 locations — impossible alone
        // (100 locations), possible in federation because facilities 2 and
        // 3 have spare per-location capacity (R = 2) after self-serving.
        let facilities = paper_facilities([1, 2, 2]);
        let demands = vec![
            Demand::one_experiment(ExperimentClass::simple("meas", 500.0, 1.0)),
            Demand::one_experiment(ExperimentClass::simple("p2p", 40.0, 1.0)),
            Demand::one_experiment(ExperimentClass::simple("p2p", 40.0, 1.0)),
        ];
        let out = p2p_allocate(&facilities, &demands).unwrap();
        assert!(out.individually_rational(1e-9));
        assert_eq!(out.standalone[0], 0.0);
        assert!(out.utility[0] > 0.0, "federation unblocked the experiment");
    }

    #[test]
    fn protected_mode_preserves_ir_under_contention() {
        // Saturated system: facility 1 (small) brings capacity-filling
        // demand with a low threshold; facility 2's users need many
        // locations. Pooled optimum may starve someone; protected never
        // drops anyone below stand-alone.
        let facilities = vec![
            crate::facility::Facility::uniform("small", 0, 10, 2),
            crate::facility::Facility::uniform("big", 10, 50, 2),
        ];
        let demands = vec![
            Demand::single(
                ExperimentClass::simple("greedy", 0.0, 1.0),
                Volume::Count(200),
            ),
            Demand::single(
                ExperimentClass::simple("modest", 0.0, 1.0),
                Volume::Count(1),
            ),
        ];
        let out = p2p_allocate(&facilities, &demands).unwrap();
        assert!(out.individually_rational(1e-9));
        assert!(out.total() > 0.0);
        assert!(out.efficiency_loss() >= -1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        let facilities = paper_facilities([1, 1, 1]);
        let demands = vec![
            Demand::one_experiment(ExperimentClass::simple("a", 0.0, 1.0)),
            Demand::one_experiment(ExperimentClass::simple("b", 0.0, 1.0)),
            Demand::one_experiment(ExperimentClass::simple("c", 0.0, 1.0)),
        ];
        let out = p2p_allocate(&facilities, &demands).unwrap();
        let s: f64 = out.shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
