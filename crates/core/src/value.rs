//! The federation game: facilities + demand → a coalitional game (§3).
//!
//! In the commercial scenario the value of a coalition `S` is the maximum
//! total user utility its pooled infrastructure can generate (eq. 2), with
//! profit `P = µ·ΣU`; since µ only rescales every sharing vector we take
//! µ = 1 as the paper does in §4.

use crate::allocation::{solve, ProfileSolution, SolveError};
use crate::experiment::Demand;
use crate::facility::{coalition_profile, Facility};
use fedval_coalition::approx::WideGame;
use fedval_coalition::{Coalition, CoalitionError, CoalitionalGame, TableGame, MAX_SAMPLED_PLAYERS};

/// The coalitional game induced by a set of facilities facing a demand
/// profile (commercial scenario).
///
/// `value(S)` runs the allocation optimizer on the coalition's merged
/// capacity profile. For repeated solution-concept computations, call
/// [`FederationGame::table`] once and use the materialized game.
///
/// The game is usable at two widths: up to 64 facilities it is a
/// [`CoalitionalGame`] (bitset coalitions, every exact solution concept);
/// at any size up to [`MAX_SAMPLED_PLAYERS`] it is a [`WideGame`], which is
/// what the sampled Shapley estimators
/// ([`fedval_coalition::shapley_auto_wide`]) consume.
pub struct FederationGame<'a> {
    facilities: &'a [Facility],
    demand: &'a Demand,
}

impl<'a> FederationGame<'a> {
    /// Creates the game.
    ///
    /// # Panics
    /// Panics if there are no facilities or more than
    /// [`MAX_SAMPLED_PLAYERS`]. (Beyond 64 facilities only the
    /// [`WideGame`] interface applies — bitset coalitions cap at 64.)
    pub fn new(facilities: &'a [Facility], demand: &'a Demand) -> FederationGame<'a> {
        assert!(!facilities.is_empty(), "need at least one facility");
        assert!(
            facilities.len() <= MAX_SAMPLED_PLAYERS,
            "at most {MAX_SAMPLED_PLAYERS} facilities"
        );
        FederationGame { facilities, demand }
    }

    /// The facilities (players), in player-id order.
    pub fn facilities(&self) -> &[Facility] {
        self.facilities
    }

    /// The demand profile.
    pub fn demand(&self) -> &Demand {
        self.demand
    }

    /// Full allocation solution for a coalition (not just its value).
    ///
    /// # Errors
    /// Any [`SolveError`] from the analytic optimizer when the demand profile
    /// is outside its supported cases.
    pub fn solve_coalition(&self, coalition: Coalition) -> Result<ProfileSolution, SolveError> {
        self.solve_members_impl(coalition.players())
    }

    /// Full allocation solution for the coalition whose members are
    /// `members` (player ids in `0..n`, no duplicates) — the wide-game
    /// counterpart of [`FederationGame::solve_coalition`], not limited to
    /// 64 facilities.
    ///
    /// # Errors
    /// Any [`SolveError`] from the analytic optimizer when the demand
    /// profile is outside its supported cases.
    pub fn solve_members(&self, members: &[usize]) -> Result<ProfileSolution, SolveError> {
        self.solve_members_impl(members.iter().copied())
    }

    fn solve_members_impl(
        &self,
        members: impl Iterator<Item = usize>,
    ) -> Result<ProfileSolution, SolveError> {
        let members: Vec<&Facility> = members.map(|p| &self.facilities[p]).collect();
        let profile = coalition_profile(members);
        solve(&profile, self.demand)
    }

    /// Materializes all `2^n` coalition values into a [`TableGame`].
    ///
    /// # Panics
    /// Panics where [`FederationGame::try_table`] would return an error
    /// (more than [`TableGame::MAX_PLAYERS`] facilities).
    pub fn table(&self) -> TableGame {
        match self.try_table() {
            Ok(table) => table,
            // lint: allow(no-panic-path) — documented `# Panics` convenience
            // wrapper for the paper's n ≤ 3 scenarios; fallible callers use
            // try_table.
            Err(e) => panic!("FederationGame::table: {e}"),
        }
    }

    /// Fallible form of [`FederationGame::table`].
    ///
    /// # Errors
    /// [`CoalitionError::TooManyPlayers`](fedval_coalition::CoalitionError)
    /// when the facility count exceeds what a dense table supports.
    pub fn try_table(&self) -> Result<TableGame, CoalitionError> {
        TableGame::try_from_game(self)
    }
}

impl CoalitionalGame for FederationGame<'_> {
    fn n_players(&self) -> usize {
        self.facilities.len()
    }

    /// `V(S)` — the optimal total utility of coalition `S`.
    ///
    /// # Panics
    /// Panics if the demand profile is outside the analytic optimizer's
    /// supported cases (see [`SolveError`]); validate demand up front with
    /// [`FederationGame::solve_coalition`].
    fn value(&self, coalition: Coalition) -> f64 {
        match self.solve_coalition(coalition) {
            Ok(solution) => solution.total_utility,
            // lint: allow(no-panic-path) — the CoalitionalGame trait is infallible;
            // `# Panics` documents this, and callers validate via solve_coalition.
            Err(e) => panic!("FederationGame::value: unsupported demand: {e}"),
        }
    }
}

impl WideGame for FederationGame<'_> {
    fn n_players(&self) -> usize {
        self.facilities.len()
    }

    /// `V(S)` over member slices — the entry point for the sampled Shapley
    /// estimators at any facility count.
    ///
    /// # Panics
    /// Panics if the demand profile is outside the analytic optimizer's
    /// supported cases, exactly like the [`CoalitionalGame`] impl; validate
    /// demand up front with [`FederationGame::solve_members`].
    fn value_members(&self, members: &[usize]) -> f64 {
        match self.solve_members(members) {
            Ok(solution) => solution.total_utility,
            // lint: allow(no-panic-path) — the WideGame trait is infallible;
            // `# Panics` documents this, and callers validate via solve_members.
            Err(e) => panic!("FederationGame::value_members: unsupported demand: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentClass;
    use crate::facility::paper_facilities;
    use fedval_coalition::{shapley_normalized, Coalition};

    #[test]
    fn worked_example_values_and_shapley() {
        // §4.1: single experiment, l = 500, d = 1, L = (100, 400, 800).
        let facilities = paper_facilities([1, 1, 1]);
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0));
        let game = FederationGame::new(&facilities, &demand);

        assert_eq!(game.value(Coalition::singleton(0)), 0.0);
        assert_eq!(game.value(Coalition::singleton(1)), 0.0);
        assert_eq!(game.value(Coalition::singleton(2)), 800.0);
        assert_eq!(game.value(Coalition::from_players([0, 1])), 0.0); // strict
        assert_eq!(game.value(Coalition::from_players([0, 2])), 900.0);
        assert_eq!(game.value(Coalition::from_players([1, 2])), 1200.0);
        assert_eq!(game.grand_value(), 1300.0);

        let table = game.table();
        let phi_hat = shapley_normalized(&table);
        assert!((phi_hat[1] - 2.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn zero_threshold_shares_are_proportional() {
        // Paper: "for l = 0, each ϕ̂ᵢ and π̂ᵢ are equal".
        let facilities = paper_facilities([1, 1, 1]);
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 0.0, 1.0));
        let game = FederationGame::new(&facilities, &demand);
        let phi_hat = shapley_normalized(&game.table());
        assert!((phi_hat[0] - 100.0 / 1300.0).abs() < 1e-9);
        assert!((phi_hat[1] - 400.0 / 1300.0).abs() < 1e-9);
        assert!((phi_hat[2] - 800.0 / 1300.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_game_values_with_resources() {
        // Fig. 6 at l = 299: R = (80, 20, 10). Checked against DESIGN.md's
        // derivation for coalition {1,2}: V = 12000.
        let facilities = paper_facilities([80, 20, 10]);
        let demand = Demand::capacity_filling(ExperimentClass::simple("e", 299.0, 1.0));
        let game = FederationGame::new(&facilities, &demand);
        assert_eq!(game.value(Coalition::from_players([0, 1])), 12_000.0);
        // Facility 1 alone: only 100 locations < 300 required ⇒ 0.
        assert_eq!(game.value(Coalition::singleton(0)), 0.0);
        // Facility 3 alone: 800 locations, cap 10 ⇒ B(10) = 8000 (m=10,
        // sizes 800 each ≥ 300 ✓).
        assert_eq!(game.value(Coalition::singleton(2)), 8000.0);
    }
}
