//! Value-sharing schemes (§3.2 and eq. 5–7 of the paper).
//!
//! All schemes return a vector of *normalized shares* `sᵢ` with
//! `Σ sᵢ = 1` (or all zeros for a valueless federation); monetary payoffs
//! are `vᵢ = sᵢ·V(N)`.

use crate::allocation::{realize_assignment, solve};
use crate::experiment::Demand;
use crate::facility::Facility;
use crate::location::{CapacityProfile, LocationOffer};
use crate::value::FederationGame;
use fedval_coalition::{nucleolus, shapley, shapley_parallel, CoalitionalGame, TableGame};

/// Normalizes a non-negative vector to sum 1 (all zeros if the sum is ~0).
pub fn normalized(raw: Vec<f64>) -> Vec<f64> {
    let total: f64 = raw.iter().sum();
    if total.abs() < 1e-12 {
        vec![0.0; raw.len()]
    } else {
        raw.into_iter().map(|v| v / total).collect()
    }
}

/// Eq. 6 — proportionally fair shares by *contributed* resources:
/// `π̂ᵢ = Lᵢ·Rᵢ / Σ_k L_k·R_k` (generalized to `Σ_l R_{il}` for
/// non-uniform offers).
pub fn proportional_shares(facilities: &[Facility]) -> Vec<f64> {
    normalized(facilities.iter().map(|f| f.total_slots() as f64).collect())
}

/// Equal split — the "equity approach" the paper mentions as ignoring
/// contribution entirely.
pub fn equal_shares(n: usize) -> Vec<f64> {
    if n == 0 {
        Vec::new()
    } else {
        vec![1.0 / n as f64; n]
    }
}

/// Eq. 5 — normalized Shapley value ϕ̂ᵢ of the federation game.
///
/// Materializes the game table once (2ⁿ allocation solves) and runs the
/// exact Shapley computation.
pub fn shapley_shares(facilities: &[Facility], demand: &Demand) -> Vec<f64> {
    let game = FederationGame::new(facilities, demand);
    let table = game.table();
    shapley_hat_of(&table)
}

/// Normalized Shapley of an already-materialized game.
pub fn shapley_hat_of(table: &TableGame) -> Vec<f64> {
    let grand = table.grand_value();
    if grand.abs() < 1e-12 {
        return vec![0.0; table.n_players()];
    }
    shapley(table).into_iter().map(|p| p / grand).collect()
}

/// Multi-threaded [`shapley_hat_of`]: shards players across `threads`
/// workers via [`shapley_parallel`]. Bit-for-bit identical to the
/// sequential result for every thread count (each player's value is
/// computed by exactly one worker, with the same summation order).
pub fn shapley_hat_of_parallel(table: &TableGame, threads: usize) -> Vec<f64> {
    let grand = table.grand_value();
    if grand.abs() < 1e-12 {
        return vec![0.0; table.n_players()];
    }
    shapley_parallel(table, threads)
        .into_iter()
        .map(|p| p / grand)
        .collect()
}

/// Nucleolus-based shares (the §3.2.3 alternative): the nucleolus
/// allocation normalized by `V(N)`.
pub fn nucleolus_shares(facilities: &[Facility], demand: &Demand) -> Vec<f64> {
    let game = FederationGame::new(facilities, demand);
    let table = game.table();
    let grand = table.grand_value();
    if grand.abs() < 1e-12 {
        return vec![0.0; table.n_players()];
    }
    nucleolus(&table).into_iter().map(|v| v / grand).collect()
}

/// Eq. 7 — proportionally fair shares by *consumed* resources ρ̂ᵢ: solve
/// the grand-coalition allocation, realize it on concrete locations, and
/// attribute each location's usage to facilities in proportion to the
/// capacity they contribute there.
///
/// Returns all zeros when nothing is consumed.
pub fn consumption_shares(facilities: &[Facility], demand: &Demand) -> Vec<f64> {
    // Uniform resources-per-location across classes is required by the
    // optimizer; scale capacities accordingly for realization.
    let r = demand
        .components
        .first()
        .map_or(1, |c| c.class.resources_per_location);

    let merged = LocationOffer::merge(facilities.iter().map(|f| &f.offer));
    let scaled_offer = if r == 1 {
        merged.clone()
    } else {
        let mut o = LocationOffer::new();
        for (l, c) in merged.iter() {
            if c / r > 0 {
                o.add(l, c / r);
            }
        }
        o
    };
    let profile = CapacityProfile::from_offer(&scaled_offer);
    let Ok(solution) = solve(&profile, demand) else {
        return vec![0.0; facilities.len()];
    };
    let sizes: Vec<u64> = solution.sizes_desc().iter().map(|&(_, s)| s).collect();
    let Some(assignment) = realize_assignment(&scaled_offer, &sizes) else {
        return vec![0.0; facilities.len()];
    };

    // Attribute usage: facility i's consumption at location l is
    // usage_l · R_{il} / Σ_j R_{jl} (in experiment units; the common factor
    // r cancels in the normalized shares).
    let mut consumed = vec![0.0; facilities.len()];
    for &(loc, used) in &assignment.usage {
        if used == 0 {
            continue;
        }
        let total_cap = merged.capacity_at(loc) as f64;
        for (i, f) in facilities.iter().enumerate() {
            let cap = f.offer.capacity_at(loc) as f64;
            if cap > 0.0 {
                consumed[i] += used as f64 * cap / total_cap;
            }
        }
    }
    normalized(consumed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentClass, Volume};
    use crate::facility::paper_facilities;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn proportional_matches_eq6() {
        // Fig. 8 setup: L = (100,400,800), R = (80,60,20) ⇒
        // products (8000, 24000, 16000)/48000.
        let f = paper_facilities([80, 60, 20]);
        let pi = proportional_shares(&f);
        assert_close(pi[0], 8.0 / 48.0);
        assert_close(pi[1], 24.0 / 48.0);
        assert_close(pi[2], 16.0 / 48.0);
    }

    #[test]
    fn paper_worked_example_pi_hat() {
        // §4.1: π̂₂ = 4/13 with R = (1,1,1).
        let f = paper_facilities([1, 1, 1]);
        let pi = proportional_shares(&f);
        assert_close(pi[1], 4.0 / 13.0);
    }

    #[test]
    fn shapley_shares_worked_example() {
        let f = paper_facilities([1, 1, 1]);
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 500.0, 1.0));
        let phi = shapley_shares(&f, &demand);
        assert_close(phi[1], 2.0 / 13.0);
        assert_close(phi.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn consumption_at_low_demand_follows_locations() {
        // Fig. 8: for K ≤ min Rᵢ every location serves K experiments, so
        // ρ̂ᵢ = Lᵢ / ΣL — different from π̂ᵢ.
        let f = paper_facilities([80, 60, 20]);
        let demand = Demand::single(ExperimentClass::simple("e", 250.0, 1.0), Volume::Count(10));
        let rho = consumption_shares(&f, &demand);
        assert_close(rho[0], 100.0 / 1300.0);
        assert_close(rho[1], 400.0 / 1300.0);
        assert_close(rho[2], 800.0 / 1300.0);
    }

    #[test]
    fn consumption_at_saturation_follows_capacity() {
        // With capacity-filling demand every slot is used: ρ̂ = π̂.
        let f = paper_facilities([80, 60, 20]);
        let demand = Demand::capacity_filling(ExperimentClass::simple("e", 0.0, 1.0));
        let rho = consumption_shares(&f, &demand);
        let pi = proportional_shares(&f);
        for i in 0..3 {
            assert_close(rho[i], pi[i]);
        }
    }

    #[test]
    fn equal_shares_sum_to_one() {
        let e = equal_shares(3);
        assert_close(e.iter().sum::<f64>(), 1.0);
        assert!(equal_shares(0).is_empty());
    }

    #[test]
    fn nucleolus_shares_equal_when_only_grand_coalition_works() {
        // l = 1250: only the grand coalition can serve; the nucleolus (like
        // Shapley) splits equally — the paper's "in the grand coalition all
        // facilities receive an equal share even if their resource
        // contributions are very different!".
        let f = paper_facilities([1, 1, 1]);
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 1250.0, 1.0));
        let nu = nucleolus_shares(&f, &demand);
        for v in &nu {
            assert_close(*v, 1.0 / 3.0);
        }
        let phi = shapley_shares(&f, &demand);
        for v in &phi {
            assert_close(*v, 1.0 / 3.0);
        }
    }

    #[test]
    fn overlap_attribution_splits_shared_locations() {
        // Two facilities fully overlapping with equal capacity: equal
        // consumption shares.
        let a = Facility::uniform("a", 0, 10, 2);
        let b = Facility::uniform("b", 0, 10, 2);
        let facilities = vec![a, b];
        let demand = Demand::capacity_filling(ExperimentClass::simple("e", 0.0, 1.0));
        let rho = consumption_shares(&facilities, &demand);
        assert_close(rho[0], 0.5);
        assert_close(rho[1], 0.5);
    }
}
