//! Availability (`Tᵢ`, §2.1): facilities that are not always up.
//!
//! The paper's model gives each facility an availability `Tᵢ ∈ (0, 1]` —
//! "the resources of each facility could be made available only for a
//! subset of time" — and then fixes `Tᵢ = 1` for the analysis. We
//! implement the general case: treating facility up-times as independent,
//! the *expected* value of coalition `S` is
//!
//! ```text
//! V_T(S) = Σ_{A ⊆ S}  Π_{i∈A} Tᵢ · Π_{j∈S∖A} (1 − Tⱼ) · V(A)
//! ```
//!
//! [`AvailabilityGame`] wraps any base game with this expectation. One
//! evaluation costs `O(2^|S|)` base evaluations, so materializing a full
//! table costs `O(3^n)` — fine for the paper's federation sizes. Wrap the
//! base game in a [`CachedGame`](fedval_coalition::CachedGame) (or use a
//! [`TableGame`](fedval_coalition::TableGame)) if its characteristic
//! function is expensive.

use fedval_coalition::{Coalition, CoalitionalGame};
use std::fmt;

/// Why an availability vector was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum AvailabilityError {
    /// The vector length differs from the base game's player count.
    LengthMismatch {
        /// Players in the base game.
        expected: usize,
        /// Entries in the availability vector.
        actual: usize,
    },
    /// An availability value lies outside `(0, 1]` (or is NaN).
    OutOfRange {
        /// Index of the offending player.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for AvailabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailabilityError::LengthMismatch { expected, actual } => {
                write!(f, "availability vector has {actual} entries for {expected} players")
            }
            AvailabilityError::OutOfRange { index, value } => {
                write!(f, "availability[{index}] = {value} is outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for AvailabilityError {}

/// Expectation of a base game over independent facility availability.
pub struct AvailabilityGame<G> {
    base: G,
    availability: Vec<f64>,
}

impl<G: CoalitionalGame> AvailabilityGame<G> {
    /// Wraps `base` with per-player availabilities.
    ///
    /// # Panics
    /// Panics where [`AvailabilityGame::try_new`] would return an error:
    /// the availability vector length differs from the player count or any
    /// value is outside `(0, 1]`.
    pub fn new(base: G, availability: Vec<f64>) -> AvailabilityGame<G> {
        match AvailabilityGame::try_new(base, availability) {
            Ok(g) => g,
            // lint: allow(no-panic-path) — documented `# Panics` convenience
            // wrapper; fallible callers use the try_ variant instead.
            Err(e) => panic!("AvailabilityGame::new: {e}"),
        }
    }

    /// Wraps `base` with per-player availabilities, rejecting malformed
    /// vectors as an [`AvailabilityError`] instead of panicking.
    ///
    /// # Errors
    /// [`AvailabilityError::LengthMismatch`] when the vector length differs
    /// from the base game's player count; [`AvailabilityError::OutOfRange`]
    /// when any value is NaN or outside `(0, 1]`.
    pub fn try_new(
        base: G,
        availability: Vec<f64>,
    ) -> Result<AvailabilityGame<G>, AvailabilityError> {
        if availability.len() != base.n_players() {
            return Err(AvailabilityError::LengthMismatch {
                expected: base.n_players(),
                actual: availability.len(),
            });
        }
        if let Some((index, &value)) = availability
            .iter()
            .enumerate()
            .find(|&(_, &t)| !(t > 0.0 && t <= 1.0))
        {
            return Err(AvailabilityError::OutOfRange { index, value });
        }
        Ok(AvailabilityGame { base, availability })
    }

    /// The wrapped base game.
    pub fn base(&self) -> &G {
        &self.base
    }

    /// The availability vector.
    pub fn availability(&self) -> &[f64] {
        &self.availability
    }
}

impl<G: CoalitionalGame> CoalitionalGame for AvailabilityGame<G> {
    fn n_players(&self) -> usize {
        self.base.n_players()
    }

    fn value(&self, coalition: Coalition) -> f64 {
        let mut expected = 0.0;
        for up in coalition.subsets() {
            let mut prob = 1.0;
            for p in coalition.players() {
                prob *= if up.contains(p) {
                    self.availability[p]
                } else {
                    1.0 - self.availability[p]
                };
            }
            if prob > 0.0 {
                expected += prob * self.base.value(up);
            }
        }
        expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_coalition::{shapley_normalized, FnGame, TableGame};

    fn threshold_game() -> FnGame<impl Fn(Coalition) -> f64 + Sync> {
        let contrib = [100.0, 400.0, 800.0];
        FnGame::new(3, move |c: Coalition| {
            let total: f64 = c.players().map(|p| contrib[p]).sum();
            if total > 500.0 {
                total
            } else {
                0.0
            }
        })
    }

    #[test]
    fn full_availability_recovers_base_game() {
        let g = AvailabilityGame::new(threshold_game(), vec![1.0; 3]);
        for c in Coalition::all(3) {
            assert!((g.value(c) - g.base().value(c)).abs() < 1e-12);
        }
    }

    #[test]
    fn single_player_expectation() {
        // V({i}) scales by Tᵢ for an additive base game.
        let base = FnGame::new(2, |c: Coalition| {
            c.players().map(|p| (p + 1) as f64 * 10.0).sum::<f64>()
        });
        let g = AvailabilityGame::new(base, vec![0.5, 0.25]);
        assert!((g.value(Coalition::singleton(0)) - 5.0).abs() < 1e-12);
        assert!((g.value(Coalition::singleton(1)) - 5.0).abs() < 1e-12);
        // Independence: E[V({0,1})] = 0.5·10 + 0.25·20.
        assert!((g.grand_value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_is_hand_checkable_on_threshold_game() {
        // S = {2,3} with T = (·, 0.5, 0.5): states
        //   both up (.25): V = 1200; only 3 up (.25): V = 800; else 0.
        let g = AvailabilityGame::new(threshold_game(), vec![1.0, 0.5, 0.5]);
        let v = g.value(Coalition::from_players([1, 2]));
        assert!((v - (0.25 * 1200.0 + 0.25 * 800.0)).abs() < 1e-12);
    }

    #[test]
    fn unreliable_facilities_lose_shapley_share() {
        // Note: making facility 3 flaky just rescales this particular game
        // (every positive coalition contains 3), leaving normalized shares
        // unchanged — so the interesting case is a flaky facility 2.
        // Hand-computed: V_T({2,3}) = 1000, V_T(N) = 1100 ⇒
        // ϕ₂ = (200 + 200 + 200)/6 = 100 ⇒ ϕ̂₂ = 1/11 < 2/13.
        let reliable = TableGame::from_game(&AvailabilityGame::new(
            threshold_game(),
            vec![1.0, 1.0, 1.0],
        ));
        let flaky2 = TableGame::from_game(&AvailabilityGame::new(
            threshold_game(),
            vec![1.0, 0.5, 1.0],
        ));
        let phi_reliable = shapley_normalized(&reliable);
        let phi_flaky = shapley_normalized(&flaky2);
        assert!((phi_flaky[1] - 1.0 / 11.0).abs() < 1e-12);
        assert!(
            phi_flaky[1] < phi_reliable[1],
            "flaky facility 2: {phi_flaky:?} vs {phi_reliable:?}"
        );
        // Shares remain a probability vector.
        assert!((phi_flaky.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn availability_lowers_every_coalition_value_of_monotone_games() {
        let g = AvailabilityGame::new(threshold_game(), vec![0.9, 0.8, 0.7]);
        for c in Coalition::all(3) {
            assert!(g.value(c) <= g.base().value(c) + 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_availability() {
        let _ = AvailabilityGame::new(threshold_game(), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn try_new_reports_bad_vectors_without_panicking() {
        assert_eq!(
            AvailabilityGame::try_new(threshold_game(), vec![1.0, 1.0, 0.0]).err(),
            Some(AvailabilityError::OutOfRange {
                index: 2,
                value: 0.0
            })
        );
        assert_eq!(
            AvailabilityGame::try_new(threshold_game(), vec![1.0]).err(),
            Some(AvailabilityError::LengthMismatch {
                expected: 3,
                actual: 1
            })
        );
        // NaN is rejected too (it fails the open-interval check).
        assert!(matches!(
            AvailabilityGame::try_new(threshold_game(), vec![1.0, f64::NAN, 1.0]),
            Err(AvailabilityError::OutOfRange { index: 1, .. })
        ));
        assert!(AvailabilityGame::try_new(threshold_game(), vec![0.5, 1.0, 0.1]).is_ok());
    }
}
