//! Location-overlap models (§2.1).
//!
//! "Some locations can host resources from multiple facilities. We can
//! capture this by introducing the probability of overlap `o_ij` between
//! the sets `Lᵢ` and `Lⱼ`. For simplicity, we could assume that these
//! probabilities are independent…"
//!
//! Two constructions:
//!
//! * [`IndependentCoverage`] — the paper's independent model: a universe
//!   of `L` locations, facility `i` covering each independently with
//!   probability `pᵢ`, so `o_ij = pᵢ·pⱼ` per location.
//! * [`block_overlap`] — a deterministic construction with exact shared
//!   location counts, for tests and worked examples.
//!
//! Overlap *discounts diversity*: a coalition's distinct-location count is
//! `|∪ Lᵢ| ≤ Σ Lᵢ`, so facilities covering the same places add capacity
//! but little diversity. [`diversity_discount`] quantifies it.

use crate::facility::Facility;
use crate::location::{LocationId, LocationOffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's independent-coverage overlap model.
#[derive(Debug, Clone)]
pub struct IndependentCoverage {
    /// Size of the location universe `L`.
    pub universe: u32,
    /// Per-facility coverage probability `pᵢ` and per-location capacity.
    pub facilities: Vec<(f64, u64)>,
}

impl IndependentCoverage {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if any coverage probability is outside `[0, 1]` or a
    /// capacity is zero.
    pub fn new(universe: u32, facilities: Vec<(f64, u64)>) -> IndependentCoverage {
        assert!(facilities
            .iter()
            .all(|&(p, r)| (0.0..=1.0).contains(&p) && r > 0));
        IndependentCoverage {
            universe,
            facilities,
        }
    }

    /// Expected per-location overlap probability `o_ij = pᵢ·pⱼ`.
    pub fn expected_overlap(&self, i: usize, j: usize) -> f64 {
        self.facilities[i].0 * self.facilities[j].0
    }

    /// Expected number of distinct locations a coalition of all facilities
    /// covers: `L·(1 − Π(1 − pᵢ))`.
    pub fn expected_union_size(&self) -> f64 {
        let miss: f64 = self.facilities.iter().map(|&(p, _)| 1.0 - p).product();
        f64::from(self.universe) * (1.0 - miss)
    }

    /// Samples a concrete facility set (seeded, reproducible).
    pub fn sample(&self, seed: u64) -> Vec<Facility> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.facilities
            .iter()
            .enumerate()
            .map(|(i, &(p, r))| {
                let mut offer = LocationOffer::new();
                for loc in 0..self.universe {
                    if rng.random::<f64>() < p {
                        offer.add(loc as LocationId, r);
                    }
                }
                Facility::new(format!("facility-{}", i + 1), offer)
            })
            .collect()
    }
}

/// Deterministic overlap: `own[i]` exclusive locations per facility plus
/// one block of `shared` locations covered by *every* facility
/// (capacity `r` each, everywhere).
pub fn block_overlap(own: &[u32], shared: u32, r: u64) -> Vec<Facility> {
    let mut next: LocationId = shared; // 0..shared is the common block
    own.iter()
        .enumerate()
        .map(|(i, &count)| {
            let mut offer = LocationOffer::contiguous(0, shared, r);
            for (l, cap) in LocationOffer::contiguous(next, count, r).iter() {
                offer.add(l, cap);
            }
            next += count;
            Facility::new(format!("facility-{}", i + 1), offer)
        })
        .collect()
}

/// Diversity discount of a facility set: distinct locations of the union
/// divided by the sum of individual location counts (1 = fully disjoint,
/// → 1/n as overlap becomes total).
pub fn diversity_discount(facilities: &[Facility]) -> f64 {
    let sum: usize = facilities.iter().map(|f| f.n_locations()).sum();
    if sum == 0 {
        return 1.0;
    }
    let union = LocationOffer::merge(facilities.iter().map(|f| &f.offer)).n_locations();
    union as f64 / sum as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Demand, ExperimentClass};
    use crate::scenario::FederationScenario;

    #[test]
    fn block_overlap_counts() {
        let fs = block_overlap(&[5, 10], 3, 2);
        assert_eq!(fs[0].n_locations(), 8);
        assert_eq!(fs[1].n_locations(), 13);
        let union = LocationOffer::merge(fs.iter().map(|f| &f.offer));
        assert_eq!(union.n_locations(), 3 + 5 + 10);
        // Shared block has doubled capacity.
        assert_eq!(union.capacity_at(0), 4);
        assert_eq!(union.capacity_at(3), 2);
    }

    #[test]
    fn diversity_discount_ranges() {
        let disjoint = block_overlap(&[5, 5], 0, 1);
        assert!((diversity_discount(&disjoint) - 1.0).abs() < 1e-12);
        let total = block_overlap(&[0, 0], 6, 1);
        assert!((diversity_discount(&total) - 0.5).abs() < 1e-12);
        let mixed = block_overlap(&[2, 2], 2, 1);
        // union 6, sum 8.
        assert!((diversity_discount(&mixed) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn independent_model_expectations() {
        let m = IndependentCoverage::new(1000, vec![(0.3, 1), (0.5, 1)]);
        assert!((m.expected_overlap(0, 1) - 0.15).abs() < 1e-12);
        assert!((m.expected_union_size() - 650.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_reproducible_and_near_expectation() {
        let m = IndependentCoverage::new(2000, vec![(0.3, 1), (0.5, 2)]);
        let a = m.sample(7);
        let b = m.sample(7);
        assert_eq!(a[0].n_locations(), b[0].n_locations());
        // Within 4σ of binomial expectation.
        let n0 = a[0].n_locations() as f64;
        let exp0 = 2000.0 * 0.3;
        let sd0 = (2000.0f64 * 0.3 * 0.7).sqrt();
        assert!((n0 - exp0).abs() < 4.0 * sd0, "n0 = {n0}");
        // Capacities respected.
        assert!(a[1].offer.iter().all(|(_, r)| r == 2));
    }

    #[test]
    fn overlap_erodes_the_diversity_premium() {
        // A diversity-hungry experiment (needs > 12 distinct locations).
        // Disjoint: facility 2's 6 extra locations are pivotal.
        // Fully overlapping facility 2 adds no diversity: its Shapley
        // share collapses.
        let demand = Demand::one_experiment(ExperimentClass::simple("e", 12.0, 1.0));

        let disjoint = block_overlap(&[8, 6], 0, 1); // union 14 > 12
        let s1 = FederationScenario::new(disjoint, demand.clone());
        assert!(s1.grand_value() > 0.0);
        let phi_disjoint = s1.shapley_shares();

        // Facility 2 covers only locations facility 1 already covers,
        // plus too few of its own: union 8+1 = 9 < 13 ⇒ no value at all.
        let overlapping = block_overlap(&[8, 1], 0, 1);
        let mut shared = overlapping;
        // Rebuild facility 2 to sit on facility 1's range: 6 locations
        // all shared.
        shared[1] = Facility::new("facility-2", LocationOffer::contiguous(0, 6, 1));
        let s2 = FederationScenario::new(shared, demand);
        assert_eq!(s2.grand_value(), 0.0, "no diversity gained ⇒ no value");

        // And in the disjoint case facility 2 earns a strictly positive,
        // pivotal share.
        assert!(phi_disjoint[1] > 0.3);
    }
}
