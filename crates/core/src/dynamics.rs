//! The dynamic (loss-network) federation value — the paper's §6 extension
//! implemented.
//!
//! The static model (eq. 2) counts experiments; the dynamic model counts
//! *rates*: experiments of class `k` arrive Poisson(λ_k), hold their
//! resources for a mean time t̄_k, and are blocked when the coalition's
//! capacity is exhausted. The long-run value rate of coalition `S` is
//!
//! ```text
//! V̇(S) = Σ_k λ_k · (1 − B_k(S)) · u_k(x_k(S))
//! ```
//!
//! where admitted class-`k` experiments take `x_k(S) = min(l̄_k, L(S))`
//! distinct locations (max-diversity placement, PlanetLab style), consume
//! `b_k = r_k·x_k` slot-units, and `B_k` comes from the Kaufman–Roberts
//! recursion on the coalition's slot pool. Classes whose diversity
//! threshold exceeds `L(S)` are simply not servable by `S`.
//!
//! **Approximation note:** pooling all location-slots into one knapsack
//! ignores the per-location packing constraints (Gale–Ryser) that the
//! static optimizer enforces; it is exact when per-location capacities are
//! uniform and experiments spread maximally, and an upper bound otherwise.
//! The testbed DES (`fedval-testbed`) is the packing-faithful
//! counterpart; the bench suite compares the two.
//!
//! This captures the paper's statistical-multiplexing claims: small
//! holding times raise the game's superadditivity (§3.2.1), and pooling
//! cuts blocking — now with Shapley values computable on top.

use crate::experiment::ExperimentClass;
use crate::facility::{coalition_profile, Facility};
use fedval_coalition::{Coalition, CoalitionalGame};
use fedval_desim::{erlang_fixed_point, kaufman_roberts, LossClass, Route};

/// How coalition capacity is modelled in the dynamic game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueMode {
    /// All location-slots pooled into one stochastic knapsack
    /// (Kaufman–Roberts). Fast; ignores per-location packing.
    #[default]
    SlotPool,
    /// Each location is a link of its own capacity and an experiment is a
    /// route over its locations (Erlang fixed point). Packing-faithful;
    /// limited to coalitions of ≤ 512 locations and uniform
    /// `resources_per_location = 1`.
    PerLocation,
}

/// One class of dynamic demand.
#[derive(Debug, Clone)]
pub struct DynamicClass {
    /// The experiment class (threshold, utility, `r`, `l̄`).
    pub class: ExperimentClass,
    /// Poisson arrival rate λ.
    pub arrival_rate: f64,
    /// Mean holding time t̄ (absolute; the class's `holding_time`
    /// attribute is a *relative* factor — see
    /// [`DynamicDemand::paper_mix`]).
    pub mean_holding: f64,
}

/// A dynamic demand profile.
#[derive(Debug, Clone)]
pub struct DynamicDemand {
    /// The classes.
    pub classes: Vec<DynamicClass>,
}

impl DynamicDemand {
    /// Single-class dynamic demand.
    pub fn single(class: ExperimentClass, arrival_rate: f64, mean_holding: f64) -> DynamicDemand {
        DynamicDemand {
            classes: vec![DynamicClass {
                class,
                arrival_rate,
                mean_holding,
            }],
        }
    }

    /// The paper's three canonical classes with holding times scaled by
    /// their `t` attributes (P2P 0.1, CDN 1, measurement 0.4).
    pub fn paper_mix(rate_per_class: f64, base_holding: f64) -> DynamicDemand {
        let classes = [
            ExperimentClass::p2p(),
            ExperimentClass::cdn(),
            ExperimentClass::measurement(),
        ];
        DynamicDemand {
            classes: classes
                .into_iter()
                .map(|class| DynamicClass {
                    mean_holding: base_holding * class.holding_time,
                    class,
                    arrival_rate: rate_per_class,
                })
                .collect(),
        }
    }

    /// Uniformly scales all holding times (multiplexing knob).
    pub fn with_holding_scale(mut self, factor: f64) -> DynamicDemand {
        assert!(factor > 0.0);
        for c in &mut self.classes {
            c.mean_holding *= factor;
        }
        self
    }
}

/// The coalitional game whose value is the long-run value *rate* of each
/// coalition under dynamic demand.
pub struct DynamicFederationGame<'a> {
    facilities: &'a [Facility],
    demand: &'a DynamicDemand,
    mode: ValueMode,
}

impl<'a> DynamicFederationGame<'a> {
    /// Creates the game.
    ///
    /// # Panics
    /// Panics if there are no facilities or more than 64.
    pub fn new(facilities: &'a [Facility], demand: &'a DynamicDemand) -> DynamicFederationGame<'a> {
        assert!(!facilities.is_empty());
        assert!(facilities.len() <= 64);
        DynamicFederationGame {
            facilities,
            demand,
            mode: ValueMode::SlotPool,
        }
    }

    /// Selects the capacity model (builder style).
    pub fn with_mode(mut self, mode: ValueMode) -> DynamicFederationGame<'a> {
        self.mode = mode;
        self
    }

    /// Per-class blocking probabilities for a coalition (1.0 for classes
    /// the coalition cannot serve at all).
    pub fn blocking(&self, coalition: Coalition) -> Vec<f64> {
        self.analyze(coalition).1
    }

    /// `(value rate, per-class blocking)` for a coalition.
    fn analyze(&self, coalition: Coalition) -> (f64, Vec<f64>) {
        match self.mode {
            ValueMode::SlotPool => self.analyze_slot_pool(coalition),
            ValueMode::PerLocation => self.analyze_per_location(coalition),
        }
    }

    /// Per-location (loss-network) analysis: each location is a link, an
    /// admitted class-k experiment is a route over the x_k
    /// largest-capacity locations.
    fn analyze_per_location(&self, coalition: Coalition) -> (f64, Vec<f64>) {
        let members: Vec<&Facility> = coalition.players().map(|p| &self.facilities[p]).collect();
        let n_classes = self.demand.classes.len();
        let mut blocking = vec![1.0; n_classes];
        if members.is_empty() {
            return (0.0, blocking);
        }
        let profile = coalition_profile(members);
        let locations = profile.n_locations();
        assert!(locations <= 512, "PerLocation mode limited to 512 locations");
        // One link per location, largest capacities first (routes take
        // prefixes of this list).
        let mut capacities: Vec<u64> = Vec::with_capacity(locations as usize);
        for &(cap, count) in profile.groups().iter().rev() {
            for _ in 0..count {
                capacities.push(cap);
            }
        }
        let mut routes = Vec::new();
        let mut servable = Vec::new();
        for (k, dc) in self.demand.classes.iter().enumerate() {
            assert_eq!(
                dc.class.resources_per_location, 1,
                "PerLocation mode requires r = 1"
            );
            let x = dc.class.max_size(locations);
            if (x as f64) <= dc.class.utility.threshold || x == 0 {
                continue;
            }
            routes.push(Route::new(
                (0..x as usize).collect(),
                dc.arrival_rate * dc.mean_holding,
            ));
            servable.push((k, dc.arrival_rate, dc.class.utility_of(x)));
        }
        if routes.is_empty() {
            return (0.0, blocking);
        }
        let fp = erlang_fixed_point(&capacities, &routes);
        let mut value_rate = 0.0;
        for ((k, rate, utility), &b) in servable.into_iter().zip(&fp.route_blocking) {
            blocking[k] = b;
            value_rate += rate * (1.0 - b) * utility;
        }
        (value_rate, blocking)
    }

    /// Pooled-knapsack analysis (Kaufman–Roberts).
    fn analyze_slot_pool(&self, coalition: Coalition) -> (f64, Vec<f64>) {
        let members: Vec<&Facility> = coalition.players().map(|p| &self.facilities[p]).collect();
        if members.is_empty() {
            return (0.0, vec![1.0; self.demand.classes.len()]);
        }
        let profile = coalition_profile(members);
        let locations = profile.n_locations();
        let capacity = profile.total_slots();

        // Servable classes become knapsack classes.
        let mut loss_classes = Vec::new();
        let mut servable = Vec::new(); // (demand idx, x, utility)
        for (k, dc) in self.demand.classes.iter().enumerate() {
            let x = dc.class.max_size(locations);
            if (x as f64) <= dc.class.utility.threshold {
                continue;
            }
            let b = x * dc.class.resources_per_location;
            if b == 0 || b > capacity {
                continue;
            }
            loss_classes.push(LossClass::new(dc.arrival_rate, dc.mean_holding, b));
            servable.push((k, x, dc.class.utility_of(x)));
        }
        let mut blocking = vec![1.0; self.demand.classes.len()];
        if loss_classes.is_empty() {
            return (0.0, blocking);
        }
        let analysis = kaufman_roberts(capacity, &loss_classes);
        let mut value_rate = 0.0;
        for ((&(k, _, utility), loss), &b) in
            servable.iter().zip(&loss_classes).zip(&analysis.blocking)
        {
            blocking[k] = b;
            value_rate += loss.rate * (1.0 - b) * utility;
        }
        (value_rate, blocking)
    }
}

impl CoalitionalGame for DynamicFederationGame<'_> {
    fn n_players(&self) -> usize {
        self.facilities.len()
    }

    fn value(&self, coalition: Coalition) -> f64 {
        self.analyze(coalition).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facility::paper_facilities;
    use fedval_coalition::{is_superadditive, shapley_normalized, TableGame};

    fn demand(l: f64, rate: f64, holding: f64) -> DynamicDemand {
        DynamicDemand::single(ExperimentClass::simple("e", l, 1.0), rate, holding)
    }

    #[test]
    fn empty_and_unservable_coalitions_have_zero_rate() {
        let facilities = paper_facilities([1, 1, 1]);
        let d = demand(500.0, 1.0, 1.0);
        let g = DynamicFederationGame::new(&facilities, &d);
        assert_eq!(g.value(Coalition::EMPTY), 0.0);
        // Facility 1 alone: 100 locations < 501 ⇒ cannot serve.
        assert_eq!(g.value(Coalition::singleton(0)), 0.0);
        assert_eq!(g.blocking(Coalition::singleton(0))[0], 1.0);
        // The grand coalition serves.
        assert!(g.grand_value() > 0.0);
    }

    #[test]
    fn light_load_approaches_full_throughput() {
        // λ·u with negligible blocking: V ≈ λ·u(x).
        let facilities = paper_facilities([4, 4, 4]);
        let d = demand(0.0, 0.001, 1.0);
        let g = DynamicFederationGame::new(&facilities, &d);
        let v = g.grand_value();
        let expect = 0.001 * 1300.0; // u(1300) = 1300, B ≈ 0
        assert!((v - expect).abs() / expect < 0.01, "v = {v}");
    }

    #[test]
    fn shorter_holding_times_raise_value() {
        // §2.2: small t ⇒ more statistical multiplexing ⇒ higher rate.
        let facilities = paper_facilities([1, 1, 1]);
        let heavy = demand(100.0, 2.0, 4.0);
        let light = demand(100.0, 2.0, 0.25);
        let vh = DynamicFederationGame::new(&facilities, &heavy).grand_value();
        let vl = DynamicFederationGame::new(&facilities, &light).grand_value();
        assert!(vl > vh, "light {vl} vs heavy {vh}");
    }

    #[test]
    fn dynamic_game_is_superadditive_under_diversity_demand() {
        let facilities = paper_facilities([2, 2, 2]);
        let d = demand(300.0, 0.5, 1.0);
        let g = DynamicFederationGame::new(&facilities, &d);
        let table = TableGame::from_game(&g);
        assert!(is_superadditive(&table, 1e-9));
    }

    #[test]
    fn dynamic_shapley_shares_are_probability_vector_and_diversity_biased() {
        let facilities = paper_facilities([1, 1, 1]);
        let d = demand(500.0, 1.0, 1.0);
        let g = DynamicFederationGame::new(&facilities, &d);
        let table = TableGame::from_game(&g);
        let shares = shapley_normalized(&table);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Facility 3 (the only solo server) dominates, as in the static
        // worked example.
        assert!(shares[2] > 0.5);
    }

    #[test]
    fn paper_mix_builds_three_classes() {
        let d = DynamicDemand::paper_mix(1.0, 10.0);
        assert_eq!(d.classes.len(), 3);
        assert!((d.classes[0].mean_holding - 1.0).abs() < 1e-12);
        assert!((d.classes[1].mean_holding - 10.0).abs() < 1e-12);
        assert!((d.classes[2].mean_holding - 4.0).abs() < 1e-12);
        let scaled = d.with_holding_scale(0.5);
        assert!((scaled.classes[1].mean_holding - 5.0).abs() < 1e-12);
    }

    #[test]
    fn blocking_increases_with_load() {
        let facilities = paper_facilities([1, 1, 1]);
        let grand = Coalition::grand(3);
        let mut prev = 0.0;
        for rate in [0.1, 1.0, 10.0] {
            let d = demand(0.0, rate, 1.0);
            let g = DynamicFederationGame::new(&facilities, &d);
            let b = g.blocking(grand)[0];
            assert!(b >= prev - 1e-12);
            prev = b;
        }
    }
}

#[cfg(test)]
mod per_location_tests {
    use super::*;
    use crate::facility::paper_facilities_with_locations;
    use fedval_coalition::shapley_normalized;
    use fedval_coalition::TableGame;

    fn small_facilities() -> Vec<Facility> {
        // 3 facilities with 20/30/50 locations, 2 slots each (260 total).
        paper_facilities_with_locations([20, 30, 50], [2, 2, 2])
    }

    #[test]
    fn per_location_mode_blocks_no_less_than_slot_pool() {
        // The slot pool ignores packing constraints, so it is an
        // optimistic bound: per-location blocking ≥ pooled blocking.
        let facilities = small_facilities();
        let d = DynamicDemand::single(ExperimentClass::simple("e", 40.0, 1.0), 2.0, 1.0);
        let pooled = DynamicFederationGame::new(&facilities, &d);
        let network = DynamicFederationGame::new(&facilities, &d).with_mode(ValueMode::PerLocation);
        let grand = Coalition::grand(3);
        let b_pool = pooled.blocking(grand)[0];
        let b_net = network.blocking(grand)[0];
        assert!(
            b_net >= b_pool - 1e-9,
            "network blocking {b_net} < pooled {b_pool}"
        );
        // And the value rate is correspondingly lower.
        assert!(network.value(grand) <= pooled.value(grand) + 1e-9);
    }

    #[test]
    fn per_location_unservable_classes_block_fully() {
        let facilities = small_facilities();
        let d = DynamicDemand::single(ExperimentClass::simple("wide", 150.0, 1.0), 1.0, 1.0);
        let g = DynamicFederationGame::new(&facilities, &d).with_mode(ValueMode::PerLocation);
        // Facility 1 alone: 20 < 151 locations.
        assert_eq!(g.blocking(Coalition::singleton(0))[0], 1.0);
        assert_eq!(g.value(Coalition::singleton(0)), 0.0);
        // Grand: 100 locations < 151 — still unservable.
        assert_eq!(g.value(Coalition::grand(3)), 0.0);
    }

    #[test]
    fn per_location_shapley_is_probability_vector() {
        let facilities = small_facilities();
        let d = DynamicDemand::single(ExperimentClass::simple("e", 60.0, 1.0), 1.5, 0.5);
        let g = DynamicFederationGame::new(&facilities, &d).with_mode(ValueMode::PerLocation);
        let table = TableGame::from_game(&g);
        let shares = shapley_normalized(&table);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(shares.iter().all(|&s| s >= -1e-12));
        // The 50-location facility is the diversity anchor.
        assert!(shares[2] > shares[0]);
    }

    #[test]
    fn modes_agree_when_capacity_is_uniform_and_routes_span_everything() {
        // Single class spanning all locations with equal per-location
        // capacity: the network behaves like c parallel "layers", which
        // the knapsack model captures closely at low load.
        let facilities = paper_facilities_with_locations([10, 10, 10], [3, 3, 3]);
        let d = DynamicDemand::single(ExperimentClass::simple("e", 0.0, 1.0), 0.05, 1.0);
        let grand = Coalition::grand(3);
        let pooled = DynamicFederationGame::new(&facilities, &d).value(grand);
        let network = DynamicFederationGame::new(&facilities, &d)
            .with_mode(ValueMode::PerLocation)
            .value(grand);
        let rel = (pooled - network).abs() / pooled.max(1e-9);
        assert!(rel < 0.05, "pooled {pooled} vs network {network}");
    }
}
