//! Locations and coalition capacity profiles (§2.1 of the paper).
//!
//! Each facility provides resources at a set of locations `Lᵢ ⊆ L`; when
//! facilities overlap at a location the capacities add (Fig. 1). For the
//! allocation optimizer the only thing that matters about a coalition is
//! its **capacity profile**: how many distinct locations it has at each
//! capacity level. [`CapacityProfile`] stores that compressed form and
//! provides the `B(m) = Σ_ℓ min(c_ℓ, m)` primitive (maximum usable
//! location-slots when at most `m` experiments may share a location) on
//! which the whole analytic allocation theory rests.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a geographic/network location.
pub type LocationId = u32;

/// A facility's resource offer at a set of locations: location id →
/// capacity `R_{il}` (number of experiments that can run there thanks to
/// facility `i`, the paper's bottleneck-resource aggregation).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocationOffer {
    slots: BTreeMap<LocationId, u64>,
}

impl LocationOffer {
    /// The empty offer.
    pub fn new() -> LocationOffer {
        LocationOffer::default()
    }

    /// Uniform offer: capacity `r` at each of `locations`.
    ///
    /// # Panics
    /// Panics if `r == 0`.
    pub fn uniform<I: IntoIterator<Item = LocationId>>(locations: I, r: u64) -> LocationOffer {
        assert!(r > 0, "capacity per location must be positive");
        LocationOffer {
            slots: locations.into_iter().map(|l| (l, r)).collect(),
        }
    }

    /// Uniform offer on a contiguous id range `[start, start+count)`.
    pub fn contiguous(start: LocationId, count: u32, r: u64) -> LocationOffer {
        LocationOffer::uniform(start..start + count, r)
    }

    /// Adds capacity `r` at `location` (accumulating).
    pub fn add(&mut self, location: LocationId, r: u64) {
        if r > 0 {
            *self.slots.entry(location).or_insert(0) += r;
        }
    }

    /// Number of distinct locations offered (the paper's `Lᵢ`).
    pub fn n_locations(&self) -> usize {
        self.slots.len()
    }

    /// Total location-slots offered (`Σ_l R_{il}`).
    pub fn total_slots(&self) -> u64 {
        self.slots.values().sum()
    }

    /// Iterates `(location, capacity)` pairs in location order.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, u64)> + '_ {
        self.slots.iter().map(|(&l, &r)| (l, r))
    }

    /// Capacity offered at `location` (0 if none).
    pub fn capacity_at(&self, location: LocationId) -> u64 {
        self.slots.get(&location).copied().unwrap_or(0)
    }

    /// Merges several offers by summing capacities at shared locations —
    /// exactly the paper's Fig. 1 note: "at locations where there is
    /// overlapping the total available resources are the sum".
    pub fn merge<'a, I: IntoIterator<Item = &'a LocationOffer>>(offers: I) -> LocationOffer {
        let mut merged = LocationOffer::new();
        for offer in offers {
            for (l, r) in offer.iter() {
                merged.add(l, r);
            }
        }
        merged
    }
}

/// The compressed capacity profile of a coalition: sorted groups of
/// `(capacity, #locations at that capacity)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityProfile {
    /// Groups sorted by ascending capacity; capacities are distinct.
    groups: Vec<(u64, u64)>,
    n_locations: u64,
    total_slots: u64,
}

impl CapacityProfile {
    /// Builds the profile of a merged offer.
    pub fn from_offer(offer: &LocationOffer) -> CapacityProfile {
        let mut by_cap: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, r) in offer.iter() {
            *by_cap.entry(r).or_insert(0) += 1;
        }
        CapacityProfile::from_groups(by_cap.into_iter().collect())
    }

    /// Builds directly from `(capacity, count)` groups (need not be sorted
    /// or deduplicated).
    pub fn from_groups(groups: Vec<(u64, u64)>) -> CapacityProfile {
        let mut by_cap: BTreeMap<u64, u64> = BTreeMap::new();
        for (cap, count) in groups {
            if cap > 0 && count > 0 {
                *by_cap.entry(cap).or_insert(0) += count;
            }
        }
        let groups: Vec<(u64, u64)> = by_cap.into_iter().collect();
        let n_locations = groups.iter().map(|&(_, n)| n).sum();
        let total_slots = groups.iter().map(|&(c, n)| c * n).sum();
        CapacityProfile {
            groups,
            n_locations,
            total_slots,
        }
    }

    /// The empty profile (coalition with no resources).
    pub fn empty() -> CapacityProfile {
        CapacityProfile::from_groups(Vec::new())
    }

    /// Number of distinct locations.
    pub fn n_locations(&self) -> u64 {
        self.n_locations
    }

    /// Total slots `Σ_ℓ c_ℓ`.
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Maximum capacity of any location (0 for the empty profile).
    pub fn max_capacity(&self) -> u64 {
        self.groups.last().map_or(0, |&(c, _)| c)
    }

    /// `B(m) = Σ_ℓ min(c_ℓ, m)`: the maximum number of location-slots
    /// usable by `m` experiments that each use a location at most once.
    pub fn usable_slots(&self, m: u64) -> u64 {
        self.groups
            .iter()
            .map(|&(cap, count)| cap.min(m) * count)
            .sum()
    }

    /// `δ(m) = B(m) − B(m−1)`: the number of locations with capacity ≥ m.
    pub fn locations_with_capacity_at_least(&self, m: u64) -> u64 {
        if m == 0 {
            return self.n_locations;
        }
        self.groups
            .iter()
            .filter(|&&(cap, _)| cap >= m)
            .map(|&(_, count)| count)
            .sum()
    }

    /// The groups, sorted by ascending capacity.
    pub fn groups(&self) -> &[(u64, u64)] {
        &self.groups
    }

    /// Per-location usage when `m` experiments are packed optimally:
    /// location with capacity `c` carries `min(c, m)`. Returns usage summed
    /// per capacity group, `(capacity, count, used_per_location)`.
    pub fn usage_at(&self, m: u64) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.groups
            .iter()
            .map(move |&(cap, count)| (cap, count, cap.min(m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_offer_counts() {
        let o = LocationOffer::contiguous(0, 100, 80);
        assert_eq!(o.n_locations(), 100);
        assert_eq!(o.total_slots(), 8000);
        assert_eq!(o.capacity_at(5), 80);
        assert_eq!(o.capacity_at(100), 0);
    }

    #[test]
    fn merge_sums_overlapping_capacity() {
        let a = LocationOffer::contiguous(0, 10, 3);
        let b = LocationOffer::contiguous(5, 10, 2); // overlaps on 5..10
        let m = LocationOffer::merge([&a, &b]);
        assert_eq!(m.n_locations(), 15);
        assert_eq!(m.capacity_at(4), 3);
        assert_eq!(m.capacity_at(7), 5);
        assert_eq!(m.capacity_at(12), 2);
        assert_eq!(m.total_slots(), 30 + 20);
    }

    #[test]
    fn profile_groups_and_b_function() {
        // Fig. 6-style coalition {1,2}: 100 locations at cap 80 + 400 at 20.
        let profile = CapacityProfile::from_groups(vec![(80, 100), (20, 400)]);
        assert_eq!(profile.n_locations(), 500);
        assert_eq!(profile.total_slots(), 16_000);
        assert_eq!(profile.max_capacity(), 80);
        // B(m) = 100·min(80,m) + 400·min(20,m).
        assert_eq!(profile.usable_slots(1), 500);
        assert_eq!(profile.usable_slots(20), 10_000);
        assert_eq!(profile.usable_slots(40), 12_000);
        assert_eq!(profile.usable_slots(80), 16_000);
        assert_eq!(profile.usable_slots(1000), 16_000);
    }

    #[test]
    fn b_is_concave_nondecreasing() {
        let profile = CapacityProfile::from_groups(vec![(7, 3), (2, 11), (40, 1)]);
        let mut prev = 0;
        let mut prev_delta = u64::MAX;
        for m in 1..=50 {
            let b = profile.usable_slots(m);
            let delta = b - prev;
            assert!(delta <= prev_delta, "B must be concave");
            assert_eq!(
                delta,
                profile.locations_with_capacity_at_least(m),
                "δ(m) = #locations with capacity ≥ m"
            );
            prev = b;
            prev_delta = delta;
        }
    }

    #[test]
    fn profile_from_offer_matches_groups() {
        let mut o = LocationOffer::contiguous(0, 3, 5);
        o.add(100, 5);
        o.add(101, 9);
        let p = CapacityProfile::from_offer(&o);
        assert_eq!(p.groups(), &[(5, 4), (9, 1)]);
    }

    #[test]
    fn empty_profile_is_harmless() {
        let p = CapacityProfile::empty();
        assert_eq!(p.n_locations(), 0);
        assert_eq!(p.usable_slots(10), 0);
        assert_eq!(p.max_capacity(), 0);
    }

    #[test]
    fn zero_capacity_groups_are_dropped() {
        let p = CapacityProfile::from_groups(vec![(0, 10), (3, 2)]);
        assert_eq!(p.n_locations(), 2);
    }
}
