//! Provision and federation costs (§2.3.2).
//!
//! The paper models facility cost as `cᵢ(Lᵢ, Rᵢ, Tᵢ) = αLᵢ + βRᵢ + γTᵢ`
//! (usually `α < β < γ`) plus a fixed federation cost `c_F` for the
//! administrative/technical/legal overhead of federating. The paper's
//! analysis ignores provision costs (pre-federation sunk investments); we
//! implement them so the net-benefit question — is federating worth it at
//! all? — can be answered explicitly.

use crate::facility::Facility;
use serde::{Deserialize, Serialize};

/// Linear cost model `c = α·L + β·R̄ + γ·T + fixed`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost per distinct location covered (α) — geographic expansion is
    /// the hardest attribute to buy, but each unit is cheap to run.
    pub alpha: f64,
    /// Cost per unit of mean per-location capacity (β).
    pub beta: f64,
    /// Cost of availability (γ, scaled by `Tᵢ`).
    pub gamma: f64,
    /// Fixed federation cost `c_F`, charged once per participating
    /// facility when a federation forms.
    pub federation_fixed: f64,
}

impl CostModel {
    /// The paper's qualitative ordering `α < β < γ` with zero federation
    /// overhead; a sane default for examples.
    pub fn paper_default() -> CostModel {
        CostModel {
            alpha: 1.0,
            beta: 2.0,
            gamma: 4.0,
            federation_fixed: 0.0,
        }
    }

    /// Provision cost `cᵢ(Lᵢ, R̄ᵢ, Tᵢ)` of a facility (without the
    /// federation overhead).
    pub fn provision_cost(&self, facility: &Facility) -> f64 {
        let l = facility.n_locations() as f64;
        let r_mean = if facility.n_locations() == 0 {
            0.0
        } else {
            facility.total_slots() as f64 / l
        };
        self.alpha * l + self.beta * r_mean + self.gamma * facility.availability
    }

    /// Net benefit of federating for one facility: its value share minus
    /// the federation overhead, compared with its stand-alone value.
    /// Positive means federating is individually rational *after costs*.
    pub fn net_federation_benefit(&self, share_value: f64, standalone_value: f64) -> f64 {
        share_value - self.federation_fixed - standalone_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facility::Facility;

    #[test]
    fn provision_cost_components() {
        let m = CostModel {
            alpha: 1.0,
            beta: 10.0,
            gamma: 100.0,
            federation_fixed: 0.0,
        };
        let f = Facility::uniform("x", 0, 50, 4).with_availability(0.5);
        // 1·50 + 10·4 + 100·0.5 = 140.
        assert!((m.provision_cost(&f) - 140.0).abs() < 1e-12);
    }

    #[test]
    fn net_benefit_sign() {
        let m = CostModel {
            federation_fixed: 10.0,
            ..CostModel::paper_default()
        };
        assert!(m.net_federation_benefit(120.0, 100.0) > 0.0);
        assert!(m.net_federation_benefit(105.0, 100.0) < 0.0);
    }
}
