//! Experiments and demand (§2.2 of the paper).
//!
//! An experiment class bundles the paper's three demand attributes —
//! required distinct locations `l` (with optional upper bound `l̄`),
//! resources per location `r`, and holding time per location `t` — with
//! the utility shape `d`. Demand is a mixture of classes with either a
//! finite volume `K` or "capacity-filling" volume (the paper's "enough in
//! number to fill the system's capacity").

use crate::utility::ThresholdPower;
use serde::{Deserialize, Serialize};

/// A class of experiments with identical demand attributes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentClass {
    /// Class label for reports (e.g. "p2p", "cdn", "measurement").
    pub name: String,
    /// Utility function (threshold `l` and shape `d`).
    pub utility: ThresholdPower,
    /// Optional maximum useful locations `l̄` (None = unbounded, the
    /// paper's default since real maxima far exceed available locations).
    pub max_locations: Option<u64>,
    /// Resources consumed per assigned location (`r`).
    pub resources_per_location: u64,
    /// Holding time per location (`t ∈ (0, 1]`), used by the
    /// statistical-multiplexing simulations; the static analysis uses 1.
    pub holding_time: f64,
}

impl ExperimentClass {
    /// Creates a class with `r = 1`, `t = 1`, unbounded `l̄` — the paper's
    /// static-analysis defaults.
    pub fn simple(name: impl Into<String>, threshold: f64, shape: f64) -> ExperimentClass {
        ExperimentClass {
            name: name.into(),
            utility: ThresholdPower::new(threshold, shape),
            max_locations: None,
            resources_per_location: 1,
            holding_time: 1.0,
        }
    }

    /// Sets `r` (builder style).
    ///
    /// # Panics
    /// Panics if `r == 0`.
    pub fn with_resources(mut self, r: u64) -> ExperimentClass {
        assert!(r > 0);
        self.resources_per_location = r;
        self
    }

    /// Sets `t` (builder style).
    ///
    /// # Panics
    /// Panics unless `0 < t ≤ 1`.
    pub fn with_holding_time(mut self, t: f64) -> ExperimentClass {
        assert!(t > 0.0 && t <= 1.0);
        self.holding_time = t;
        self
    }

    /// Sets `l̄` (builder style).
    pub fn with_max_locations(mut self, max: u64) -> ExperimentClass {
        self.max_locations = Some(max);
        self
    }

    /// Smallest admissible integer size (`> l`), capped by nothing.
    pub fn min_size(&self) -> u64 {
        self.utility.min_admissible()
    }

    /// Largest useful integer size given `available` distinct locations.
    pub fn max_size(&self, available: u64) -> u64 {
        self.max_locations.unwrap_or(u64::MAX).min(available)
    }

    /// The paper's example P2P experiment: `l = 40, l̄ = ∞, r = 1, t = 0.1`.
    pub fn p2p() -> ExperimentClass {
        ExperimentClass::simple("p2p", 40.0, 1.0).with_holding_time(0.1)
    }

    /// The paper's example CDN service: `l = 100, l̄ = 500, r = 4, t = 1`.
    pub fn cdn() -> ExperimentClass {
        ExperimentClass::simple("cdn", 100.0, 1.0)
            .with_max_locations(500)
            .with_resources(4)
    }

    /// The paper's example measurement experiment:
    /// `l = 500, l̄ = ∞, r = 2, t = 0.4`.
    pub fn measurement() -> ExperimentClass {
        ExperimentClass::simple("measurement", 500.0, 1.0)
            .with_resources(2)
            .with_holding_time(0.4)
    }
}

/// How many experiments of a class request access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Volume {
    /// Exactly this many experiments (the paper's `K`).
    Count(u64),
    /// Enough experiments to fill any coalition's capacity (§4.3.1's
    /// "enough in number to fill the system's capacity").
    CapacityFilling,
}

impl Volume {
    /// The effective admission cap given a bound that certainly exceeds any
    /// useful admission count (e.g. the profile's max capacity).
    pub fn cap(&self, saturation_bound: u64) -> u64 {
        match *self {
            Volume::Count(k) => k,
            Volume::CapacityFilling => saturation_bound,
        }
    }
}

/// One component of a demand mixture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandComponent {
    /// The experiment class.
    pub class: ExperimentClass,
    /// How many experiments of this class arrive.
    pub volume: Volume,
}

/// A demand profile: a mixture of experiment classes (§4.3.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Demand {
    /// Mixture components.
    pub components: Vec<DemandComponent>,
}

impl Demand {
    /// A single class with a given volume.
    pub fn single(class: ExperimentClass, volume: Volume) -> Demand {
        Demand {
            components: vec![DemandComponent { class, volume }],
        }
    }

    /// One experiment of one class — the Figs. 4–5 workload.
    pub fn one_experiment(class: ExperimentClass) -> Demand {
        Demand::single(class, Volume::Count(1))
    }

    /// Capacity-filling single-class demand — the Figs. 6 & 9 workload.
    pub fn capacity_filling(class: ExperimentClass) -> Demand {
        Demand::single(class, Volume::CapacityFilling)
    }

    /// Two-class mixture with total volume `k_total` and fraction `sigma`
    /// of the second class — the Fig. 7 workload (σ is "the ratio between
    /// two types of experiments").
    ///
    /// # Panics
    /// Panics unless `0 ≤ sigma ≤ 1`.
    pub fn mixture(
        class1: ExperimentClass,
        class2: ExperimentClass,
        k_total: u64,
        sigma: f64,
    ) -> Demand {
        assert!((0.0..=1.0).contains(&sigma), "sigma must lie in [0, 1]");
        let k2 = (sigma * k_total as f64).round() as u64;
        let k1 = k_total - k2.min(k_total);
        Demand {
            components: vec![
                DemandComponent {
                    class: class1,
                    volume: Volume::Count(k1),
                },
                DemandComponent {
                    class: class2,
                    volume: Volume::Count(k2),
                },
            ],
        }
    }

    /// Number of mixture components.
    pub fn n_classes(&self) -> usize {
        self.components.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_canonical_classes() {
        let p2p = ExperimentClass::p2p();
        assert_eq!(p2p.min_size(), 41);
        assert_eq!(p2p.resources_per_location, 1);
        assert!((p2p.holding_time - 0.1).abs() < 1e-12);

        let cdn = ExperimentClass::cdn();
        assert_eq!(cdn.max_size(10_000), 500);
        assert_eq!(cdn.resources_per_location, 4);

        let m = ExperimentClass::measurement();
        assert_eq!(m.min_size(), 501);
        assert_eq!(m.max_size(300), 300);
    }

    #[test]
    fn volume_caps() {
        assert_eq!(Volume::Count(7).cap(100), 7);
        assert_eq!(Volume::CapacityFilling.cap(100), 100);
    }

    #[test]
    fn mixture_splits_volume() {
        let d = Demand::mixture(
            ExperimentClass::simple("a", 0.0, 1.0),
            ExperimentClass::simple("b", 700.0, 1.0),
            100,
            0.25,
        );
        assert_eq!(d.components[0].volume, Volume::Count(75));
        assert_eq!(d.components[1].volume, Volume::Count(25));
    }

    #[test]
    fn mixture_extremes() {
        let mk = |s| {
            Demand::mixture(
                ExperimentClass::simple("a", 0.0, 1.0),
                ExperimentClass::simple("b", 700.0, 1.0),
                60,
                s,
            )
        };
        let d0 = mk(0.0);
        assert_eq!(d0.components[0].volume, Volume::Count(60));
        assert_eq!(d0.components[1].volume, Volume::Count(0));
        let d1 = mk(1.0);
        assert_eq!(d1.components[0].volume, Volume::Count(0));
        assert_eq!(d1.components[1].volume, Volume::Count(60));
    }
}
