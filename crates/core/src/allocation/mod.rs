//! Resource allocation — the optimization (eq. 2) whose optimum defines
//! the federation's characteristic function `V(S)` in the commercial
//! scenario.
//!
//! Layering:
//!
//! * [`feasibility`] — Gale–Ryser realizability, max-total and balanced
//!   size-vector construction, explicit location assignment.
//! * [`analytic`] — the production optimizer ([`solve`]).
//! * [`exact`] — exhaustive reference solver for tiny instances
//!   ([`solve_exact`]), used to validate the analytic paths.
//! * [`greedy`] — FCFS heuristics ([`solve_greedy`]) for baseline
//!   comparisons.

pub mod analytic;
pub mod exact;
pub mod feasibility;
pub mod greedy;

pub use analytic::{solve, ClassAllocation, ProfileSolution, SolveError};
pub use exact::solve_exact;
pub use feasibility::{
    balanced_max_total_sizes, balanced_partition, is_realizable, max_total_sizes,
    realize_assignment, Assignment,
};
pub use greedy::{solve_greedy, GreedyPolicy};
