//! Exhaustive reference solver for eq. 2 on tiny instances.
//!
//! Enumerates every admission count per class and every descending size
//! vector (with Gale–Ryser pruning) and returns the true optimum. Its only
//! purpose is validating the analytic optimizer in tests — complexity is
//! exponential, so oversized inputs are rejected up front.

use super::analytic::{ClassAllocation, ProfileSolution, SolveError};
use super::feasibility::is_realizable;
use crate::experiment::Demand;
use crate::location::CapacityProfile;

/// Hard limits keeping the enumeration tractable.
const MAX_LOCATIONS: u64 = 16;
const MAX_EXPERIMENTS: u64 = 8;

/// Solves eq. 2 by brute force.
///
/// Unlike the analytic path, classes may mix utility shapes; mixed
/// `resources_per_location` is still unsupported (`r > 1` is scaled the
/// same way the analytic solver does, and must be uniform).
///
/// **Caveat:** admission counts are capped at 8 per class, so the result
/// is only the true optimum when no more than 8 experiments of a class
/// can be useful (e.g. `total_slots ≤ 8` for threshold-0 concave demand).
/// Validation tests generate instances within that envelope.
///
/// Instances exceeding the enumeration limits (`n_locations ≤ 16`, total
/// experiments ≤ 8) or mixing `resources_per_location` are rejected as a
/// [`SolveError`] instead of being ground through for hours.
///
/// # Errors
/// [`SolveError::TooManyLocations`] or
/// [`SolveError::ExperimentBudgetExceeded`] when the instance exceeds the
/// enumeration limits, and [`SolveError::MixedResourceClasses`] when
/// classes disagree on `resources_per_location`.
pub fn solve_exact(
    profile: &CapacityProfile,
    demand: &Demand,
) -> Result<ProfileSolution, SolveError> {
    if profile.n_locations() > MAX_LOCATIONS {
        return Err(SolveError::TooManyLocations {
            n: profile.n_locations(),
            max: MAX_LOCATIONS,
        });
    }
    let classes = &demand.components;
    if classes.is_empty() || profile.n_locations() == 0 {
        return Ok(ProfileSolution {
            total_utility: 0.0,
            per_class: vec![
                ClassAllocation {
                    admitted: 0,
                    sizes: Vec::new()
                };
                classes.len()
            ],
        });
    }
    let r = classes[0].class.resources_per_location;
    if classes.iter().any(|c| c.class.resources_per_location != r) {
        return Err(SolveError::MixedResourceClasses);
    }
    let scaled;
    let profile = if r == 1 {
        profile
    } else {
        scaled = CapacityProfile::from_groups(
            profile
                .groups()
                .iter()
                .map(|&(cap, count)| (cap / r, count))
                .collect(),
        );
        &scaled
    };

    // Admission caps per class.
    let caps: Vec<u64> = classes
        .iter()
        .map(|c| c.volume.cap(profile.total_slots()).min(MAX_EXPERIMENTS))
        .collect();
    let requested: u64 = caps.iter().sum();
    if requested > MAX_EXPERIMENTS * classes.len() as u64 {
        return Err(SolveError::ExperimentBudgetExceeded {
            requested,
            max: MAX_EXPERIMENTS,
        });
    }

    let mut best = ProfileSolution {
        total_utility: 0.0,
        per_class: vec![
            ClassAllocation {
                admitted: 0,
                sizes: Vec::new()
            };
            classes.len()
        ],
    };

    // Enumerate admission vectors (mixed radix).
    let mut admissions = vec![0u64; classes.len()];
    loop {
        if admissions.iter().sum::<u64>() <= MAX_EXPERIMENTS {
            enumerate_sizes(profile, demand, &admissions, &mut best);
        }
        let mut k = 0;
        loop {
            if k == classes.len() {
                return Ok(best);
            }
            if admissions[k] < caps[k] {
                admissions[k] += 1;
                break;
            }
            admissions[k] = 0;
            k += 1;
        }
    }
}

/// Enumerates per-experiment sizes for a fixed admission vector and updates
/// `best` when a realizable assignment improves on it.
fn enumerate_sizes(
    profile: &CapacityProfile,
    demand: &Demand,
    admissions: &[u64],
    best: &mut ProfileSolution,
) {
    // Flatten experiments: (class idx, lb, ub).
    let mut experiments: Vec<(usize, u64, u64)> = Vec::new();
    for (k, comp) in demand.components.iter().enumerate() {
        let lb = comp.class.min_size();
        let ub = comp.class.max_size(profile.n_locations());
        for _ in 0..admissions[k] {
            if ub < lb {
                return; // class cannot be admitted at all
            }
            experiments.push((k, lb, ub));
        }
    }
    let mut sizes = vec![0u64; experiments.len()];
    recurse(profile, demand, &experiments, &mut sizes, 0, best);
}

fn recurse(
    profile: &CapacityProfile,
    demand: &Demand,
    experiments: &[(usize, u64, u64)],
    sizes: &mut Vec<u64>,
    idx: usize,
    best: &mut ProfileSolution,
) {
    if idx == experiments.len() {
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        if !is_realizable(&sorted, profile) {
            return;
        }
        let utility: f64 = experiments
            .iter()
            .zip(sizes.iter())
            .map(|(&(k, _, _), &x)| demand.components[k].class.utility_of(x))
            .sum();
        if utility > best.total_utility {
            let mut per_class = vec![
                ClassAllocation {
                    admitted: 0,
                    sizes: Vec::new()
                };
                demand.components.len()
            ];
            for (&(k, _, _), &x) in experiments.iter().zip(sizes.iter()) {
                per_class[k].admitted += 1;
                per_class[k].sizes.push(x);
            }
            for c in &mut per_class {
                c.sizes.sort_unstable_by(|a, b| b.cmp(a));
            }
            *best = ProfileSolution {
                total_utility: utility,
                per_class,
            };
        }
        return;
    }
    let (_, lb, ub) = experiments[idx];
    for x in lb..=ub {
        sizes[idx] = x;
        // Prune: partial sums already infeasible.
        let mut sorted: Vec<u64> = sizes[..=idx].to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        if is_realizable(&sorted, profile) {
            recurse(profile, demand, experiments, sizes, idx + 1, best);
        }
    }
    sizes[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::analytic::solve;
    use crate::experiment::{ExperimentClass, Volume};

    fn profile(groups: &[(u64, u64)]) -> CapacityProfile {
        CapacityProfile::from_groups(groups.to_vec())
    }

    #[test]
    fn exact_matches_analytic_linear_single_class() {
        for (groups, l, vol) in [
            (&[(2u64, 4u64)][..], 1.0, Volume::CapacityFilling),
            (&[(3, 2), (1, 5)][..], 2.0, Volume::CapacityFilling),
            (&[(2, 3)][..], 0.0, Volume::Count(3)),
            (&[(4, 2), (2, 2)][..], 3.0, Volume::Count(2)),
        ] {
            let p = profile(groups);
            let demand = Demand::single(ExperimentClass::simple("x", l, 1.0), vol);
            let exact = solve_exact(&p, &demand).unwrap();
            let fast = solve(&p, &demand).unwrap();
            assert!(
                (exact.total_utility - fast.total_utility).abs() < 1e-9,
                "groups {groups:?} l={l} vol={vol:?}: exact {} vs analytic {}",
                exact.total_utility,
                fast.total_utility
            );
        }
    }

    #[test]
    fn exact_matches_analytic_concave_and_convex() {
        for d in [0.5, 0.8, 1.2, 2.0] {
            for groups in [&[(2u64, 4u64)][..], &[(3, 2), (1, 4)][..]] {
                let p = profile(groups);
                let demand = Demand::single(
                    ExperimentClass::simple("x", 1.0, d),
                    Volume::CapacityFilling,
                );
                let exact = solve_exact(&p, &demand).unwrap();
                let fast = solve(&p, &demand).unwrap();
                assert!(
                    (exact.total_utility - fast.total_utility).abs() < 1e-9,
                    "d={d} groups {groups:?}: exact {} vs analytic {}",
                    exact.total_utility,
                    fast.total_utility
                );
            }
        }
    }

    #[test]
    fn exact_matches_analytic_two_class_mixture() {
        let p = profile(&[(2, 5), (1, 3)]);
        let demand = Demand::mixture(
            ExperimentClass::simple("a", 0.0, 1.0),
            ExperimentClass::simple("b", 5.0, 1.0),
            4,
            0.5,
        );
        let exact = solve_exact(&p, &demand).unwrap();
        let fast = solve(&p, &demand).unwrap();
        assert!((exact.total_utility - fast.total_utility).abs() < 1e-9);
    }

    #[test]
    fn oversized_instances_are_rejected_not_enumerated() {
        let p = profile(&[(1, 20)]); // 20 locations > MAX_LOCATIONS
        let demand = Demand::single(ExperimentClass::simple("x", 0.0, 1.0), Volume::Count(1));
        assert_eq!(
            solve_exact(&p, &demand),
            Err(SolveError::TooManyLocations { n: 20, max: 16 })
        );
    }

    #[test]
    fn exact_handles_mixed_shapes() {
        // Analytic refuses mixed d; exact handles it.
        let p = profile(&[(2, 3)]);
        let demand = Demand {
            components: vec![
                crate::experiment::DemandComponent {
                    class: ExperimentClass::simple("a", 0.0, 0.5),
                    volume: Volume::Count(2),
                },
                crate::experiment::DemandComponent {
                    class: ExperimentClass::simple("b", 0.0, 2.0),
                    volume: Volume::Count(1),
                },
            ],
        };
        let exact = solve_exact(&p, &demand).unwrap();
        assert!(exact.total_utility > 0.0);
    }
}
