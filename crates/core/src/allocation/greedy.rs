//! Greedy allocation heuristics — the "simple" policies the paper
//! contrasts with optimal allocation.
//!
//! Two first-come-first-served heuristics:
//!
//! * **Max-diversity greedy**: each arriving experiment grabs *every*
//!   location with residual capacity (PlanetLab users deploying slices on
//!   all reachable nodes). Early arrivals over-consume diversity.
//! * **Minimal greedy**: each arriving experiment takes exactly its
//!   minimum admissible number of locations, preferring the
//!   highest-residual-capacity locations.
//!
//! Both can be strictly worse than the optimum (`fedval-bench` quantifies
//! the gap — the efficiency loss the paper attributes to naive policies).

use super::analytic::{ClassAllocation, ProfileSolution};
use crate::experiment::Demand;
use crate::location::CapacityProfile;

/// The greedy discipline to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyPolicy {
    /// Take every location with residual capacity.
    MaxDiversity,
    /// Take exactly the minimum admissible number of locations.
    Minimal,
}

/// Runs a greedy allocation: experiments arrive class-by-class in demand
/// order and are served FCFS under `policy`. Returns the same structure as
/// the optimizer for easy comparison.
pub fn solve_greedy(
    profile: &CapacityProfile,
    demand: &Demand,
    policy: GreedyPolicy,
) -> ProfileSolution {
    let classes = &demand.components;
    let mut per_class: Vec<ClassAllocation> = classes
        .iter()
        .map(|_| ClassAllocation {
            admitted: 0,
            sizes: Vec::new(),
        })
        .collect();
    if classes.is_empty() || profile.n_locations() == 0 {
        return ProfileSolution {
            total_utility: 0.0,
            per_class,
        };
    }

    // Residual capacity per location group, expanded to per-capacity-level
    // counters: groups[(cap, count)] → vector of (residual, count).
    let mut residual: Vec<(u64, u64)> = profile.groups().to_vec();
    let mut total_utility = 0.0;

    for (k, comp) in classes.iter().enumerate() {
        let r = comp.class.resources_per_location;
        let lb = comp.class.min_size();
        let cap_count = comp.volume.cap(profile.total_slots());
        for _ in 0..cap_count {
            // Locations currently able to host this class (residual ≥ r).
            let available: u64 = residual
                .iter()
                .filter(|&&(res, _)| res >= r)
                .map(|&(_, count)| count)
                .sum();
            let want = match policy {
                GreedyPolicy::MaxDiversity => comp.class.max_size(available),
                GreedyPolicy::Minimal => lb,
            };
            if want < lb || want > available {
                // Cannot serve any more experiments of this class.
                break;
            }
            // Consume: take locations with the largest residual first.
            let mut remaining = want;
            residual.sort_unstable_by_key(|&(res, _)| std::cmp::Reverse(res));
            let mut next_residual: Vec<(u64, u64)> = Vec::with_capacity(residual.len() + 1);
            for &(res, count) in &residual {
                if remaining > 0 && res >= r {
                    let take = remaining.min(count);
                    if take > 0 {
                        next_residual.push((res - r, take));
                    }
                    if count > take {
                        next_residual.push((res, count - take));
                    }
                    remaining -= take;
                } else {
                    next_residual.push((res, count));
                }
            }
            debug_assert_eq!(remaining, 0);
            residual = merge_groups(next_residual);
            per_class[k].admitted += 1;
            per_class[k].sizes.push(want);
            total_utility += comp.class.utility_of(want);
        }
        per_class[k].sizes.sort_unstable_by(|a, b| b.cmp(a));
    }

    ProfileSolution {
        total_utility,
        per_class,
    }
}

fn merge_groups(mut groups: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    groups.retain(|&(res, count)| res > 0 && count > 0);
    groups.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(groups.len());
    for (res, count) in groups {
        match merged.last_mut() {
            Some(last) if last.0 == res => last.1 += count,
            _ => merged.push((res, count)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::analytic::solve;
    use crate::experiment::{ExperimentClass, Volume};

    fn profile(groups: &[(u64, u64)]) -> CapacityProfile {
        CapacityProfile::from_groups(groups.to_vec())
    }

    #[test]
    fn max_diversity_greedy_wastes_capacity() {
        // Fig. 8 setup intuition: caps (80×1, 20×2) locations... use a
        // small analogue: 2 locations cap 3, 2 locations cap 1; l = 1
        // (s_min = 2). Greedy exp 1 takes all 4; exp 2 takes remaining
        // {3-cap} 2 locations; exp 3 takes 2 — then cap-1 locations dead.
        let p = profile(&[(3, 2), (1, 2)]);
        let demand = Demand::single(
            ExperimentClass::simple("x", 1.0, 1.0),
            Volume::CapacityFilling,
        );
        let greedy = solve_greedy(&p, &demand, GreedyPolicy::MaxDiversity);
        let optimal = solve(&p, &demand).unwrap();
        assert!(greedy.total_utility <= optimal.total_utility);
        assert_eq!(optimal.total_utility, 8.0); // B(3) = 2·3 + 2·1 = 8
        assert_eq!(greedy.total_utility, 8.0); // here greedy happens to tie
    }

    #[test]
    fn minimal_greedy_underuses_diversity() {
        // One experiment, threshold 2 (s_min = 3), 5 locations: minimal
        // takes 3 (utility 3), optimal takes all 5.
        let p = profile(&[(1, 5)]);
        let demand = Demand::one_experiment(ExperimentClass::simple("x", 2.0, 1.0));
        let minimal = solve_greedy(&p, &demand, GreedyPolicy::Minimal);
        let optimal = solve(&p, &demand).unwrap();
        assert_eq!(minimal.total_utility, 3.0);
        assert_eq!(optimal.total_utility, 5.0);
    }

    #[test]
    fn greedy_never_beats_optimal_linear() {
        for groups in [&[(2u64, 4u64)][..], &[(3, 2), (1, 5)][..], &[(5, 1)][..]] {
            for l in [0.0, 1.0, 3.0] {
                let p = profile(groups);
                let demand = Demand::single(
                    ExperimentClass::simple("x", l, 1.0),
                    Volume::CapacityFilling,
                );
                let optimal = solve(&p, &demand).unwrap().total_utility;
                for policy in [GreedyPolicy::MaxDiversity, GreedyPolicy::Minimal] {
                    let g = solve_greedy(&p, &demand, policy).total_utility;
                    assert!(
                        g <= optimal + 1e-9,
                        "greedy {policy:?} beat optimal on {groups:?} l={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_starves_later_diversity_class() {
        // Class A (l=0) arrives first and grabs everything; class B (l=2)
        // is starved under MaxDiversity.
        let p = profile(&[(1, 4)]);
        let demand = Demand::mixture(
            ExperimentClass::simple("a", 0.0, 1.0),
            ExperimentClass::simple("b", 2.0, 1.0),
            2,
            0.5,
        );
        let greedy = solve_greedy(&p, &demand, GreedyPolicy::MaxDiversity);
        assert_eq!(greedy.per_class[0].admitted, 1);
        assert_eq!(greedy.per_class[1].admitted, 0, "B starved");
        let optimal = solve(&p, &demand).unwrap();
        assert!(optimal.total_utility >= greedy.total_utility);
    }

    #[test]
    fn respects_resources_per_location() {
        // r = 2 on capacity-3 locations: one serve leaves residual 1,
        // insufficient for another r=2 sliver.
        let p = profile(&[(3, 4)]);
        let demand = Demand::single(
            ExperimentClass::simple("x", 0.0, 1.0).with_resources(2),
            Volume::CapacityFilling,
        );
        let g = solve_greedy(&p, &demand, GreedyPolicy::MaxDiversity);
        assert_eq!(g.per_class[0].admitted, 1);
        assert_eq!(g.per_class[0].sizes, vec![4]);
    }
}
