//! Degree-sequence feasibility and size-vector construction.
//!
//! An allocation assigns each admitted experiment a set of **distinct**
//! locations; a location of capacity `c` can serve at most `c` experiments.
//! Viewing experiments and locations as the two sides of a bipartite graph,
//! a vector of experiment sizes `x₁ ≥ x₂ ≥ … ≥ x_m` is realizable iff the
//! Gale–Ryser condition holds:
//!
//! ```text
//! Σ_{j ≤ k} xⱼ ≤ B(k) = Σ_ℓ min(c_ℓ, k)        for every k ≤ m
//! ```
//!
//! (`B` is provided by [`CapacityProfile::usable_slots`].) All optimizers in
//! this module reason over sorted size vectors through this condition and
//! only construct explicit location assignments at the end
//! ([`realize_assignment`], the constructive half of Gale–Ryser).

use crate::location::{CapacityProfile, LocationId, LocationOffer};

/// Checks the Gale–Ryser condition for a **descending** size vector.
///
/// Also checks `xⱼ ≤ n_locations` (an experiment cannot use more distinct
/// locations than exist), which is the `k = 1` condition combined with
/// sortedness, and therefore implied — asserted here for clarity only.
pub fn is_realizable(sizes_desc: &[u64], profile: &CapacityProfile) -> bool {
    debug_assert!(
        sizes_desc.windows(2).all(|w| w[0] >= w[1]),
        "must be sorted"
    );
    let mut prefix = 0u64;
    for (k, &x) in sizes_desc.iter().enumerate() {
        if x > profile.n_locations() {
            return false;
        }
        prefix += x;
        if prefix > profile.usable_slots(k as u64 + 1) {
            return false;
        }
    }
    true
}

/// Maximum achievable total `Σ xⱼ` over descending vectors with
/// per-position bounds `lb ≤ x ≤ ub` (both descending) that satisfy
/// Gale–Ryser. Returns the maximizing vector, or `None` if even `lb` is
/// infeasible.
///
/// Greedy from the largest position with *reservation*: when fixing `xⱼ`
/// we must leave enough budget for the lower bounds of every later
/// position, i.e. for all `k > j`: `P_j + Σ_{i=j+1..k} lbᵢ ≤ B(k)`.
/// Because the prefix constraints form a chain (a polymatroid), this
/// greedy is exact.
pub fn max_total_sizes(profile: &CapacityProfile, lb: &[u64], ub: &[u64]) -> Option<Vec<u64>> {
    let m = lb.len();
    if ub.len() != m {
        // Mismatched bound vectors have no feasible interpretation.
        return None;
    }
    debug_assert!(lb.windows(2).all(|w| w[0] >= w[1]), "lb must be descending");
    if m == 0 {
        return Some(Vec::new());
    }
    if !is_realizable(lb, profile) {
        return None;
    }
    // Suffix sums of lower bounds: reserve[j] = Σ_{i ≥ j} lb[i].
    let mut reserve = vec![0u64; m + 1];
    for j in (0..m).rev() {
        reserve[j] = reserve[j + 1] + lb[j];
    }

    let mut x = vec![0u64; m];
    let mut prefix = 0u64;
    for j in 0..m {
        // Cap from every future prefix constraint k ≥ j (0-indexed):
        //   x_j ≤ B(k+1) − prefix − Σ_{i=j+1..k} lb_i
        // The tightest k is found by scanning; B is cheap. (k ranges j..m−1.)
        let mut cap = u64::MAX;
        for k in j..m {
            let b = profile.usable_slots(k as u64 + 1);
            let reserved_between = reserve[j + 1] - reserve[k + 1];
            let budget = b.saturating_sub(prefix + reserved_between);
            cap = cap.min(budget);
            // Once budgets stop decreasing we could break, but m is small.
        }
        let upper = ub[j]
            .min(profile.n_locations())
            .min(if j > 0 { x[j - 1] } else { u64::MAX });
        let val = cap.min(upper).max(lb[j]);
        if val < lb[j] || val > upper {
            // Reservation made lb unreachable — cannot happen if lb was
            // realizable, kept as a defensive check.
            return None;
        }
        x[j] = val;
        prefix += val;
    }
    debug_assert!(is_realizable(&x, profile));
    Some(x)
}

/// The most **balanced** descending vector with the same total as
/// [`max_total_sizes`] would produce, subject to the same constraints.
///
/// Starts from the greedy max-total vector and performs Robin-Hood
/// transfers (largest → smallest) — each transfer preserves the total,
/// keeps the vector within bounds, and can only relax the prefix sums, so
/// Gale–Ryser is maintained.
pub fn balanced_max_total_sizes(
    profile: &CapacityProfile,
    lb: &[u64],
    ub: &[u64],
) -> Option<Vec<u64>> {
    let mut x = max_total_sizes(profile, lb, ub)?;
    let m = x.len();
    if m < 2 {
        return Some(x);
    }
    // Repeatedly move one unit from the largest surplus slot to the
    // smallest deficit slot, while the move keeps sortedness-compatible
    // bounds and prefix feasibility. Because each move strictly decreases
    // the sum of squares, this terminates.
    loop {
        // Find donor: position with the largest x[j] that can give a unit
        // (x[j] − 1 ≥ lb[j]); recipient: smallest x[j] that can take one
        // (x[j] + 1 ≤ ub[j]).
        let mut donor: Option<usize> = None;
        let mut recipient: Option<usize> = None;
        for j in 0..m {
            if x[j] > lb[j] && donor.is_none_or(|d| x[j] > x[d]) {
                donor = Some(j);
            }
            if x[j] < ub[j] && recipient.is_none_or(|r| x[j] < x[r]) {
                recipient = Some(j);
            }
        }
        let (Some(d), Some(r)) = (donor, recipient) else {
            break;
        };
        if x[d] <= x[r] + 1 {
            break; // already balanced within one unit
        }
        x[d] -= 1;
        x[r] += 1;
        let mut sorted = x.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        if !is_realizable(&sorted, profile) || !respects_bounds(&x, lb, ub) {
            // Revert and stop: no further balancing possible.
            x[d] += 1;
            x[r] -= 1;
            break;
        }
    }
    x.sort_unstable_by(|a, b| b.cmp(a));
    Some(x)
}

fn respects_bounds(x: &[u64], lb: &[u64], ub: &[u64]) -> bool {
    x.iter()
        .zip(lb)
        .zip(ub)
        .all(|((&v, &l), &u)| v >= l && v <= u)
}

/// Splits `total` into `m` parts as evenly as possible (descending).
pub fn balanced_partition(total: u64, m: u64) -> Vec<u64> {
    if m == 0 {
        return Vec::new();
    }
    let q = total / m;
    let r = total % m;
    let mut parts = Vec::with_capacity(m as usize);
    for j in 0..m {
        parts.push(if j < r { q + 1 } else { q });
    }
    parts
}

/// Constructively realizes a feasible size vector as a location assignment
/// (the algorithmic half of Gale–Ryser): each experiment, in descending
/// size order, takes the locations with the most remaining capacity.
///
/// Returns per-location usage keyed by location id, plus per-experiment
/// location lists. Panics (debug) if the vector is infeasible.
pub fn realize_assignment(offer: &LocationOffer, sizes_desc: &[u64]) -> Option<Assignment> {
    let mut residual: Vec<(LocationId, u64)> = offer.iter().collect();
    let mut experiments = Vec::with_capacity(sizes_desc.len());
    for &x in sizes_desc {
        if x as usize > residual.len() {
            return None;
        }
        // Pick the x locations with the largest residual capacity.
        let mut order: Vec<usize> = (0..residual.len()).collect();
        order.sort_by(|&a, &b| residual[b].1.cmp(&residual[a].1));
        let chosen: Vec<usize> = order.into_iter().take(x as usize).collect();
        if chosen.iter().any(|&i| residual[i].1 == 0) {
            return None;
        }
        let mut locs = Vec::with_capacity(x as usize);
        for &i in &chosen {
            residual[i].1 -= 1;
            locs.push(residual[i].0);
        }
        locs.sort_unstable();
        experiments.push(locs);
    }
    let usage: Vec<(LocationId, u64)> = offer
        .iter()
        .zip(&residual)
        .map(|((id, cap), &(rid, rem))| {
            debug_assert_eq!(id, rid);
            (id, cap - rem)
        })
        .collect();
    Some(Assignment { experiments, usage })
}

/// An explicit realization of an allocation.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Location ids used by each experiment (sorted), in the order the
    /// size vector was given.
    pub experiments: Vec<Vec<LocationId>>,
    /// `(location, slots used)` for every offered location.
    pub usage: Vec<(LocationId, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(groups: &[(u64, u64)]) -> CapacityProfile {
        CapacityProfile::from_groups(groups.to_vec())
    }

    #[test]
    fn gale_ryser_basics() {
        // 3 locations of capacity 2: B(1)=3, B(2)=6.
        let p = profile(&[(2, 3)]);
        assert!(is_realizable(&[3, 3], &p));
        assert!(is_realizable(&[3, 2, 1], &p));
        assert!(!is_realizable(&[4], &p)); // more than 3 locations
        assert!(!is_realizable(&[3, 3, 1], &p)); // total 7 > 6
    }

    #[test]
    fn gale_ryser_prefix_binds() {
        // Locations caps {10, 1}: B(1)=2, B(2)=3. Sizes (2,2): prefix₂=4>3.
        let p = profile(&[(10, 1), (1, 1)]);
        assert!(is_realizable(&[2, 1], &p));
        assert!(!is_realizable(&[2, 2], &p));
    }

    #[test]
    fn max_total_without_lower_bounds() {
        let p = profile(&[(80, 100), (20, 400)]); // Fig. 6 coalition {1,2}
        let m = 40;
        let lb = vec![1u64; m];
        let ub = vec![p.n_locations(); m];
        let x = max_total_sizes(&p, &lb, &ub).unwrap();
        let total: u64 = x.iter().sum();
        assert_eq!(total, p.usable_slots(m as u64)); // B(40) = 12000
    }

    #[test]
    fn max_total_with_threshold_lower_bounds() {
        // Single class with s_min = 501 on the Fig. 6 {1,2} coalition:
        // m·501 ≤ B(m) ⇒ m ≤ 8000/(501−100)·… checked against theory:
        // feasible m ≤ ⌊8000/401⌋ = 19 (for m ≤ 20, B(m) = 500m ≥ 501m is
        // false!) — recompute: for m ≤ 20, B(m) = 500m < 501m ⇒ infeasible
        // for every m ≥ 1? B(1) = 500 < 501 ⇒ even one experiment cannot
        // get 501 distinct locations… n_locations = 500 < 501. Infeasible.
        let p = profile(&[(80, 100), (20, 400)]);
        assert_eq!(max_total_sizes(&p, &[501], &[p.n_locations()]), None);
    }

    #[test]
    fn max_total_respects_reservations() {
        // Caps {1,1,1}: B(k) = 3. lb = (2,1): greedy must hold x₁ to 2.
        let p = profile(&[(1, 3)]);
        let x = max_total_sizes(&p, &[2, 1], &[3, 3]).unwrap();
        assert_eq!(x.iter().sum::<u64>(), 3);
        assert!(x[0] >= 2 && x[1] >= 1);
    }

    #[test]
    fn balanced_respects_total_and_bounds() {
        let p = profile(&[(20, 400), (80, 100)]);
        let m = 40usize;
        let lb = vec![101u64; m];
        let ub = vec![p.n_locations(); m];
        let greedy = max_total_sizes(&p, &lb, &ub).unwrap();
        let balanced = balanced_max_total_sizes(&p, &lb, &ub).unwrap();
        assert_eq!(
            greedy.iter().sum::<u64>(),
            balanced.iter().sum::<u64>(),
            "balancing must preserve the total"
        );
        let spread_g = greedy.first().unwrap() - greedy.last().unwrap();
        let spread_b = balanced.first().unwrap() - balanced.last().unwrap();
        assert!(spread_b <= spread_g);
        assert!(is_realizable(&balanced, &p));
    }

    #[test]
    fn balanced_partition_shapes() {
        assert_eq!(balanced_partition(10, 3), vec![4, 3, 3]);
        assert_eq!(balanced_partition(9, 3), vec![3, 3, 3]);
        assert_eq!(balanced_partition(0, 2), vec![0, 0]);
        assert!(balanced_partition(5, 0).is_empty());
    }

    #[test]
    fn realization_matches_sizes_and_capacity() {
        let offer = LocationOffer::merge([
            &LocationOffer::contiguous(0, 3, 2),
            &LocationOffer::contiguous(3, 2, 1),
        ]);
        // 5 locations, caps (2,2,2,1,1). Sizes (5,3): B(1)=5 ✓, B(2)=8 ✓.
        let a = realize_assignment(&offer, &[5, 3]).unwrap();
        assert_eq!(a.experiments[0].len(), 5);
        assert_eq!(a.experiments[1].len(), 3);
        // Distinctness within an experiment.
        let mut e0 = a.experiments[0].clone();
        e0.dedup();
        assert_eq!(e0.len(), 5);
        // No location over capacity.
        for &(id, used) in &a.usage {
            assert!(used <= offer.capacity_at(id));
        }
        // Total usage equals total size.
        let used: u64 = a.usage.iter().map(|&(_, u)| u).sum();
        assert_eq!(used, 8);
    }

    #[test]
    fn realization_rejects_infeasible() {
        let offer = LocationOffer::contiguous(0, 2, 1);
        assert!(realize_assignment(&offer, &[2, 2]).is_none());
    }

    #[test]
    fn max_total_zero_experiments() {
        let p = profile(&[(2, 2)]);
        assert_eq!(max_total_sizes(&p, &[], &[]), Some(vec![]));
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    fn offer_strategy() -> impl Strategy<Value = LocationOffer> {
        prop::collection::vec(1u64..=4, 1..=8).prop_map(|caps| {
            let mut offer = LocationOffer::new();
            for (i, c) in caps.into_iter().enumerate() {
                offer.add(i as u32, c);
            }
            offer
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The analytical condition and the constructive algorithm must
        /// agree on every instance: `is_realizable` ⟺ `realize_assignment`
        /// succeeds.
        #[test]
        fn gale_ryser_matches_construction(
            offer in offer_strategy(),
            mut sizes in prop::collection::vec(1u64..=8, 1..=6),
        ) {
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            let profile = CapacityProfile::from_offer(&offer);
            let predicted = is_realizable(&sizes, &profile);
            let constructed = realize_assignment(&offer, &sizes);
            prop_assert_eq!(
                predicted,
                constructed.is_some(),
                "GR says {} but construction {} for sizes {:?} on {:?}",
                predicted,
                constructed.is_some(),
                sizes,
                profile.groups()
            );
            if let Some(a) = constructed {
                // Realization respects capacities and distinctness.
                for (&(id, used), (id2, cap)) in a.usage.iter().zip(offer.iter()) {
                    prop_assert_eq!(id, id2);
                    prop_assert!(used <= cap);
                }
                for (locs, &want) in a.experiments.iter().zip(&sizes) {
                    prop_assert_eq!(locs.len() as u64, want);
                    let mut dedup = locs.clone();
                    dedup.dedup();
                    prop_assert_eq!(dedup.len(), locs.len());
                }
            }
        }

        /// The greedy max-total vector is never beaten by any balanced
        /// partition of a larger total (soundness of the maximum).
        #[test]
        fn max_total_is_a_true_maximum(
            offer in offer_strategy(),
            m in 1usize..5,
            lb in 1u64..3,
        ) {
            let profile = CapacityProfile::from_offer(&offer);
            let lbs = vec![lb; m];
            let ubs = vec![profile.n_locations(); m];
            if let Some(sizes) = max_total_sizes(&profile, &lbs, &ubs) {
                let total: u64 = sizes.iter().sum();
                // No feasible vector with total + 1 exists: check all
                // balanced candidates (the easiest-to-pack shape).
                let probe = balanced_partition(total + 1, m as u64);
                let mut sorted = probe.clone();
                sorted.sort_unstable_by(|a, b| b.cmp(a));
                let bigger_possible = sorted.iter().all(|&x| x >= lb)
                    && sorted.iter().all(|&x| x <= profile.n_locations())
                    && is_realizable(&sorted, &profile);
                prop_assert!(
                    !bigger_possible,
                    "balanced {:?} beats greedy {:?}",
                    sorted,
                    sizes
                );
            }
        }
    }
}
