//! The production allocation optimizer (the paper's eq. 2).
//!
//! Given a coalition's [`CapacityProfile`] and a demand mixture, choose how
//! many experiments of each class to admit and how many distinct locations
//! to give each, maximizing total utility `Σ_k u_k(x_k)`.
//!
//! The optimizer exploits the structure established in
//! [`feasibility`](super::feasibility):
//!
//! * For linear utility (`d = 1`, all the paper's multi-experiment figures)
//!   total utility equals total location-slots used, so for each candidate
//!   admission vector the value is `max_total_sizes` and the search space is
//!   the (small) grid of admission counts.
//! * For `d ≠ 1` single-class demand, the optimal size vector given the
//!   admission count is the most balanced (concave `d`) or most spread
//!   (convex `d`) max-total vector, both constructible directly.
//! * A single experiment (Figs. 4–5) takes every location: `V = u(L_tot)`.
//!
//! Heterogeneous `resources_per_location` (`r > 1`) is supported for
//! single-class demand by integer-scaling capacities (`c → ⌊c/r⌋`); mixed-`r`
//! mixtures are the exact solver's and the simulator's job (see DESIGN.md).

use super::feasibility::{balanced_partition, is_realizable, max_total_sizes};
use crate::experiment::Demand;
use crate::location::CapacityProfile;

/// The admission decision and sizes for one demand class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassAllocation {
    /// Number of experiments of the class admitted.
    pub admitted: u64,
    /// Distinct-location counts assigned to each admitted experiment
    /// (descending).
    pub sizes: Vec<u64>,
}

/// An optimal (or, where documented, best-effort) solution of eq. 2 on a
/// capacity profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSolution {
    /// Total utility `Σ u_k(x_k)` — the coalition value `V(S)` in the
    /// commercial scenario.
    pub total_utility: f64,
    /// Per-class admissions, aligned with the demand components.
    pub per_class: Vec<ClassAllocation>,
}

impl ProfileSolution {
    /// The empty (zero-value) solution for `n_classes` classes.
    fn zero(n_classes: usize) -> ProfileSolution {
        ProfileSolution {
            total_utility: 0.0,
            per_class: vec![
                ClassAllocation {
                    admitted: 0,
                    sizes: Vec::new(),
                };
                n_classes
            ],
        }
    }

    /// All admitted sizes tagged by class, descending by size — the input
    /// to [`realize_assignment`](super::feasibility::realize_assignment).
    pub fn sizes_desc(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self
            .per_class
            .iter()
            .enumerate()
            .flat_map(|(k, c)| c.sizes.iter().map(move |&s| (k, s)))
            .collect();
        v.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
        v
    }

    /// Total location-slots consumed.
    pub fn slots_used(&self) -> u64 {
        self.per_class
            .iter()
            .map(|c| c.sizes.iter().sum::<u64>())
            .sum()
    }
}

/// Errors from the analytic optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Demand mixes classes with different `resources_per_location`; the
    /// analytic optimizer only scales capacities for a single class.
    MixedResourceClasses,
    /// Demand mixes classes with different utility shapes `d`; the paper
    /// assumes a common `d` ("we assume that d is the same for all users").
    MixedShapes,
    /// `d ≠ 1` with more than one class is outside the analytic fast paths.
    NonlinearMixture,
    /// The admission-grid search would exceed the configured budget.
    SearchTooLarge,
    /// The instance has more locations than the exhaustive solver can
    /// enumerate.
    TooManyLocations {
        /// Locations in the instance.
        n: u64,
        /// Maximum the solver supports.
        max: u64,
    },
    /// The exhaustive solver's per-run experiment budget was exceeded.
    ExperimentBudgetExceeded {
        /// Total admission cap requested across classes.
        requested: u64,
        /// Maximum the solver supports.
        max: u64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::MixedResourceClasses => {
                write!(f, "mixed resources-per-location across classes")
            }
            SolveError::MixedShapes => write!(f, "mixed utility shapes across classes"),
            SolveError::NonlinearMixture => {
                write!(
                    f,
                    "d != 1 with multiple classes is not analytically supported"
                )
            }
            SolveError::SearchTooLarge => write!(f, "admission grid search too large"),
            SolveError::TooManyLocations { n, max } => {
                write!(f, "instance has {n} locations; exhaustive solver supports {max}")
            }
            SolveError::ExperimentBudgetExceeded { requested, max } => {
                write!(
                    f,
                    "admission caps total {requested}; exhaustive solver budget is {max} per class"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Grid budget for the admission scan.
const MAX_GRID: u64 = 4_000_000;

/// Solves eq. 2 on `profile` for `demand`.
///
/// # Errors
/// [`SolveError::MixedResourceClasses`], [`SolveError::MixedShapes`], or
/// [`SolveError::NonlinearMixture`] when the demand mix falls outside the
/// analytic fast paths, and [`SolveError::SearchTooLarge`] when the
/// admission-grid scan would exceed its budget.
pub fn solve(profile: &CapacityProfile, demand: &Demand) -> Result<ProfileSolution, SolveError> {
    let classes = &demand.components;
    if classes.is_empty() || profile.n_locations() == 0 {
        return Ok(ProfileSolution::zero(classes.len()));
    }

    // Common shape check (the paper's global d).
    let d = classes[0].class.utility.shape;
    if classes
        .iter()
        .any(|c| (c.class.utility.shape - d).abs() > 1e-12)
    {
        return Err(SolveError::MixedShapes);
    }

    // Resource scaling: only uniform r is supported analytically.
    let r = classes[0].class.resources_per_location;
    if classes.iter().any(|c| c.class.resources_per_location != r) {
        return Err(SolveError::MixedResourceClasses);
    }
    let scaled;
    let profile = if r == 1 {
        profile
    } else {
        scaled = CapacityProfile::from_groups(
            profile
                .groups()
                .iter()
                .map(|&(cap, count)| (cap / r, count))
                .collect(),
        );
        &scaled
    };
    if profile.n_locations() == 0 {
        return Ok(ProfileSolution::zero(classes.len()));
    }

    // Fast path: one class, one experiment (Figs. 4–5).
    if classes.len() == 1 {
        let class = &classes[0].class;
        let cap = classes[0]
            .volume
            .cap(saturation_bound(profile, class.min_size()));
        if cap == 0 {
            return Ok(ProfileSolution::zero(1));
        }
        if cap == 1 {
            return Ok(solve_single_experiment(profile, demand));
        }
        return solve_single_class(profile, demand, d, cap);
    }

    if (d - 1.0).abs() > 1e-12 {
        return Err(SolveError::NonlinearMixture);
    }
    solve_linear_mixture(profile, demand)
}

/// Largest admission count worth considering: the largest `m` with
/// `m` copies of `min_size` realizable (Gale–Ryser region is an interval
/// because `B` is concave), found by binary search; 0 if even one
/// experiment does not fit.
fn saturation_bound(profile: &CapacityProfile, min_size: u64) -> u64 {
    let feasible = |m: u64| -> bool {
        if m == 0 {
            return true;
        }
        min_size <= profile.n_locations() && m * min_size.max(1) <= profile.usable_slots(m)
    };
    if !feasible(1) {
        return 0;
    }
    let mut lo = 1u64;
    let mut hi = profile.total_slots().max(1);
    if feasible(hi) {
        return hi;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// One experiment of one class: give it everything useful.
fn solve_single_experiment(profile: &CapacityProfile, demand: &Demand) -> ProfileSolution {
    let class = &demand.components[0].class;
    let size = class.max_size(profile.n_locations());
    let utility = class.utility_of(size);
    if utility <= 0.0 {
        return ProfileSolution::zero(1);
    }
    ProfileSolution {
        total_utility: utility,
        per_class: vec![ClassAllocation {
            admitted: 1,
            sizes: vec![size],
        }],
    }
}

/// Single class, many experiments, any `d`.
///
/// * `d = 1`: utility is the slot total, which is non-decreasing in the
///   admission count, so the answer is closed-form at `m* = min(cap, m⁰)`
///   with `T = min(B(m*), m*·ub)` and balanced sizes.
/// * `d < 1`: for each `m`, balanced sizes over total `min(B(m), m·ub)`
///   are optimal (Schur-concavity); utility per `m` is O(1), full scan.
/// * `d > 1`: for each `m`, the greedy max-total (maximally spread) vector
///   is optimal (Schur-convexity); its construction is O(m²), so the scan
///   is capped — convex utility favors few large experiments, so small `m`
///   dominates and the cap is immaterial in practice.
fn solve_single_class(
    profile: &CapacityProfile,
    demand: &Demand,
    d: f64,
    cap: u64,
) -> Result<ProfileSolution, SolveError> {
    let class = &demand.components[0].class;
    let lb = class.min_size();
    let ub = class.max_size(profile.n_locations());
    if ub < lb {
        return Ok(ProfileSolution::zero(1));
    }
    let m_max = saturation_bound(profile, lb).min(cap);
    if m_max == 0 {
        return Ok(ProfileSolution::zero(1));
    }

    // Balanced sizes for admission count m, each clamped to [lb, ub];
    // total = min(B(m), m·ub). Feasible for every m ≤ m⁰ (see DESIGN.md).
    let balanced_for = |m: u64| -> Vec<u64> {
        let total = profile.usable_slots(m).min(m * ub);
        balanced_partition(total, m)
    };
    let utility_of_sizes =
        |sizes: &[u64]| -> f64 { sizes.iter().map(|&x| class.utility_of(x)).sum() };

    let (m_best, sizes) = if (d - 1.0).abs() < 1e-12 {
        // Utility = total T(m) = min(B(m), m·ub), non-decreasing in m;
        // among the (many) maximizers report the *smallest* admission
        // count — the canonical allocation (T is monotone, binary search).
        let t = |m: u64| profile.usable_slots(m).min(m * ub);
        let target = t(m_max);
        let mut lo = 1u64;
        let mut hi = m_max;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if t(mid) == target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (lo, balanced_for(lo))
    } else if d < 1.0 {
        // O(1) utility per m via the balanced two-level shape: r parts of
        // size q+1 and m−r of size q, all ≥ lb because m ≤ m⁰.
        let mut best = (f64::MIN, 1u64);
        for m in 1..=m_max {
            let total = profile.usable_slots(m).min(m * ub);
            let q = total / m;
            let r = total % m;
            let u = r as f64 * ((q + 1) as f64).powf(d) + (m - r) as f64 * (q as f64).powf(d);
            if u > best.0 {
                best = (u, m);
            }
        }
        (best.1, balanced_for(best.1))
    } else {
        // Convex d: scan small m with the spread (greedy max-total) vector.
        const SPREAD_SCAN_MAX: u64 = 512;
        let scan_to = m_max.min(SPREAD_SCAN_MAX);
        let mut best: Option<(f64, Vec<u64>)> = None;
        for m in 1..=scan_to {
            let lbs = vec![lb; m as usize];
            let ubs = vec![ub; m as usize];
            let Some(sizes) = max_total_sizes(profile, &lbs, &ubs) else {
                continue;
            };
            let u = utility_of_sizes(&sizes);
            if best.as_ref().is_none_or(|(bu, _)| u > *bu) {
                best = Some((u, sizes));
            }
        }
        // Also consider full saturation (cheap balanced shape) in case the
        // scan cap bit.
        if m_max > scan_to {
            let sizes = balanced_for(m_max);
            let u = utility_of_sizes(&sizes);
            if best.as_ref().is_none_or(|(bu, _)| u > *bu) {
                best = Some((u, sizes));
            }
        }
        let Some((_, sizes)) = best else {
            return Ok(ProfileSolution::zero(1));
        };
        (sizes.len() as u64, sizes)
    };

    let utility = utility_of_sizes(&sizes);
    if utility <= 0.0 {
        return Ok(ProfileSolution::zero(1));
    }
    Ok(ProfileSolution {
        total_utility: utility,
        per_class: vec![ClassAllocation {
            admitted: m_best,
            sizes,
        }],
    })
}

/// Linear utility (`d = 1`), arbitrary class mixture: scan the admission
/// grid; each cell's value is the max-total greedy.
///
/// Classes with `min_size == 1` ("filler" classes — any location helps)
/// are not scanned: admitting another size-1 experiment never reduces the
/// achievable total, so for each grid cell of the threshold classes the
/// single filler class (when there is exactly one) is set to its largest
/// feasible count by binary search.
fn solve_linear_mixture(
    profile: &CapacityProfile,
    demand: &Demand,
) -> Result<ProfileSolution, SolveError> {
    let classes = &demand.components;
    // Per-class bounds.
    let mut caps = Vec::with_capacity(classes.len());
    for c in classes {
        let lb = c.class.min_size();
        let sat = saturation_bound(profile, lb);
        caps.push(c.volume.cap(sat).min(sat));
    }

    // Identify the filler optimization opportunity.
    let fillers: Vec<usize> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.class.min_size() == 1)
        .map(|(k, _)| k)
        .collect();
    let filler = (fillers.len() == 1).then(|| fillers[0]);

    let grid: u64 = caps
        .iter()
        .enumerate()
        .filter(|&(k, _)| Some(k) != filler)
        .map(|(_, &c)| c + 1)
        .product();
    if grid > MAX_GRID {
        return Err(SolveError::SearchTooLarge);
    }

    // (utility, admission counts, class-tagged sizes)
    type Best = (f64, Vec<u64>, Vec<(usize, u64)>);
    let mut best: Option<Best> = None;
    let mut admissions = vec![0u64; classes.len()];
    loop {
        // Evaluate current admission vector (filling the filler class).
        let candidate = match filler {
            None => evaluate_linear(profile, demand, &admissions)
                .map(|(u, t)| (u, admissions.clone(), t)),
            Some(fk) => {
                // Binary search the largest feasible filler count: the lb
                // vector's feasibility is monotone in it.
                let mut trial = admissions.clone();
                let feasible = |cnt: u64, trial: &mut Vec<u64>| {
                    trial[fk] = cnt;
                    evaluate_linear(profile, demand, trial)
                };
                if feasible(0, &mut trial).is_none() {
                    None
                } else {
                    let (mut lo, mut hi) = (0u64, caps[fk]);
                    while lo < hi {
                        let mid = lo + (hi - lo).div_ceil(2);
                        if feasible(mid, &mut trial).is_some() {
                            lo = mid;
                        } else {
                            hi = mid - 1;
                        }
                    }
                    feasible(lo, &mut trial).map(|(u, t)| (u, trial.clone(), t))
                }
            }
        };
        if let Some((utility, adm, tagged)) = candidate {
            if best.as_ref().is_none_or(|(u, _, _)| utility > *u) {
                best = Some((utility, adm, tagged));
            }
        }
        // Advance mixed-radix counter over non-filler classes.
        let mut k = 0;
        loop {
            if k == classes.len() {
                // Done scanning.
                let Some((utility, admissions, tagged)) = best else {
                    return Ok(ProfileSolution::zero(classes.len()));
                };
                return Ok(assemble(classes.len(), utility, &admissions, tagged));
            }
            if Some(k) == filler {
                k += 1;
                continue;
            }
            if admissions[k] < caps[k] {
                admissions[k] += 1;
                break;
            }
            admissions[k] = 0;
            k += 1;
        }
    }
}

/// Value of one admission vector under linear utility. Returns the total
/// plus the class-tagged size vector, or `None` if infeasible.
fn evaluate_linear(
    profile: &CapacityProfile,
    demand: &Demand,
    admissions: &[u64],
) -> Option<(f64, Vec<(usize, u64)>)> {
    // Build (lb, ub, class) triples sorted by descending lb (exchange
    // argument: larger thresholds take the larger sorted positions).
    let mut spec: Vec<(u64, u64, usize)> = Vec::new();
    for (k, comp) in demand.components.iter().enumerate() {
        let lb = comp.class.min_size();
        let ub = comp.class.max_size(profile.n_locations());
        if ub < lb && admissions[k] > 0 {
            return None;
        }
        for _ in 0..admissions[k] {
            spec.push((lb, ub, k));
        }
    }
    spec.sort_by_key(|&(lb, _, _)| std::cmp::Reverse(lb));
    let lbs: Vec<u64> = spec.iter().map(|s| s.0).collect();
    let ubs: Vec<u64> = spec.iter().map(|s| s.1).collect();
    let sizes = max_total_sizes(profile, &lbs, &ubs)?;
    debug_assert!(is_realizable(&sizes, profile));
    let total: u64 = sizes.iter().sum();
    let tagged: Vec<(usize, u64)> = spec
        .iter()
        .zip(&sizes)
        .map(|(&(_, _, k), &x)| (k, x))
        .collect();
    Some((total as f64, tagged))
}

fn assemble(
    n_classes: usize,
    utility: f64,
    admissions: &[u64],
    tagged: Vec<(usize, u64)>,
) -> ProfileSolution {
    let mut per_class = vec![
        ClassAllocation {
            admitted: 0,
            sizes: Vec::new(),
        };
        n_classes
    ];
    for (k, size) in tagged {
        per_class[k].sizes.push(size);
    }
    for (k, c) in per_class.iter_mut().enumerate() {
        c.sizes.sort_unstable_by(|a, b| b.cmp(a));
        c.admitted = admissions[k];
        debug_assert_eq!(c.sizes.len() as u64, c.admitted);
    }
    ProfileSolution {
        total_utility: utility,
        per_class,
    }
}

impl crate::experiment::ExperimentClass {
    /// Utility of an experiment of this class assigned `x` locations.
    pub fn utility_of(&self, x: u64) -> f64 {
        use crate::utility::Utility;
        self.utility.eval(x as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentClass, Volume};
    use crate::location::CapacityProfile;

    fn profile(groups: &[(u64, u64)]) -> CapacityProfile {
        CapacityProfile::from_groups(groups.to_vec())
    }

    fn single_class(l: f64, volume: Volume) -> Demand {
        Demand::single(ExperimentClass::simple("x", l, 1.0), volume)
    }

    #[test]
    fn single_experiment_takes_all_locations() {
        // Fig. 4 coalition {2,3}: 1200 locations, threshold 500 ⇒ V = 1200.
        let p = profile(&[(1, 1200)]);
        let s = solve(&p, &single_class(500.0, Volume::Count(1))).unwrap();
        assert_eq!(s.total_utility, 1200.0);
        assert_eq!(s.per_class[0].sizes, vec![1200]);
    }

    #[test]
    fn single_experiment_below_threshold_is_blocked() {
        // Fig. 4 coalition {1,2}: 500 locations, threshold 500 (strict).
        let p = profile(&[(1, 500)]);
        let s = solve(&p, &single_class(500.0, Volume::Count(1))).unwrap();
        assert_eq!(s.total_utility, 0.0);
        assert_eq!(s.per_class[0].admitted, 0);
    }

    #[test]
    fn capacity_filling_uses_all_slots_when_threshold_small() {
        // Fig. 6 facility 1 alone: 100 locations × cap 80, l ≤ 99 ⇒ 8000.
        let p = profile(&[(80, 100)]);
        let s = solve(&p, &single_class(50.0, Volume::CapacityFilling)).unwrap();
        assert_eq!(s.total_utility, 8000.0);
        assert_eq!(s.per_class[0].admitted, 80);
        assert!(s.per_class[0].sizes.iter().all(|&x| x == 100));
    }

    #[test]
    fn fig6_coalition_12_piecewise_values() {
        // Coalition {1,2}: caps (80×100, 20×400). Derived in DESIGN.md:
        //   l ≤ 199 (s_min ≤ 200): V = 16000
        //   s_min ∈ (200, 500]:    V = 100·min(80, ⌊8000/(s−100)⌋) + 8000
        //     at l = 299 (s_min=300): m = 40, V = 12000
        //     at l = 499 (s_min=500): m = 20, V = 10000
        //   l ≥ 500 (s_min > 500 > n_locations): V = 0
        let p = profile(&[(80, 100), (20, 400)]);
        let v = |l: f64| {
            solve(&p, &single_class(l, Volume::CapacityFilling))
                .unwrap()
                .total_utility
        };
        assert_eq!(v(0.0), 16_000.0);
        assert_eq!(v(199.0), 16_000.0);
        assert_eq!(v(299.0), 12_000.0);
        assert_eq!(v(499.0), 10_000.0);
        assert_eq!(v(500.0), 0.0);
    }

    #[test]
    fn volume_cap_limits_admission() {
        // Fig. 8 facility 3 alone: 800 locations × cap 20, l = 250.
        // V(K) = 800·min(K, 20) until the feasibility cap (m ≤ 63).
        let p = profile(&[(20, 800)]);
        for k in [1u64, 5, 19, 20, 40] {
            let s = solve(&p, &single_class(250.0, Volume::Count(k))).unwrap();
            let expect = 800 * k.min(20);
            assert_eq!(s.total_utility, expect as f64, "K = {k}");
        }
    }

    #[test]
    fn concave_shape_prefers_many_small_experiments() {
        // d = 0.5, threshold 0, 4 locations × cap 2 (8 slots).
        // Options: m=8 experiments of size 1: utility 8·1 = 8;
        //          m=2 of size 4: 2·2 = 4. Expect many small.
        let p = profile(&[(2, 4)]);
        let d = Demand::single(
            ExperimentClass::simple("c", 0.0, 0.5),
            Volume::CapacityFilling,
        );
        let s = solve(&p, &d).unwrap();
        assert_eq!(s.per_class[0].admitted, 8);
        assert!((s.total_utility - 8.0).abs() < 1e-9);
    }

    #[test]
    fn convex_shape_prefers_few_large_experiments() {
        // d = 2, threshold 0, 4 locations × cap 2.
        // m=2 of size 4 each: 16+16 = 32; m=8 of size 1: 8. Expect 2 big.
        let p = profile(&[(2, 4)]);
        let d = Demand::single(
            ExperimentClass::simple("c", 0.0, 2.0),
            Volume::CapacityFilling,
        );
        let s = solve(&p, &d).unwrap();
        assert!((s.total_utility - 32.0).abs() < 1e-9);
        assert_eq!(s.per_class[0].admitted, 2);
        assert_eq!(s.per_class[0].sizes, vec![4, 4]);
    }

    #[test]
    fn two_class_mixture_serves_diversity_class_when_possible() {
        // Fig. 7 shape: class A l=0, class B l=700 on the full federation
        // profile (80×100, 50×400, 30×800).
        let p = profile(&[(80, 100), (50, 400), (30, 800)]);
        let demand = Demand::mixture(
            ExperimentClass::simple("a", 0.0, 1.0),
            ExperimentClass::simple("b", 700.0, 1.0),
            60,
            0.5,
        );
        let s = solve(&p, &demand).unwrap();
        // 30 of each class; everything fits easily: every admitted
        // experiment helps, B(60) = 100·60 + 400·50 + 800·30 = 50000;
        // 30 B-experiments ≥ 701 each plus 30 A-experiments: the optimizer
        // should use a large share of the slots.
        assert_eq!(s.per_class[1].admitted, 30);
        assert!(s.per_class[1].sizes.iter().all(|&x| x > 700));
        assert_eq!(s.per_class[0].admitted, 30);
        assert!(s.total_utility > 0.0);
    }

    #[test]
    fn two_class_mixture_drops_diversity_class_on_small_coalition() {
        // Facility {1} alone (80×100): only 100 locations, class B (l=700)
        // impossible; all value from class A.
        let p = profile(&[(80, 100)]);
        let demand = Demand::mixture(
            ExperimentClass::simple("a", 0.0, 1.0),
            ExperimentClass::simple("b", 700.0, 1.0),
            60,
            0.5,
        );
        let s = solve(&p, &demand).unwrap();
        assert_eq!(s.per_class[1].admitted, 0);
        assert_eq!(s.per_class[0].admitted, 30);
        // 30 experiments of 100 locations each = 3000 slots.
        assert_eq!(s.total_utility, 3000.0);
    }

    #[test]
    fn resource_scaling_single_class() {
        // CDN-style r = 4 on 10 locations of capacity 8: effectively
        // capacity 2 per location for this class.
        let p = profile(&[(8, 10)]);
        let class = ExperimentClass::simple("cdn", 2.0, 1.0).with_resources(4);
        let s = solve(&p, &Demand::capacity_filling(class)).unwrap();
        // 2 experiments of 10 locations each (l=2 ⇒ s_min=3 ≤ 10).
        assert_eq!(s.per_class[0].admitted, 2);
        assert_eq!(s.total_utility, 20.0);
    }

    #[test]
    fn mixed_resources_rejected() {
        let p = profile(&[(8, 10)]);
        let demand = Demand {
            components: vec![
                crate::experiment::DemandComponent {
                    class: ExperimentClass::simple("a", 0.0, 1.0),
                    volume: Volume::Count(1),
                },
                crate::experiment::DemandComponent {
                    class: ExperimentClass::simple("b", 0.0, 1.0).with_resources(2),
                    volume: Volume::Count(1),
                },
            ],
        };
        assert_eq!(solve(&p, &demand), Err(SolveError::MixedResourceClasses));
    }

    #[test]
    fn empty_profile_and_empty_demand() {
        let p = CapacityProfile::empty();
        let s = solve(&p, &single_class(10.0, Volume::Count(5))).unwrap();
        assert_eq!(s.total_utility, 0.0);
        let p2 = profile(&[(1, 10)]);
        let s2 = solve(&p2, &Demand { components: vec![] }).unwrap();
        assert_eq!(s2.total_utility, 0.0);
    }

    #[test]
    fn max_locations_cap_applies() {
        // CDN with l̄ = 5 on 10 locations: one experiment gets only 5.
        let p = profile(&[(1, 10)]);
        let class = ExperimentClass::simple("cdn", 2.0, 1.0).with_max_locations(5);
        let s = solve(&p, &Demand::one_experiment(class)).unwrap();
        assert_eq!(s.total_utility, 5.0);
        assert_eq!(s.per_class[0].sizes, vec![5]);
    }
}
