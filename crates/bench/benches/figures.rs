//! Criterion benchmarks: one per reproduced table/figure.
//!
//! Each benchmark regenerates the complete figure (every coalition value,
//! Shapley computation, and share series), so `cargo bench` doubles as a
//! performance regression guard on the whole reproduction pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use fedval_bench::{
    fig2_utility, fig4_threshold, fig5_shape, fig6_resources, fig7_mixture, fig8_volume,
    fig9_incentives, table_e1,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    group.bench_function("fig2_utility", |b| b.iter(|| black_box(fig2_utility())));
    group.bench_function("table_e1", |b| b.iter(|| black_box(table_e1())));
    group.bench_function("fig4_threshold", |b| b.iter(|| black_box(fig4_threshold())));
    group.bench_function("fig5_shape", |b| b.iter(|| black_box(fig5_shape())));
    group.bench_function("fig6_resources", |b| b.iter(|| black_box(fig6_resources())));
    group.bench_function("fig7_mixture", |b| b.iter(|| black_box(fig7_mixture())));
    group.bench_function("fig8_volume", |b| b.iter(|| black_box(fig8_volume())));
    group.bench_function("fig9_incentives", |b| {
        b.iter(|| black_box(fig9_incentives()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
