//! Criterion benchmarks of the underlying engines, including the
//! design-choice ablations called out in DESIGN.md §5:
//!
//! * exact vs Monte-Carlo Shapley (error/time trade-off),
//! * analytic vs exact-search allocation,
//! * optimal vs greedy allocation (the efficiency-loss baseline),
//! * simplex / nucleolus scaling,
//! * DES throughput and the empirical-game pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedval_coalition::{
    least_core, nucleolus, shapley, shapley_monte_carlo, shapley_parallel, Coalition, TableGame,
};
use fedval_core::allocation::{solve, solve_exact, solve_greedy, GreedyPolicy};
use fedval_core::{paper_facilities, CapacityProfile, Demand, ExperimentClass, Volume};
use fedval_simplex::{LinearProgram, Objective, Relation};
use fedval_testbed::{run_coalition, synthetic_authority, Federation, SimConfig, Workload};
use std::hint::black_box;
use std::time::Duration;

/// A deterministic synthetic superadditive game for scaling benches.
fn synthetic_game(n: usize) -> TableGame {
    TableGame::from_fn(n, |c: Coalition| {
        let s = c.len() as f64;
        let spice = (c.0.wrapping_mul(0x9E3779B97F4A7C15) >> 48) as f64 / 65536.0;
        s * s + spice
    })
}

fn bench_shapley(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    for n in [8usize, 12, 16] {
        let game = synthetic_game(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &game, |b, g| {
            b.iter(|| black_box(shapley(g)))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &game, |b, g| {
            b.iter(|| black_box(shapley_parallel(g, 4)))
        });
        group.bench_with_input(BenchmarkId::new("monte_carlo_1k", n), &game, |b, g| {
            b.iter(|| black_box(shapley_monte_carlo(g, 1000, 7)))
        });
    }
    group.finish();
}

fn bench_core_concepts(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_concepts");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    for n in [4usize, 6] {
        let game = synthetic_game(n);
        group.bench_with_input(BenchmarkId::new("least_core", n), &game, |b, g| {
            b.iter(|| black_box(least_core(g)))
        });
        group.bench_with_input(BenchmarkId::new("nucleolus", n), &game, |b, g| {
            b.iter(|| black_box(nucleolus(g)))
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    for m in [32usize, 128, 512] {
        // Dense random-ish LP: maximize Σx s.t. m band constraints.
        group.bench_with_input(BenchmarkId::new("rows", m), &m, |b, &m| {
            b.iter(|| {
                let n = 16;
                let mut lp = LinearProgram::new(n, Objective::Maximize);
                for j in 0..n {
                    lp.set_objective_coefficient(j, 1.0 + (j % 3) as f64);
                }
                for i in 0..m {
                    let coeffs: Vec<f64> = (0..n)
                        .map(|j| 1.0 + ((i * 7 + j * 13) % 5) as f64)
                        .collect();
                    lp.add_constraint(coeffs, Relation::Le, 100.0 + (i % 11) as f64);
                }
                black_box(lp.solve().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    // Fig. 6 grand-coalition instance.
    let profile = CapacityProfile::from_groups(vec![(80, 100), (20, 400), (10, 800)]);
    let demand = Demand::capacity_filling(ExperimentClass::simple("e", 299.0, 1.0));
    group.bench_function("analytic_fig6", |b| {
        b.iter(|| black_box(solve(&profile, &demand).unwrap()))
    });
    group.bench_function("greedy_max_diversity_fig6", |b| {
        b.iter(|| black_box(solve_greedy(&profile, &demand, GreedyPolicy::MaxDiversity)))
    });

    // Tiny instance where the exact solver is tractable (ablation:
    // analytic vs exhaustive).
    let tiny = CapacityProfile::from_groups(vec![(3, 4), (1, 4)]);
    let tiny_demand = Demand::single(ExperimentClass::simple("e", 2.0, 1.0), Volume::Count(4));
    group.bench_function("analytic_tiny", |b| {
        b.iter(|| black_box(solve(&tiny, &tiny_demand).unwrap()))
    });
    group.bench_function("exact_tiny", |b| {
        b.iter(|| black_box(solve_exact(&tiny, &tiny_demand)))
    });

    // Two-class mixture (Fig. 7 grand coalition at sigma = 0.5).
    let fig7 = CapacityProfile::from_groups(vec![(80, 100), (50, 400), (30, 800)]);
    let mix = Demand::mixture(
        ExperimentClass::simple("bulk", 0.0, 1.0),
        ExperimentClass::simple("diverse", 700.0, 1.0),
        60,
        0.5,
    );
    group.bench_function("analytic_fig7_mixture", |b| {
        b.iter(|| black_box(solve(&fig7, &mix).unwrap()))
    });
    group.finish();
}

fn bench_testbed(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(2000));
    let federation = Federation::new(vec![
        synthetic_authority("PLC", 0, 40, 2, 4, 100),
        synthetic_authority("PLE", 40, 30, 2, 4, 80),
        synthetic_authority("PLJ", 70, 20, 2, 4, 60),
    ]);
    let workload = Workload::planetlab_mix(5.0, 2.0);
    let config = SimConfig {
        horizon: 500.0,
        warmup: 50.0,
        seed: 7,
        churn: None,
    };
    group.bench_function("slice_sim_grand_coalition", |b| {
        b.iter(|| {
            black_box(run_coalition(
                &federation,
                Coalition::grand(3),
                &workload,
                &config,
            ))
        })
    });
    group.finish();
}

fn bench_static_vs_measured(c: &mut Criterion) {
    // Ablation 4: closed-form V(S) vs DES-measured V(S) for a 3-player
    // federation (full game tables).
    let mut group = c.benchmark_group("game_table");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(2000));
    group.bench_function("closed_form_table", |b| {
        b.iter(|| {
            let facilities = paper_facilities([80, 60, 20]);
            let demand = Demand::capacity_filling(ExperimentClass::simple("e", 250.0, 1.0));
            let game = fedval_core::FederationGame::new(&facilities, &demand);
            black_box(game.table())
        })
    });
    let federation = Federation::new(vec![
        synthetic_authority("PLC", 0, 10, 2, 4, 100),
        synthetic_authority("PLE", 10, 8, 2, 4, 80),
        synthetic_authority("PLJ", 18, 6, 2, 4, 60),
    ]);
    let workload = Workload::planetlab_mix(2.0, 1.0);
    let config = SimConfig {
        horizon: 200.0,
        warmup: 20.0,
        seed: 11,
        churn: None,
    };
    group.bench_function("measured_table", |b| {
        b.iter(|| {
            black_box(fedval_testbed::empirical_game(
                &federation,
                &workload,
                &config,
            ))
        })
    });
    group.finish();
}

fn bench_extended_values(c: &mut Criterion) {
    use fedval_coalition::{balancedness, owen_value, weighted_shapley};
    let mut group = c.benchmark_group("extended_values");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    for n in [8usize, 12] {
        let game = synthetic_game(n);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        group.bench_with_input(BenchmarkId::new("weighted_shapley", n), &game, |b, g| {
            b.iter(|| black_box(weighted_shapley(g, &weights)))
        });
        // Unions: pairs of players.
        let unions: Vec<Coalition> = (0..n / 2)
            .map(|k| Coalition::from_players([2 * k, 2 * k + 1]))
            .collect();
        group.bench_with_input(BenchmarkId::new("owen_value", n), &game, |b, g| {
            b.iter(|| black_box(owen_value(g, &unions)))
        });
    }
    let game6 = synthetic_game(6);
    group.bench_function("balancedness_6", |b| {
        b.iter(|| black_box(balancedness(&game6)))
    });
    group.finish();
}

fn bench_market(c: &mut Criterion) {
    use fedval_market::{clear_double_auction, run_combinatorial_auction, Ask, Bid, Order};
    let mut group = c.benchmark_group("market");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    let facilities = paper_facilities([4, 4, 4]);
    let bids: Vec<Bid> = (0..200)
        .map(|i| Bid::new(format!("b{i}"), 1 + (i * 13) % 700, 10.0 + (i * 7 % 90) as f64))
        .collect();
    group.bench_function("combinatorial_200_bids", |b| {
        b.iter(|| black_box(run_combinatorial_auction(&facilities, &bids)))
    });
    let asks: Vec<Ask> = (0..100)
        .map(|i| Ask {
            quantity: 50 + (i % 7),
            reserve: (i % 5) as f64 * 0.2,
        })
        .collect();
    let orders: Vec<Order> = (0..100)
        .map(|i| Order {
            quantity: 40 + (i % 11),
            limit: 0.5 + (i % 9) as f64 * 0.3,
        })
        .collect();
    group.bench_function("double_auction_100x100", |b| {
        b.iter(|| black_box(clear_double_auction(&asks, &orders)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shapley,
    bench_core_concepts,
    bench_simplex,
    bench_allocation,
    bench_testbed,
    bench_static_vs_measured,
    bench_extended_values,
    bench_market
);
criterion_main!(benches);
