//! Data-series containers shared by the repro binary, benches, and tests.

/// One named curve: `(x, y)` points in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. "phi_hat_1".
    pub label: String,
    /// The sampled points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x (exact match), if sampled.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// First and last y values (`None` if empty).
    pub fn endpoints(&self) -> Option<(f64, f64)> {
        Some((self.points.first()?.1, self.points.last()?.1))
    }
}

/// A reproduced figure: an id (e.g. "fig4"), the x-axis meaning, and its
/// series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier matching the paper ("fig2" … "fig9").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Label of the x axis.
    pub x_label: &'static str,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as CSV (header row, then one row per x).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        let _ = writeln!(out);
        let n = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..n {
            let x = self.series[0].points[i].0;
            let _ = write!(out, "{x}");
            for s in &self.series {
                let y = s.points.get(i).map_or(f64::NAN, |&(_, y)| y);
                let _ = write!(out, ",{y}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders a fixed-width table: x column plus one column per series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>10}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>12}", s.label);
        }
        let _ = writeln!(out);
        let n = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..n {
            let x = self.series[0].points[i].0;
            let _ = write!(out, "{x:>10.2}");
            for s in &self.series {
                let y = s.points.get(i).map_or(f64::NAN, |&(_, y)| y);
                let _ = write!(out, " {y:>12.4}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Figure {
        let mut a = Series::new("a");
        a.push(0.0, 1.0);
        a.push(1.0, 2.0);
        let mut b = Series::new("b");
        b.push(0.0, 3.0);
        b.push(1.0, 4.0);
        Figure {
            id: "figX",
            title: "toy",
            x_label: "x",
            series: vec![a, b],
        }
    }

    #[test]
    fn lookup_and_endpoints() {
        let f = toy();
        assert_eq!(f.series("b").unwrap().at(1.0), Some(4.0));
        assert_eq!(f.series("a").unwrap().endpoints(), Some((1.0, 2.0)));
        assert!(f.series("zzz").is_none());
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = toy().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("x,a,b"));
        assert_eq!(lines.next(), Some("0,1,3"));
        assert_eq!(lines.next(), Some("1,2,4"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn render_contains_all_labels_and_rows() {
        let text = toy().render();
        assert!(text.contains("figX"));
        assert!(text.contains(" a") && text.contains(" b"));
        assert_eq!(text.lines().count(), 2 + 2); // header+cols + 2 rows
    }
}
