//! Regenerates every table and figure of the paper and verifies the
//! paper's qualitative claims.
//!
//! ```text
//! cargo run --release -p fedval-bench --bin repro            # everything
//! cargo run --release -p fedval-bench --bin repro -- fig4    # one figure
//! cargo run --release -p fedval-bench --bin repro -- checks  # checks only
//! ```
//!
//! `--threads N` sets the sweep worker count (default: available
//! parallelism); every N produces byte-identical figure data.
//!
//! Exit code 0 iff every check passes.

use fedval_bench::{all_figures, check_all, table_e1};
use std::process::ExitCode;

fn print_table_e1() {
    let t = table_e1();
    println!("# table-e1 — §4.1 worked example (l = 500, L = (100,400,800))");
    println!("{:>10} {:>10}", "coalition", "V");
    for (label, v) in &t.coalition_values {
        println!("{label:>10} {v:>10.1}");
    }
    println!("{:>10} {:>10} {:>10}", "facility", "phi_hat", "pi_hat");
    for i in 0..3 {
        println!(
            "{:>10} {:>10.6} {:>10.6}",
            i + 1,
            t.shapley_hat[i],
            t.proportional_hat[i]
        );
    }
    println!();
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // --csv DIR: additionally write every generated figure as CSV.
    let csv_dir: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .map(|pos| {
            let dir = args.get(pos + 1).cloned().unwrap_or_else(|| ".".into());
            args.drain(pos..=(pos + 1).min(args.len() - 1));
            dir
        });
    // --svg DIR: additionally render every generated figure as SVG.
    let svg_dir: Option<String> = args.iter().position(|a| a == "--svg").map(|pos| {
        let dir = args.get(pos + 1).cloned().unwrap_or_else(|| ".".into());
        args.drain(pos..=(pos + 1).min(args.len() - 1));
        dir
    });
    // --threads N: sweep worker count (default: available parallelism).
    // The figure data is byte-identical for every value (DESIGN.md §9).
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) else {
            eprintln!("--threads needs a positive integer");
            return ExitCode::FAILURE;
        };
        if n == 0 {
            eprintln!("--threads must be at least 1");
            return ExitCode::FAILURE;
        }
        args.drain(pos..=pos + 1);
        fedval_bench::set_sweep_threads(n);
    }
    let write_csv = |fig: &fedval_bench::Figure| {
        if let Some(dir) = &csv_dir {
            let path = std::path::Path::new(dir).join(format!("{}.csv", fig.id));
            if let Err(e) = std::fs::write(&path, fig.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        if let Some(dir) = &svg_dir {
            let path = std::path::Path::new(dir).join(format!("{}.svg", fig.id));
            if let Err(e) = std::fs::write(&path, fig.to_svg()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    };

    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");

    if want("table-e1") && !args.iter().any(|a| a == "checks") {
        print_table_e1();
    }
    if !args.iter().any(|a| a == "checks") {
        for fig in all_figures() {
            if want(fig.id) {
                println!("{}", fig.render());
                write_csv(&fig);
            }
        }
        // Extension experiments print when asked for explicitly or with
        // "extras"/"all".
        let want_extras =
            |id: &str| args.iter().any(|a| a == id || a == "extras" || a == "all");
        for fig in fedval_bench::all_extras() {
            if want_extras(fig.id) {
                println!("{}", fig.render());
                write_csv(&fig);
            }
        }
    }

    if args.is_empty() || args.iter().any(|a| a == "checks" || a == "all") {
        println!("# paper-claim checks");
        let mut all_ok = true;
        for result in check_all() {
            for (desc, ok) in &result.assertions {
                println!(
                    "[{}] {:10} {}",
                    if *ok { "PASS" } else { "FAIL" },
                    result.id,
                    desc
                );
                all_ok &= ok;
            }
        }
        if !all_ok {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
